//! Fault tolerance: the compile-session robustness pin.
//!
//! Over generated linked corpora, seeded edit series and a seeded
//! injected fault ([`FaultPlan::seeded`]), every
//! [`mini_driver::CompileSession::compile`] call must uphold the
//! isolation contract:
//!
//! * **no panic escapes** the session API — injected panics are caught at
//!   the per-unit isolation fence and surfaced as structured
//!   [`CompileError::Internal`] values with unit attribution;
//! * a compile that **succeeds** (including one healed by the sequential
//!   retry-with-downgrade, or one that silently recompiled a corrupted
//!   artifact) is **byte-identical** to a from-scratch compile of the same
//!   sources: printed trees, VM output, merged `ExecStats`, checker
//!   verdict;
//! * after [`CompileSession::clear_faults`], the **next clean compile
//!   recovers** to byte-identical output versus from-scratch, across
//!   fused/mega × jobs ∈ {1, 4} × the dynamic checker.
//!
//! Targeted (non-property) tests pin the individual robustness features:
//! sibling-artifact reuse around a worker panic at `jobs = 4`, poisoning
//! on a persistent fault, corrupted-artifact recovery, deadline and
//! tree-shape budgets, cache-byte eviction, and symbol-id-space
//! retirement at the session high-water mark.

use miniphases::mini_driver::{
    compile_sources, Budgets, CompileError, CompileSession, Compiled, CompilerOptions,
};
use miniphases::mini_ir::printer;
use miniphases::miniphase::{FaultKind, FaultPlan, UNLIMITED_SHOTS};
use miniphases::{mini_backend, workload};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Everything observable about one compiled program state (the same
/// comparator as `tests/incremental_equivalence.rs`).
#[derive(PartialEq, Debug)]
enum Observed {
    Ok {
        printed: Vec<String>,
        vm_out: Vec<String>,
        exec: miniphases::miniphase::ExecStats,
    },
    CheckFindings(Vec<String>),
}

fn observe(result: Result<Compiled, CompileError>) -> Observed {
    let c = match result {
        Ok(c) => c,
        Err(CompileError::Check(findings)) => {
            return Observed::CheckFindings(findings.iter().map(|f| f.to_string()).collect());
        }
        Err(e) => panic!("unexpected compile failure: {e}"),
    };
    let printed = c
        .units
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &c.ctx.symbols)
            )
        })
        .collect();
    let mut vm = mini_backend::Vm::new(&c.program);
    vm.run_main().expect("program runs");
    Observed::Ok {
        printed,
        vm_out: vm.out.clone(),
        exec: c.exec,
    }
}

fn scratch(sources: &BTreeMap<String, String>, opts: &CompilerOptions) -> Observed {
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    observe(compile_sources(&refs, opts))
}

fn opts_for(mode: u8, jobs: usize, check: bool) -> CompilerOptions {
    let base = if mode.is_multiple_of(2) {
        CompilerOptions::fused()
    } else {
        CompilerOptions::mega()
    };
    base.with_jobs(jobs).with_check(check)
}

/// One session compile behind an unwind fence. Returns the result if the
/// API upheld its no-escape contract, or the escaped panic's message.
fn compile_fenced(session: &mut CompileSession) -> Result<Result<Compiled, CompileError>, String> {
    catch_unwind(AssertUnwindSafe(|| session.compile()))
        .map_err(|p| miniphases::miniphase::faults::panic_message(p.as_ref()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole pin: corpus × edit series × injected fault. Compiles
    /// may fail — but only with a structured error, and once the plan is
    /// cleared the session must converge back to from-scratch output.
    #[test]
    fn injected_faults_never_escape_and_recovery_is_exact(
        corpus_seed in 0u64..10_000,
        edit_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        units in 4usize..9,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        check in 0u8..2,
    ) {
        let check = check == 1;
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, check);
        let cfg = workload::LinkedConfig { units, seed: corpus_seed };
        let script = workload::edit_series(&cfg, 4, edit_seed);

        let mut sources: BTreeMap<String, String> =
            script.base.units.iter().cloned().collect();
        let mut session = CompileSession::new(opts);
        for (n, s) in &sources {
            session.update(n.clone(), s.clone());
        }
        session.inject_faults(FaultPlan::seeded(fault_seed, units, 4));

        let mut edits = script.edits.iter();
        // Cold compile + every edit, all under the armed plan.
        loop {
            let result = match compile_fenced(&mut session) {
                Ok(r) => r,
                Err(msg) => {
                    return Err(TestCaseError(format!(
                        "panic escaped CompileSession::compile: {msg}"
                    )));
                }
            };
            match result {
                Ok(c) => {
                    // A surviving compile — degraded or not — must match
                    // from-scratch byte for byte.
                    if c.retried_sequential {
                        prop_assert!(jobs > 1 || units > 0, "retry implies a caught panic");
                    }
                    let obs = observe(Ok(c));
                    prop_assert_eq!(
                        &obs,
                        &scratch(&sources, &opts),
                        "compile under fault plan (seed {}) survived but diverged",
                        fault_seed
                    );
                }
                Err(CompileError::Internal { phase, message, .. }) => {
                    prop_assert!(
                        !phase.is_empty() && !message.is_empty(),
                        "internal error must carry phase + message"
                    );
                }
                Err(e) => {
                    return Err(TestCaseError(format!(
                        "fault surfaced as a non-internal error: {e}"
                    )));
                }
            }
            let Some(edit) = edits.next() else { break };
            sources.insert(edit.unit.clone(), edit.source.clone());
            session.update(edit.unit.clone(), edit.source.clone());
        }

        // Disarm and converge: the next clean compile is byte-identical
        // to from-scratch over the final sources.
        session.clear_faults();
        let healed = compile_fenced(&mut session)
            .map_err(|msg| TestCaseError(format!("panic escaped clean compile: {msg}")))?;
        prop_assert_eq!(
            &observe(healed),
            &scratch(&sources, &opts),
            "post-fault clean compile must recover exactly"
        );
    }
}

/// A linked corpus of `units` generated units plus its `zmain.ms` driver
/// — so the total unit count is `units + 1`.
fn linked_sources(units: usize, seed: u64) -> BTreeMap<String, String> {
    let cfg = workload::LinkedConfig { units, seed };
    workload::generate_linked(&cfg).units.into_iter().collect()
}

fn session_over(sources: &BTreeMap<String, String>, opts: CompilerOptions) -> CompileSession {
    let mut session = CompileSession::new(opts);
    for (n, s) in sources {
        session.update(n.clone(), s.clone());
    }
    session
}

/// The acceptance pin for graceful degradation: a one-shot worker panic
/// at `jobs = 4` fails only the affected unit; sibling artifacts are
/// cached from the same compile and the sequential retry heals it —
/// visible through `CacheStats` and `Compiled::retried_sequential`.
#[test]
fn worker_panic_at_jobs_4_retries_sequentially_and_reuses_siblings() {
    let sources = linked_sources(7, 41);
    let opts = CompilerOptions::fused().with_jobs(4);
    let mut session = session_over(&sources, opts);
    session.inject_faults(std::sync::Arc::new(
        FaultPlan::new(7).with_fault(FaultKind::PanicOnUnit { unit: 3 }, 1),
    ));

    let cold = compile_fenced(&mut session)
        .expect("no panic escapes the session")
        .expect("one-shot fault heals on the sequential retry");
    assert!(cold.retried_sequential, "the downgrade must be surfaced");
    assert_eq!(cold.recompiled_units, 8, "cold compile covers the corpus");

    let stats = session.cache_stats();
    assert_eq!(stats.worker_panics, 1, "exactly one unit's fence tripped");
    assert_eq!(stats.sequential_retries, 1, "exactly one downgrade retry");
    assert_eq!(
        stats.units_recompiled, 8,
        "siblings compile once; only the faulted unit reruns"
    );
    assert_eq!(
        observe(Ok(cold)),
        scratch(&sources, &opts),
        "degraded compile output matches from-scratch"
    );

    // The healed artifacts are real cache entries: a no-op compile
    // reuses the whole corpus, including the retried unit.
    let warm = session.compile().expect("clean warm compile");
    assert!(!warm.retried_sequential);
    assert_eq!(warm.reused_units, 8);
    assert_eq!(warm.recompiled_units, 0);
}

/// A persistent fault defeats the retry too: the compile fails with a
/// structured, unit-attributed internal error and poisons the session —
/// which then recovers fully once the plan is cleared.
#[test]
fn persistent_fault_poisons_session_then_clean_compile_recovers() {
    let sources = linked_sources(5, 13);
    let opts = CompilerOptions::fused().with_jobs(4);
    let mut session = session_over(&sources, opts);
    session.inject_faults(std::sync::Arc::new(
        FaultPlan::new(9).with_fault(FaultKind::PanicOnUnit { unit: 0 }, UNLIMITED_SHOTS),
    ));

    let err = match compile_fenced(&mut session).expect("no panic escapes the session") {
        Ok(_) => panic!("a persistent fault must survive the sequential retry"),
        Err(e) => e,
    };
    match err {
        CompileError::Internal {
            unit,
            phase,
            message,
        } => {
            let first = sources.keys().next().cloned();
            assert_eq!(unit, first, "the fault is attributed to the faulted unit");
            assert!(
                phase.contains("group"),
                "attribution names the phase: {phase}"
            );
            assert!(
                message.contains("injected"),
                "the injected panic message survives: {message}"
            );
        }
        other => panic!("expected CompileError::Internal, got: {other}"),
    }
    assert_eq!(session.cache_stats().sequential_retries, 1);

    session.clear_faults();
    let healed = session.compile().expect("poisoned session rebuilds clean");
    assert_eq!(
        healed.recompiled_units, 6,
        "poisoning forces a full rebuild"
    );
    assert_eq!(observe(Ok(healed)), scratch(&sources, &opts));
    // Only completed compiles are counted: the faulted cold compile bailed
    // out before its counters ticked, so the recovery rebuild is the first.
    assert_eq!(session.cache_stats().full_rebuilds, 1);
}

/// A corrupted cached fingerprint is detected as an ordinary key
/// mismatch: the unit silently recompiles, the counter ticks, and output
/// stays byte-identical.
#[test]
fn corrupted_artifact_recompiles_silently() {
    let sources = linked_sources(4, 29);
    let opts = CompilerOptions::fused().with_jobs(2);
    let mut session = session_over(&sources, opts);
    session.compile().expect("cold compile");

    session.inject_faults(std::sync::Arc::new(
        FaultPlan::new(3).with_fault(FaultKind::CorruptArtifact { unit: 1 }, 1),
    ));
    let again = session.compile().expect("corruption never fails a compile");
    assert_eq!(session.cache_stats().corrupted_artifacts, 1);
    assert_eq!(
        again.recompiled_units, 1,
        "only the corrupted unit recompiles"
    );
    assert_eq!(again.reused_units, 4);
    assert_eq!(observe(Ok(again)), scratch(&sources, &opts));
}

/// A zero wall-clock budget trips at the first group boundary and
/// surfaces as [`CompileError::Budget`] — never a hang or a panic.
#[test]
fn zero_deadline_reports_budget_error() {
    let sources = linked_sources(4, 3);
    let opts = CompilerOptions::fused().with_budgets(Budgets {
        deadline: Some(Duration::ZERO),
        ..Budgets::default()
    });
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    match compile_sources(&refs, &opts) {
        Err(CompileError::Budget(ds)) => {
            assert!(
                ds.iter().any(|d| d.to_string().contains("deadline")),
                "the budget diagnostic names the deadline"
            );
        }
        Ok(_) => panic!("a zero deadline cannot succeed"),
        Err(e) => panic!("expected CompileError::Budget, got: {e}"),
    }
}

/// A tree-depth budget degrades to a diagnostic at `Ctx::mk` instead of
/// unbounded growth — reported as [`CompileError::Budget`].
#[test]
fn tree_depth_budget_reports_budget_error() {
    let sources = linked_sources(3, 17);
    let opts = CompilerOptions::fused().with_budgets(Budgets {
        max_tree_depth: Some(2),
        ..Budgets::default()
    });
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    match compile_sources(&refs, &opts) {
        Err(CompileError::Budget(ds)) => {
            assert!(
                ds.iter().any(|d| d.to_string().contains("depth")),
                "the budget diagnostic names the depth limit"
            );
        }
        Ok(_) => panic!("real programs exceed depth 2"),
        Err(e) => panic!("expected CompileError::Budget, got: {e}"),
    }
}

/// The artifact-cache byte budget evicts least-recently-recompiled
/// entries; evicted units recompile on the next pass and output stays
/// correct.
#[test]
fn cache_byte_budget_evicts_and_next_compile_recovers() {
    let sources = linked_sources(6, 51);
    let opts = CompilerOptions::fused().with_jobs(2).with_budgets(Budgets {
        cache_bytes: Some(1),
        ..Budgets::default()
    });
    let mut session = session_over(&sources, opts);
    session
        .compile()
        .expect("cold compile under a tiny cache budget");

    let stats = session.cache_stats();
    assert!(stats.evicted_units > 0, "a 1-byte budget must evict");
    assert!(stats.evicted_bytes > 0);

    // Evicted artifacts are gone: the next compile rebuilds them and
    // still matches from-scratch.
    let warm = session.compile().expect("warm compile after eviction");
    assert!(
        warm.recompiled_units > 0,
        "evicted units recompile on the next pass"
    );
    assert_eq!(observe(Ok(warm)), scratch(&sources, &opts));
}

/// Satellite (b): crossing the session's symbol-id high-water mark is a
/// visible id-space retirement — its own counter, a full frontend
/// rebuild, and unchanged output.
#[test]
fn sym_high_water_crossing_retires_id_space() {
    let sources = linked_sources(4, 67);
    let opts = CompilerOptions::fused().with_jobs(2);
    let mut session = session_over(&sources, opts);
    session.compile().expect("cold compile");
    assert_eq!(session.cache_stats().sym_space_retirements, 0);

    // Force the next compile over the mark: any cursor crosses water 1.
    session.set_sym_high_water(1);
    let retired = session.compile().expect("retirement compile");
    let stats = session.cache_stats();
    assert_eq!(stats.sym_space_retirements, 1, "the rollover is counted");
    assert_eq!(
        retired.recompiled_units, 5,
        "id-space retirement rebuilds the whole corpus"
    );
    assert_eq!(observe(Ok(retired)), scratch(&sources, &opts));
}
