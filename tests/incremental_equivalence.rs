//! Incremental ≡ from-scratch: the compile-session pin.
//!
//! Over generated *linked* corpora (units with cross-unit dependencies) and
//! seeded edit series, compiling incrementally through a
//! [`mini_driver::CompileSession`] must be **byte-identical** to a
//! from-scratch `compile_sources` over the same sources after every edit:
//! printed output trees, VM output, merged `ExecStats` and the checker
//! verdict (success, or the identical `Err(Check)` finding list — the
//! comparison covers both arms, though the standard pipeline produces no
//! findings on well-typed corpora; finding *content* equality under
//! parallel splicing is pinned at the executor level by
//! `tests/parallel_determinism.rs`) all match, across fused/mega ×
//! jobs ∈ {1, 4} × subtree pruning × the dynamic checker. Scheduling,
//! caching and splicing may change wall clock and allocation layout —
//! never output.
//!
//! The cache-behaviour side is pinned too: a body-only edit recompiles
//! exactly one unit (no cascade), and the sum `reused + recompiled` always
//! covers the corpus.

use miniphases::mini_driver::{compile_sources, CompileSession, Compiled, CompilerOptions};
use miniphases::mini_ir::fingerprint::export_interface_hash;
use miniphases::mini_ir::{printer, Ctx};
use miniphases::miniphase::SubtreePruning;
use miniphases::{mini_backend, mini_front, workload};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Everything observable about one compiled program state: either the
/// compiled output (trees, VM output, counters) or the checker's finding
/// list — both arms compared between incremental and from-scratch.
#[derive(PartialEq, Debug)]
enum Observed {
    Ok {
        printed: Vec<String>,
        vm_out: Vec<String>,
        exec: miniphases::miniphase::ExecStats,
    },
    CheckFindings(Vec<String>),
}

fn observe(result: Result<Compiled, miniphases::mini_driver::CompileError>) -> Observed {
    use miniphases::mini_driver::CompileError;
    let c = match result {
        Ok(c) => c,
        Err(CompileError::Check(findings)) => {
            return Observed::CheckFindings(findings.iter().map(|f| f.to_string()).collect());
        }
        Err(e) => panic!("unexpected compile failure: {e}"),
    };
    let printed = c
        .units
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &c.ctx.symbols)
            )
        })
        .collect();
    let mut vm = mini_backend::Vm::new(&c.program);
    vm.run_main().expect("program runs");
    Observed::Ok {
        printed,
        vm_out: vm.out.clone(),
        exec: c.exec,
    }
}

/// From-scratch comparator: sources in unit-name order (the session's
/// canonical order) through the one-shot driver.
fn scratch(sources: &BTreeMap<String, String>, opts: &CompilerOptions) -> Observed {
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    observe(compile_sources(&refs, opts))
}

fn opts_for(mode: u8, jobs: usize, prune: u8, check: bool) -> CompilerOptions {
    let base = if mode.is_multiple_of(2) {
        CompilerOptions::fused()
    } else {
        CompilerOptions::mega()
    };
    base.with_pruning_mode(match prune % 3 {
        0 => SubtreePruning::Off,
        1 => SubtreePruning::On,
        _ => SubtreePruning::Auto,
    })
    .with_jobs(jobs)
    .with_check(check)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_compile_matches_from_scratch(
        corpus_seed in 0u64..10_000,
        edit_seed in 0u64..10_000,
        units in 4usize..9,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        prune in 0u8..3,
        check in 0u8..2,
    ) {
        let check = check == 1;
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, prune, check);
        let cfg = workload::LinkedConfig { units, seed: corpus_seed };
        let script = workload::edit_series(&cfg, 5, edit_seed);

        let mut sources: BTreeMap<String, String> = script
            .base
            .units
            .iter()
            .cloned()
            .collect();
        let mut session = CompileSession::new(opts);
        for (n, s) in &sources {
            session.update(n.clone(), s.clone());
        }

        // Cold compile ≡ scratch (both arms: output, or the same findings).
        let cold = session.compile();
        if let Ok(c) = &cold {
            prop_assert_eq!(c.recompiled_units, sources.len());
        }
        let cold_obs = observe(cold);
        prop_assert_eq!(&cold_obs, &scratch(&sources, &opts), "cold mismatch");

        // Every edit: warm compile ≡ scratch over the edited sources
        // (success *or* identical checker findings).
        for (i, edit) in script.edits.iter().enumerate() {
            sources.insert(edit.unit.clone(), edit.source.clone());
            session.update(edit.unit.clone(), edit.source.clone());
            let warm = session.compile();
            if let Ok(w) = &warm {
                prop_assert_eq!(
                    w.reused_units + w.recompiled_units,
                    sources.len(),
                    "unit accounting must cover the corpus"
                );
                prop_assert!(w.recompiled_units >= 1, "the edited unit recompiles");
                if edit.kind == workload::EditKind::Body {
                    prop_assert_eq!(
                        w.recompiled_units, 1,
                        "body-only edit {} of {} must not cascade",
                        i, edit.unit
                    );
                }
            }
            let warm_obs = observe(warm);
            let scratch_obs = scratch(&sources, &opts);
            prop_assert_eq!(
                &warm_obs, &scratch_obs,
                "after edit {} ({:?} on {}): incremental != scratch",
                i, edit.kind, edit.unit
            );
        }
    }
}

/// Satellite pin: the edit generator's contract with the interface hash —
/// body salts leave a unit's exported interface hash unchanged, signature
/// toggles change it.
#[test]
fn body_edits_preserve_interface_hash_signature_edits_change_it() {
    let cfg = workload::LinkedConfig { units: 5, seed: 11 };
    for uid in 0..cfg.units {
        let name = workload::linked_unit_name(uid);
        let hash_of = |src: &str| {
            let mut ctx = Ctx::new();
            let typed = mini_front::compile_source(&mut ctx, &name, src).expect("parses");
            assert!(!ctx.has_errors(), "unit in isolation may miss deps");
            export_interface_hash(&ctx.symbols, &typed.top_syms)
        };
        // Units with deps don't type in isolation; synthesize dep stubs.
        let deps = workload::linked_deps(&cfg, uid);
        let stubs: String = deps
            .iter()
            .map(|d| format!("def U{d}entry(n: Int): Int = n\n"))
            .collect();
        let with_stubs = |body: String| format!("{stubs}{body}");
        let h0 = hash_of(&with_stubs(workload::linked_unit_source(&cfg, uid, 0, 0)));
        let h_body = hash_of(&with_stubs(workload::linked_unit_source(&cfg, uid, 9, 0)));
        let h_sig = hash_of(&with_stubs(workload::linked_unit_source(&cfg, uid, 0, 1)));
        assert_eq!(h0, h_body, "unit {uid}: body edit moved the iface hash");
        assert_ne!(h0, h_sig, "unit {uid}: signature edit kept the iface hash");
    }
}

/// The checker composes with the session: a checked warm compile still
/// reuses cached units (no silent full recompiles to make findings line
/// up).
#[test]
fn checked_session_still_reuses() {
    let cfg = workload::LinkedConfig { units: 6, seed: 23 };
    let script = workload::edit_series(&cfg, 3, 5);
    let opts = CompilerOptions::fused().with_check(true).with_jobs(2);
    let mut session = CompileSession::new(opts);
    for (n, s) in &script.base.units {
        session.update(n.clone(), s.clone());
    }
    session.compile().expect("cold checked compile");
    let mut reused_any = false;
    for edit in &script.edits {
        session.update(edit.unit.clone(), edit.source.clone());
        let warm = session.compile().expect("warm checked compile");
        reused_any |= warm.reused_units > 0;
    }
    assert!(reused_any, "checked sessions must still hit the cache");
}
