//! The static-analysis suite's three-way equivalence pin.
//!
//! The same findings — same rules, same spans, same messages, same
//! canonical order — must come out of
//!
//! 1. the **fused pipeline** (the prepare-only lint group riding
//!    `compile_sources` with [`CompilerOptions::with_lint`]),
//! 2. the **reference executor** (`Pipeline::run_units_reference`, the
//!    retained recursive specification), and
//! 3. a **standalone traversal** (`mini_analysis::lint_unit`, a dedicated
//!    pre-order walk outside any pipeline),
//!
//! across fused/mega plans × jobs ∈ {1, 4} × subtree pruning
//! {Off, On, Auto} × the dynamic checker. Pruning is the sharp edge: the
//! executor may only skip subtrees containing no kind in the lint masks,
//! so a pruned run dropping (or duplicating) a finding is a soundness bug,
//! not a tolerable approximation.
//!
//! The second property pins the incremental surface: an edit series
//! replayed through a linted [`CompileSession`] must report byte-identical
//! findings to a from-scratch `compile_sources` over the same sources
//! after every edit — cached findings splice back exactly as fresh ones.

use miniphases::mini_driver::{compile_sources, standard_plan, CompileSession, CompilerOptions};
use miniphases::mini_ir::Ctx;
use miniphases::miniphase::{sort_findings, CompilationUnit, Finding, Pipeline, SubtreePruning};
use miniphases::{mini_analysis, mini_front, workload};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Frontend-compiles a corpus into typed units (shared by the reference
/// and standalone arms; the fused arm drives the full driver instead).
fn frontend(units: &[(String, String)], opts: &CompilerOptions) -> (Ctx, Vec<CompilationUnit>) {
    let mut ctx = Ctx::new();
    opts.configure_ctx(&mut ctx);
    let mut out = Vec::new();
    for (n, s) in units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        out.push(CompilationUnit::new(t.name, t.tree));
    }
    assert!(!ctx.has_errors(), "corpus type-checks");
    (ctx, out)
}

fn fused_findings(units: &[(String, String)], opts: &CompilerOptions) -> Vec<Finding> {
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    compile_sources(&refs, opts).expect("compiles").findings
}

fn reference_findings(units: &[(String, String)], opts: &CompilerOptions) -> Vec<Finding> {
    let (mut ctx, typed) = frontend(units, opts);
    let (phases, plan) = standard_plan(opts).expect("plan");
    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units_reference(&mut ctx, typed);
    drop(out);
    let mut findings = std::mem::take(&mut pipe.findings);
    sort_findings(&mut findings);
    findings
}

fn standalone_findings(units: &[(String, String)], opts: &CompilerOptions) -> Vec<Finding> {
    let (ctx, typed) = frontend(units, opts);
    let mut findings = Vec::new();
    for u in &typed {
        findings.extend(mini_analysis::lint_unit(&ctx.symbols, &u.name, &u.tree));
    }
    sort_findings(&mut findings);
    findings
}

fn opts_for(mode: u8, jobs: usize, prune: u8, check: bool) -> CompilerOptions {
    let base = if mode.is_multiple_of(2) {
        CompilerOptions::fused()
    } else {
        CompilerOptions::mega()
    };
    base.with_pruning_mode(match prune % 3 {
        0 => SubtreePruning::Off,
        1 => SubtreePruning::On,
        _ => SubtreePruning::Auto,
    })
    .with_jobs(jobs)
    .with_check(check)
    .with_lint(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fused_matches_reference_and_standalone(
        seed in 0u64..10_000,
        loc in 200usize..700,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        prune in 0u8..3,
        check in 0u8..2,
    ) {
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, prune, check == 1);
        let w = workload::generate(&workload::WorkloadConfig {
            target_loc: loc,
            seed,
            unit_loc: 250,
        });

        let fused = fused_findings(&w.units, &opts);
        prop_assert!(
            !fused.is_empty(),
            "the seeded corpus must produce findings (generator seeds regressed?)"
        );
        let reference = reference_findings(&w.units, &opts);
        let standalone = standalone_findings(&w.units, &opts);
        prop_assert_eq!(
            &fused, &reference,
            "fused pipeline != reference executor (jobs {}, prune {})", jobs, prune
        );
        prop_assert_eq!(
            &fused, &standalone,
            "fused pipeline != standalone traversal (jobs {}, prune {})", jobs, prune
        );
    }

    #[test]
    fn incremental_findings_match_from_scratch(
        corpus_seed in 0u64..10_000,
        edit_seed in 0u64..10_000,
        units in 4usize..8,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        prune in 0u8..3,
    ) {
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, prune, false);
        let cfg = workload::LinkedConfig { units, seed: corpus_seed };
        let script = workload::edit_series(&cfg, 4, edit_seed);

        let mut sources: BTreeMap<String, String> =
            script.base.units.iter().cloned().collect();
        let mut session = CompileSession::new(opts);
        for (n, s) in &sources {
            session.update(n.clone(), s.clone());
        }
        let scratch = |sources: &BTreeMap<String, String>| -> Vec<Finding> {
            let owned: Vec<(String, String)> = sources
                .iter()
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect();
            fused_findings(&owned, &opts)
        };

        let cold = session.compile().expect("cold compile").findings;
        prop_assert!(!cold.is_empty(), "seeded linked corpus must produce findings");
        prop_assert_eq!(&cold, &scratch(&sources), "cold findings mismatch");

        for (i, edit) in script.edits.iter().enumerate() {
            sources.insert(edit.unit.clone(), edit.source.clone());
            session.update(edit.unit.clone(), edit.source.clone());
            let warm = session.compile().expect("warm compile");
            // Body edits splice most findings back from cache — they must
            // still be byte-identical to a fresh detection pass.
            prop_assert_eq!(
                &warm.findings,
                &scratch(&sources),
                "after edit {} ({:?} on {}): cached findings != from-scratch",
                i, edit.kind, edit.unit
            );
        }
    }
}

/// Lint is observation-only: turning it on changes no output tree, no VM
/// output and no transform-group accounting (the lint group is a plan
/// *prefix*, so the transform groups' own stats stay byte-identical).
#[test]
fn lint_is_output_neutral() {
    let w = workload::generate(&workload::WorkloadConfig {
        target_loc: 400,
        seed: 17,
        unit_loc: 200,
    });
    let refs: Vec<(&str, &str)> = w
        .units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let plain = compile_sources(&refs, &CompilerOptions::fused()).expect("compiles");
    let linted =
        compile_sources(&refs, &CompilerOptions::fused().with_lint(true)).expect("compiles");
    assert!(plain.findings.is_empty(), "lint off must report nothing");
    assert!(!linted.findings.is_empty(), "lint on must report the seeds");
    let mut vm_a = miniphases::mini_backend::Vm::new(&plain.program);
    let mut vm_b = miniphases::mini_backend::Vm::new(&linted.program);
    vm_a.run_main().expect("runs");
    vm_b.run_main().expect("runs");
    assert_eq!(vm_a.out, vm_b.out, "lint must not change program behaviour");
    assert_eq!(
        linted.groups,
        plain.groups + 1,
        "lint adds exactly one (prefix) group"
    );
}
