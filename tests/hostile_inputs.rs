//! Hostile-input battery: malformed, adversarial and pathological sources
//! must surface as structured [`CompileError`] values — never a panic
//! escaping the driver API, and never a process-aborting stack overflow.
//!
//! This is the panic-audit satellite of the robustness PR: any input a
//! user can type is "malformed-but-parseable-reachable" territory, so the
//! frontend owes it a diagnostic. Internal invariants on *well-typed*
//! trees stay as panics/debug_asserts — they are covered by the
//! isolation fences, not by this battery.

use miniphases::mini_driver::{compile_sources, CompileError, CompilerOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compiles one hostile source behind an unwind fence; panicking is the
/// only way to fail this helper.
fn compile_hostile(label: &str, src: &str) -> Result<(), CompileError> {
    for opts in [CompilerOptions::fused(), CompilerOptions::mega()] {
        let result = catch_unwind(AssertUnwindSafe(|| {
            compile_sources(&[("hostile.ms", src)], &opts)
        }));
        match result {
            Ok(r) => {
                if let Err(e) = r {
                    // Structured is all we demand; also exercise Display.
                    let _ = e.to_string();
                    return Err(e);
                }
            }
            Err(p) => {
                let msg = miniphases::miniphase::faults::panic_message(p.as_ref());
                panic!("hostile input `{label}` escaped as a panic: {msg}");
            }
        }
    }
    Ok(())
}

fn expect_rejected(label: &str, src: &str) {
    assert!(
        compile_hostile(label, src).is_err(),
        "hostile input `{label}` was accepted"
    );
}

#[test]
fn deep_expression_nesting_degrades_to_a_parse_error() {
    let src = format!(
        "def main(): Unit = println({}1{})\n",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    match compile_hostile("deep parens", &src) {
        Err(CompileError::Parse(e)) => {
            assert!(
                e.to_string().contains("depth limit"),
                "expected the depth-limit diagnostic, got: {e}"
            );
        }
        other => panic!("expected a parse error, got: {:?}", other.map(|()| "Ok")),
    }
}

#[test]
fn deep_block_nesting_degrades_to_a_parse_error() {
    let src = format!(
        "def main(): Unit = {}println(1){}\n",
        "{".repeat(5000),
        "}".repeat(5000)
    );
    expect_rejected("deep blocks", &src);
}

#[test]
fn deep_type_nesting_degrades_to_a_parse_error() {
    let src = format!(
        "def f(x: {}Int{}): Int = x\n",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    expect_rejected("deep type parens", &src);
}

#[test]
fn deep_prefix_chain_degrades_to_a_parse_error() {
    // Spaces keep each `-` its own token, forcing prefix recursion.
    let src = format!("def main(): Unit = println({}1)\n", "- ".repeat(5000));
    expect_rejected("deep prefix chain", &src);
}

#[test]
fn deep_pattern_nesting_degrades_to_a_parse_error() {
    let src = format!(
        "def f(x: Any): Int = x match {{\n  case {}n: Int{} => n\n  case _ => 0\n}}\n",
        "a @ (".repeat(5000),
        ")".repeat(5000)
    );
    expect_rejected("deep pattern nesting", &src);
}

#[test]
fn nesting_under_the_limit_still_parses() {
    // Each source paren level costs ~2 descent steps (expr + prefix), so
    // 40 levels sits comfortably under the 128-step ceiling.
    let src = format!(
        "def main(): Unit = println({}1{})\n",
        "(".repeat(40),
        ")".repeat(40)
    );
    assert!(
        compile_hostile("shallow parens", &src).is_ok(),
        "well-formed nesting under the limit must compile"
    );
}

#[test]
fn lexical_garbage_is_rejected_structurally() {
    for (label, src) in [
        ("unterminated string", "def main(): Unit = println(\"oops\n"),
        (
            "huge int literal",
            "def main(): Unit = println(999999999999999999999999999)\n",
        ),
        (
            "stray control bytes",
            "def main(): Unit = \u{1}\u{2}\u{3}\n",
        ),
        (
            "unclosed comment",
            "def main(): Unit = println(1) /* never closed\n",
        ),
        ("unbalanced braces", "def main(): Unit = { println(1)\n"),
        (
            "operator soup",
            "def main(): Unit = + * / % < > = != == => <= >= && ||\n",
        ),
    ] {
        expect_rejected(label, src);
    }
}

#[test]
fn malformed_but_parseable_programs_get_diagnostics() {
    for (label, src) in [
        ("unknown name", "def main(): Unit = println(nosuch)\n"),
        (
            "unknown type",
            "def f(x: NoSuchType): Int = 0\ndef main(): Unit = println(f(1))\n",
        ),
        (
            "wrong arity",
            "def f(n: Int): Int = n\ndef main(): Unit = println(f(1, 2))\n",
        ),
        (
            "type mismatch",
            "def main(): Unit = println(1 + \"two\" * true)\n",
        ),
        (
            "array arity",
            "def f(x: Array[Int, Int]): Int = 0\ndef main(): Unit = println(0)\n",
        ),
        (
            "assign to literal",
            "def main(): Unit = { 1 = 2\n  println(1)\n}\n",
        ),
        (
            "tparam with args",
            "def f[T](x: T[Int]): Int = 0\ndef main(): Unit = println(0)\n",
        ),
        ("new of builtin", "def main(): Unit = println(new Int(3))\n"),
        (
            "self-recursive val",
            "def main(): Unit = { val x: Int = x\n  println(x)\n}\n",
        ),
        (
            "left-deep operator chain",
            &format!(
                "def main(): Unit = println({})\n",
                (0..2000)
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(" + ")
            ),
        ),
    ] {
        let err = compile_hostile(label, src);
        assert!(err.is_err(), "`{label}` was accepted");
        assert!(
            !matches!(err, Err(CompileError::Internal { .. })),
            "`{label}` hit an internal error instead of a diagnostic"
        );
    }
}

#[test]
fn pathological_shapes_compile_or_reject_without_panicking() {
    // Wide rather than deep: these should mostly succeed; the pin is
    // purely that nothing panics and failures stay structured. Operator
    // chains build a left-deep AST, so their supported length is bounded
    // by typer stack, not the parser ceiling — 400 is within the
    // supported range in debug builds.
    let wide_call = format!(
        "def f(n: Int): Int = n\ndef main(): Unit = println({})\n",
        (0..400)
            .map(|i| format!("f({i})"))
            .collect::<Vec<_>>()
            .join(" + ")
    );
    let many_defs = (0..2000)
        .map(|i| format!("def f{i}(): Int = {i}\n"))
        .chain(std::iter::once(
            "def main(): Unit = println(f0())\n".to_owned(),
        ))
        .collect::<String>();
    let long_string = format!("def main(): Unit = println(\"{}\")\n", "x".repeat(100_000));
    let empty = "";
    let only_comments = "// nothing\n/* here\neither */\n";
    for (label, src) in [
        ("wide call chain", wide_call.as_str()),
        ("many defs", many_defs.as_str()),
        ("long string", long_string.as_str()),
        ("empty source", empty),
        ("only comments", only_comments),
    ] {
        // Ok or structured Err are both fine (empty units have no main).
        eprintln!("pathological case: {label}");
        let _ = compile_hostile(label, src);
    }
}
