//! Property tests pinning the iterative executor to its executable
//! specification: over generated MiniScala workloads, the explicit-stack
//! walk (`Pipeline::run_units`) must produce **byte-identical** trees and
//! **identical** `ExecStats` to the retained recursive reference
//! implementation (`Pipeline::run_units_reference`), in every pipeline mode
//! and fusion-option ablation.

use miniphases::mini_driver::{standard_plan, CompilerOptions};
use miniphases::mini_ir::{printer, Ctx};
use miniphases::miniphase::{CompilationUnit, ExecStats, Pipeline, SubtreePruning};
use miniphases::{mini_front, workload};
use proptest::prelude::*;

/// Runs the standard pipeline over a generated corpus and renders every
/// output tree to text. `reference` selects the recursive executor.
fn run_pipeline(
    cfg: &workload::WorkloadConfig,
    opts: &CompilerOptions,
    reference: bool,
) -> (Vec<String>, ExecStats) {
    let w = workload::generate(cfg);
    let mut ctx = Ctx::new();
    opts.configure_ctx(&mut ctx);
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    assert!(!ctx.has_errors(), "corpus type-checks");
    let (phases, plan) = standard_plan(opts).expect("plan");
    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
    let out = if reference {
        pipe.run_units_reference(&mut ctx, units)
    } else {
        pipe.run_units(&mut ctx, units)
    };
    let printed = out
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &ctx.symbols)
            )
        })
        .collect();
    (printed, pipe.stats)
}

fn opts_for(mode: u8, ablation: u8) -> CompilerOptions {
    let mut opts = match mode % 3 {
        0 => CompilerOptions::fused(),
        1 => CompilerOptions::mega(),
        _ => CompilerOptions::legacy(),
    };
    match ablation % 6 {
        1 => opts.fusion.identity_skip = false,
        2 => opts.fusion.same_kind_fast_path = false,
        3 => opts.fusion.prepare_always = true,
        4 => opts.fusion.subtree_pruning = SubtreePruning::On,
        5 => opts.fusion.subtree_pruning = SubtreePruning::Auto,
        _ => {}
    }
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn iterative_walk_matches_recursive_reference(
        seed in 0u64..10_000,
        loc in 200usize..900,
        mode in 0u8..3,
        ablation in 0u8..6,
    ) {
        let cfg = workload::WorkloadConfig { target_loc: loc, seed, unit_loc: 250 };
        let opts = opts_for(mode, ablation);
        let (trees_iter, stats_iter) = run_pipeline(&cfg, &opts, false);
        let (trees_ref, stats_ref) = run_pipeline(&cfg, &opts, true);
        prop_assert_eq!(
            &stats_iter, &stats_ref,
            "ExecStats diverged (mode {}, ablation {}): {:?} vs {:?}",
            mode, ablation, stats_iter, stats_ref
        );
        prop_assert_eq!(trees_iter.len(), trees_ref.len());
        for (a, b) in trees_iter.iter().zip(trees_ref.iter()) {
            prop_assert!(a == b, "printed trees diverged:\n--- iterative\n{}\n--- reference\n{}", a, b);
        }
    }
}
