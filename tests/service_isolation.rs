//! Cross-session isolation: the shared-store pin.
//!
//! K compile sessions sharing one [`SharedArtifactStore`] — with faults
//! injected into one tenant — must be observably indistinguishable from K
//! fully-isolated sessions replaying the same edit streams:
//!
//! * every **non-faulted** tenant's per-step output (printed trees, VM
//!   output, merged `ExecStats`) is byte-identical to its isolated twin;
//! * the **faulted** tenant never lets a panic escape, fails only with
//!   structured errors, and — once the fault budget is spent — converges
//!   back to byte-identity with its isolated twin;
//! * a **corrupted shared entry** is quarantined by the detecting session
//!   and recompiled locally, without evicting other tenants' healthy
//!   entries or perturbing any output.
//!
//! Sharing may change *wall clock* (cross-session cache hits) — never
//! output. This is the same determinism contract the incremental and
//! parallel pins enforce, extended across session boundaries.

use miniphases::mini_driver::{
    CompileError, CompileSession, Compiled, CompilerOptions, SharedArtifactStore,
};
use miniphases::miniphase::{FaultKind, FaultPlan};
use miniphases::{mini_backend, mini_ir, workload};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const CLIENTS: usize = 3;
const EDITS: usize = 4;

/// Printed trees + VM output + merged ExecStats: the byte-identity
/// observation.
#[derive(PartialEq, Debug, Clone)]
struct Observed {
    printed: Vec<String>,
    vm_out: Vec<String>,
    exec: miniphases::miniphase::ExecStats,
}

fn observe(c: &Compiled) -> Observed {
    let printed = c
        .units
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                mini_ir::printer::print_tree(&u.tree, &c.ctx.symbols)
            )
        })
        .collect();
    let mut vm = mini_backend::Vm::new(&c.program);
    vm.run_main().expect("program runs");
    Observed {
        printed,
        vm_out: vm.out.clone(),
        exec: c.exec,
    }
}

/// One client's sessions (shared-store and isolated twin) plus its edit
/// stream.
struct Client {
    shared: CompileSession,
    isolated: CompileSession,
    script: workload::EditScript,
}

fn build_clients(
    cfg: &workload::LinkedConfig,
    edit_seed: u64,
    opts: CompilerOptions,
    store: &Arc<SharedArtifactStore>,
) -> Vec<Client> {
    (0..CLIENTS)
        .map(|c| {
            let script = workload::client_series(cfg, c, EDITS, edit_seed);
            let mut shared = CompileSession::new(opts);
            shared.attach_shared_store(Arc::clone(store), format!("client{c:02}"));
            let mut isolated = CompileSession::new(opts);
            for (n, s) in &script.base.units {
                shared.update(n.clone(), s.clone());
                isolated.update(n.clone(), s.clone());
            }
            Client {
                shared,
                isolated,
                script,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shared_store_sessions_match_isolated_twins(
        corpus_seed in 0u64..10_000,
        edit_seed in 0u64..10_000,
        units in 4usize..7,
        fault_step in 1usize..(EDITS + 1),
    ) {
        let opts = CompilerOptions::fused().with_jobs(2);
        let cfg = workload::LinkedConfig { units, seed: corpus_seed };
        let store = Arc::new(SharedArtifactStore::new(None));
        let mut clients = build_clients(&cfg, edit_seed, opts, &store);

        // Two shots: the parallel attempt AND the sequential downgrade both
        // panic, so the faulted step surfaces a structured Internal error
        // rather than healing silently.
        let plan = Arc::new(
            FaultPlan::new(edit_seed).with_fault(FaultKind::PanicOnUnit { unit: 0 }, 2),
        );

        // Round-robin the clients through their streams: step 0 is the cold
        // compile, steps 1..=EDITS apply each client's edit series.
        for step in 0..=EDITS {
            for (c, client) in clients.iter_mut().enumerate() {
                if step > 0 {
                    let edit = &client.script.edits[step - 1];
                    client.shared.update(edit.unit.clone(), edit.source.clone());
                    client.isolated.update(edit.unit.clone(), edit.source.clone());
                }
                if c == 0 && step == fault_step {
                    client.shared.inject_faults(Arc::clone(&plan));
                }
                let shared_result =
                    catch_unwind(AssertUnwindSafe(|| client.shared.compile()))
                        .map_err(|_| ())
                        .ok();
                prop_assert!(
                    shared_result.is_some(),
                    "client {c} step {step}: a panic escaped the shared session"
                );
                let isolated = client.isolated.compile();
                match (shared_result.expect("checked above"), isolated) {
                    (Ok(s), Ok(i)) => {
                        prop_assert_eq!(
                            observe(&s),
                            observe(&i),
                            "client {} step {}: shared output diverged",
                            c,
                            step
                        );
                    }
                    (Err(CompileError::Internal { .. }), Ok(_)) => {
                        // Only the faulted tenant, only inside its window.
                        prop_assert_eq!(c, 0, "non-faulted tenant failed");
                        prop_assert_eq!(step, fault_step, "failure outside the window");
                        // Re-align the isolated twin: drop its result for
                        // this step (already consumed) — the next compile
                        // on both sides rebuilds from the same sources.
                    }
                    (Err(e), _) => {
                        return Err(TestCaseError(format!(
                            "client {c} step {step}: unexpected error {e}"
                        )));
                    }
                    (Ok(_), Err(e)) => {
                        return Err(TestCaseError(format!(
                            "client {c} step {step}: isolated twin failed: {e}"
                        )));
                    }
                }
            }
        }

        // Faulted tenant: budget spent, final clean compile converges.
        clients[0].shared.clear_faults();
        prop_assert!(plan.fired(), "the fault never fired");
        let final_shared = clients[0].shared.compile();
        let final_isolated = clients[0].isolated.compile();
        match (final_shared, final_isolated) {
            (Ok(s), Ok(i)) => prop_assert_eq!(
                observe(&s),
                observe(&i),
                "faulted tenant did not converge after recovery"
            ),
            (s, i) => {
                return Err(TestCaseError(format!(
                    "final compiles failed: shared ok={} isolated ok={}",
                    s.is_ok(),
                    i.is_ok()
                )))
            }
        }

        // The sharing actually happened (identical shared units across
        // clients' cold compiles), and nothing was silently dropped.
        let stats = store.stats();
        prop_assert!(stats.hits >= 1, "no cross-session reuse occurred");
        prop_assert!(stats.publishes >= 1);
    }
}

/// Deterministic quarantine scenario: one corrupted shared entry is
/// detected, quarantined and recompiled by the *consuming* session; every
/// healthy entry still hits; no other tenant's artifacts are evicted.
#[test]
fn corrupted_shared_entry_is_quarantined_not_spread() {
    let opts = CompilerOptions::fused();
    let cfg = workload::LinkedConfig { units: 5, seed: 77 };
    let base = workload::generate_linked(&cfg);
    let store = Arc::new(SharedArtifactStore::new(None));

    // Session A publishes the whole corpus.
    let mut a = CompileSession::new(opts);
    a.attach_shared_store(Arc::clone(&store), "tenant-a");
    for (n, s) in &base.units {
        a.update(n.clone(), s.clone());
    }
    let a_out = observe(&a.compile().expect("A compiles"));
    let published = store.stats().publishes;
    assert!(
        published >= base.units.len() as u64,
        "A published its units"
    );

    // Corrupt exactly one stored entry (checksum flip, injected).
    store.inject_faults(Arc::new(
        FaultPlan::new(9).with_fault(FaultKind::StoreCorruption { entries: 1 }, 1),
    ));

    // Session B cold-compiles the same corpus through the store.
    let mut b = CompileSession::new(opts);
    b.attach_shared_store(Arc::clone(&store), "tenant-b");
    for (n, s) in &base.units {
        b.update(n.clone(), s.clone());
    }
    let b_out = observe(&b.compile().expect("B compiles despite the corruption"));
    assert_eq!(a_out, b_out, "quarantine must not change output");

    let b_stats = b.cache_stats();
    assert_eq!(
        b_stats.shared_quarantined, 1,
        "B detected and quarantined exactly the corrupted entry"
    );
    assert!(
        b_stats.shared_hits >= 1,
        "healthy entries still hit (got {})",
        b_stats.shared_hits
    );
    let stats = store.stats();
    assert_eq!(stats.quarantined, 1, "store counted the quarantine");
    assert_eq!(stats.injected_corruptions, 1);
    assert!(
        stats.entries >= published,
        "B's recompile republished; healthy entries were not evicted \
         ({} entries vs {} published)",
        stats.entries,
        published
    );

    // A third session now sees a fully healed store: no further
    // quarantines, and the recompiled entry hits again.
    let mut c = CompileSession::new(opts);
    c.attach_shared_store(Arc::clone(&store), "tenant-c");
    for (n, s) in &base.units {
        c.update(n.clone(), s.clone());
    }
    let c_out = observe(&c.compile().expect("C compiles"));
    assert_eq!(a_out, c_out);
    assert_eq!(c.cache_stats().shared_quarantined, 0, "store healed");
    assert_eq!(store.stats().quarantined, 1, "no new quarantines");
}
