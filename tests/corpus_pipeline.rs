//! Corpus-level integration: the deterministic workload compiles through the
//! whole system, experiment shapes from the paper hold, and the generated
//! programs actually execute on the VM.

use miniphases::gc_sim::GcConfig;
use miniphases::mini_backend::Vm;
use miniphases::mini_driver::metrics::{measure, Instrumentation};
use miniphases::mini_driver::{compile_sources, CompilerOptions};
use miniphases::workload::{generate, WorkloadConfig};

fn corpus() -> miniphases::workload::Workload {
    generate(&WorkloadConfig {
        target_loc: 2_000,
        seed: 23,
        unit_loc: 250,
    })
}

#[test]
fn corpus_compiles_and_its_main_runs() {
    let w = corpus();
    let compiled = compile_sources(&w.sources(), &CompilerOptions::fused()).expect("compiles");
    let mut vm = Vm::new(&compiled.program);
    vm.run_main().expect("main runs");
    assert_eq!(vm.out, vec!["corpus compiled"]);
}

#[test]
fn headline_shapes_hold_on_the_corpus() {
    // The paper's headline claims, checked as *shapes* on a small corpus:
    // fewer traversals, fewer node visits, no more allocation, less tenuring,
    // fewer DRAM accesses, and cycles improving more than instructions.
    let w = corpus();
    let instr = Instrumentation {
        gc_config: Some(GcConfig {
            nursery_bytes: 64 << 10,
            tenure_age: 1,
        }),
        ..Instrumentation::full()
    };
    let mini = measure(&w.sources(), &CompilerOptions::fused(), instr).expect("mini");
    let mega = measure(&w.sources(), &CompilerOptions::mega(), instr).expect("mega");

    assert!(mini.groups < mega.groups);
    assert!(mini.exec.node_visits * 2 < mega.exec.node_visits);
    assert!(mini.alloc.bytes <= mega.alloc.bytes);
    // Tenuring is quantized by nursery boundaries; on a 2 kLOC corpus allow
    // 5% noise (the full-scale runs in EXPERIMENTS.md use paper-size
    // corpora).
    assert!(
        mini.gc.tenured_bytes as f64 <= mega.gc.tenured_bytes as f64 * 1.05,
        "tenured: mini={} mega={}",
        mini.gc.tenured_bytes,
        mega.gc.tenured_bytes
    );
    assert!(
        mini.cache.llc_misses < mega.cache.llc_misses,
        "DRAM: mini={} mega={}",
        mini.cache.llc_misses,
        mega.cache.llc_misses
    );
    assert!(
        mini.cache.l1d_load_miss_rate() < mega.cache.l1d_load_miss_rate(),
        "L1 miss rate: mini={} mega={}",
        mini.cache.l1d_load_miss_rate(),
        mega.cache.l1d_load_miss_rate()
    );
    let instr_ratio = mini.instructions as f64 / mega.instructions as f64;
    let cycle_ratio = mini.cycles as f64 / mega.cycles as f64;
    assert!(cycle_ratio < instr_ratio, "{cycle_ratio} vs {instr_ratio}");
    // Nearly the same logical transform work in both pipelines. (Not
    // exactly equal: nodes synthesized mid-traversal are observed by later
    // phases at the same visit under fusion, but only in the *next*
    // traversal under Megaphase — the paper's "seeing the future".)
    let mt_ratio = mini.exec.member_transforms as f64 / mega.exec.member_transforms as f64;
    assert!(
        (0.85..=1.15).contains(&mt_ratio),
        "member transforms diverged: {mt_ratio}"
    );
}

#[test]
fn ablations_do_not_change_results() {
    // Turning off the Listing 6 fast paths must not change the compiled
    // program, only its cost.
    let w = corpus();
    use miniphases::miniphase::FusionOptions;
    let variants = [
        FusionOptions::default(),
        FusionOptions {
            identity_skip: false,
            ..FusionOptions::default()
        },
        FusionOptions {
            same_kind_fast_path: false,
            ..FusionOptions::default()
        },
        FusionOptions {
            prepare_always: true,
            ..FusionOptions::default()
        },
    ];
    let mut reference: Option<usize> = None;
    for fusion in variants {
        let mut opts = CompilerOptions::fused();
        opts.fusion = fusion;
        let compiled = compile_sources(&w.sources(), &opts).expect("compiles");
        let mut vm = Vm::new(&compiled.program);
        vm.run_main().expect("runs");
        assert_eq!(vm.out, vec!["corpus compiled"]);
        let size = compiled.program.code_size();
        match reference {
            None => reference = Some(size),
            Some(r) => assert_eq!(size, r, "ablation changed generated code"),
        }
    }
}

#[test]
fn granularity_sweep_monotonically_reduces_traversals() {
    let w = corpus();
    let mut last_groups = usize::MAX;
    for cap in [1usize, 2, 4, 8, 22] {
        let mut opts = CompilerOptions::fused();
        opts.max_group_size = Some(cap);
        let m = measure(&w.sources(), &opts, Instrumentation::default()).expect("compiles");
        assert!(
            m.groups <= last_groups,
            "groups must not increase with a larger cap"
        );
        last_groups = m.groups;
    }
    assert_eq!(last_groups, 6, "uncapped fusion reaches the 6-block plan");
}
