//! PR 9 pins: the dataflow layer's three contracts.
//!
//! 1. **DCE output-neutrality** — compiling with
//!    [`CompilerOptions::with_dce`] must leave VM output *and* findings
//!    byte-identical to a DCE-off run across fused/mega plans × jobs
//!    {1, 4} × subtree pruning {Off, On, Auto} × the dynamic checker, and
//!    across incremental sessions (cached artifacts ≡ from-scratch). The
//!    eliminated-node counter must be nonzero exactly when DCE ran (the
//!    workload's flow seeds guarantee eliminable code in every unit).
//! 2. **CFG well-formedness** — every graph built over generated corpora
//!    passes [`Cfg::validate`]: entry/exit invariants, edge targets in
//!    range, deduplicated and mutually consistent edge lists, and a
//!    reachability verdict for every block.
//! 3. **L004 dominance** — the path-sensitive definite-assignment rule is
//!    strictly better than the retired syntactic core on both sides: it
//!    suppresses the lambda-capture false positive and catches the
//!    self-referential-first-assignment false negative.

use miniphases::mini_driver::{compile_sources, CompileSession, CompilerOptions};
use miniphases::mini_ir::{Constant, Ctx, Flags, Kids, Name, SymbolId, TreeKind, TreeRef, Type};
use miniphases::miniphase::{Finding, SubtreePruning};
use miniphases::{mini_analysis, mini_backend, mini_front, workload};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn opts_for(mode: u8, jobs: usize, prune: u8, check: bool) -> CompilerOptions {
    let base = if mode.is_multiple_of(2) {
        CompilerOptions::fused()
    } else {
        CompilerOptions::mega()
    };
    base.with_pruning_mode(match prune % 3 {
        0 => SubtreePruning::Off,
        1 => SubtreePruning::On,
        _ => SubtreePruning::Auto,
    })
    .with_jobs(jobs)
    .with_check(check)
    .with_lint(true)
}

/// Compiles and runs, returning (VM output, findings, eliminated nodes).
fn run(units: &[(String, String)], opts: &CompilerOptions) -> (Vec<String>, Vec<Finding>, u64) {
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let compiled = compile_sources(&refs, opts).expect("compiles");
    let mut vm = mini_backend::Vm::new(&compiled.program);
    vm.run_main().expect("runs");
    (vm.out, compiled.findings, compiled.exec.nodes_eliminated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dce_is_output_neutral_across_modes(
        seed in 0u64..10_000,
        loc in 200usize..600,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        prune in 0u8..3,
        check in 0u8..2,
    ) {
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, prune, check == 1);
        let w = workload::generate(&workload::WorkloadConfig {
            target_loc: loc,
            seed,
            unit_loc: 250,
        });

        let (out_plain, findings_plain, elim_plain) = run(&w.units, &opts);
        let (out_dce, findings_dce, elim_dce) = run(&w.units, &opts.with_dce(true));
        prop_assert_eq!(
            &out_plain, &out_dce,
            "DCE changed VM output (mode {}, jobs {}, prune {})", mode, jobs, prune
        );
        prop_assert_eq!(
            &findings_plain, &findings_dce,
            "DCE changed findings — the analysis prefix must harvest them pre-DCE"
        );
        prop_assert!(!findings_dce.is_empty(), "seeded corpus must produce findings");
        prop_assert_eq!(elim_plain, 0, "no elimination without the flag");
        prop_assert!(
            elim_dce > 0,
            "the flow seeds guarantee eliminable code in every unit"
        );

        // DCE without lint: same program, no findings channel.
        let (out_solo, findings_solo, elim_solo) =
            run(&w.units, &opts.with_lint(false).with_dce(true));
        prop_assert_eq!(&out_plain, &out_solo, "lint-less DCE changed VM output");
        prop_assert!(findings_solo.is_empty(), "no lint, no findings");
        prop_assert!(elim_solo > 0, "DCE runs without the lint suite too");
    }

    #[test]
    fn incremental_dce_matches_from_scratch(
        corpus_seed in 0u64..10_000,
        edit_seed in 0u64..10_000,
        units in 4usize..8,
        mode in 0u8..2,
        jobs_pick in 0u8..2,
        prune in 0u8..3,
    ) {
        let jobs = if jobs_pick == 0 { 1 } else { 4 };
        let opts = opts_for(mode, jobs, prune, false).with_dce(true);
        let cfg = workload::LinkedConfig { units, seed: corpus_seed };
        let script = workload::edit_series(&cfg, 3, edit_seed);

        let mut sources: BTreeMap<String, String> =
            script.base.units.iter().cloned().collect();
        let mut session = CompileSession::new(opts);
        for (n, s) in &sources {
            session.update(n.clone(), s.clone());
        }
        let scratch = |sources: &BTreeMap<String, String>| {
            let owned: Vec<(String, String)> = sources
                .iter()
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect();
            run(&owned, &opts)
        };

        let cold = session.compile().expect("cold compile");
        let mut vm = mini_backend::Vm::new(&cold.program);
        vm.run_main().expect("runs");
        let (scr_out, scr_findings, _) = scratch(&sources);
        prop_assert_eq!(&vm.out, &scr_out, "cold VM output mismatch");
        prop_assert_eq!(&cold.findings, &scr_findings, "cold findings mismatch");

        for (i, edit) in script.edits.iter().enumerate() {
            sources.insert(edit.unit.clone(), edit.source.clone());
            session.update(edit.unit.clone(), edit.source.clone());
            let warm = session.compile().expect("warm compile");
            let mut vm = mini_backend::Vm::new(&warm.program);
            vm.run_main().expect("runs");
            let (scr_out, scr_findings, _) = scratch(&sources);
            prop_assert_eq!(
                &vm.out, &scr_out,
                "after edit {} ({:?} on {}): incremental DCE output != from-scratch",
                i, edit.kind, edit.unit
            );
            prop_assert_eq!(
                &warm.findings, &scr_findings,
                "after edit {}: cached findings != from-scratch under DCE", i
            );
        }
    }

    #[test]
    fn cfg_well_formed_on_generated_corpora(
        seed in 0u64..10_000,
        loc in 200usize..600,
    ) {
        let w = workload::generate(&workload::WorkloadConfig {
            target_loc: loc,
            seed,
            unit_loc: 250,
        });
        let mut ctx = Ctx::new();
        let mut graphs = 0usize;
        let mut branches = 0usize;
        for (n, s) in &w.units {
            let typed = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
            for cfg in mini_analysis::cfg::build_unit_cfgs(&ctx.symbols, &typed.tree) {
                cfg.validate().unwrap_or_else(|e| {
                    panic!("{n}/{}: ill-formed CFG: {e}", cfg.name)
                });
                prop_assert_eq!(
                    cfg.reachable.len(), cfg.blocks.len(),
                    "every block gets a reachability verdict"
                );
                graphs += 1;
                branches += cfg.branches.len();
            }
        }
        prop_assert!(graphs > 0, "corpus produced no CFGs");
        prop_assert!(branches > 0, "flow seeds must contribute branch sites");
    }
}

fn method(ctx: &mut Ctx, name: &str) -> SymbolId {
    let root = ctx.symbols.builtins().root_pkg;
    ctx.symbols
        .new_term(root, Name::intern(name), Flags::METHOD, Type::Int)
}

fn local(ctx: &mut Ctx, owner: SymbolId, name: &str) -> SymbolId {
    ctx.symbols
        .new_term(owner, Name::intern(name), Flags::EMPTY, Type::Int)
}

fn sp(a: u32, b: u32) -> miniphases::mini_ir::Span {
    miniphases::mini_ir::Span { start: a, end: b }
}

fn l004(findings: &[Finding]) -> Vec<&Finding> {
    findings
        .iter()
        .filter(|f| f.rule == mini_analysis::RULE_USE_BEFORE_ASSIGN)
        .collect()
}

/// The syntactic core's false positive: a lambda captures `y` whose
/// `Ident` arrives pre-order before the later `Assign`, so the walk flags
/// it — but the closure may well run after the assignment. The
/// path-sensitive rule treats captured variables as escaped and stays
/// quiet.
#[test]
fn path_sensitive_l004_suppresses_lambda_capture_false_positive() {
    let mut ctx = Ctx::new();
    let m = method(&mut ctx, "m");
    let y = local(&mut ctx, m, "y");
    let no_init = ctx.mk(TreeKind::Empty, Type::NoType, sp(0, 0));
    let decl = ctx.mk(
        TreeKind::ValDef {
            sym: y,
            rhs: no_init,
        },
        Type::Unit,
        sp(0, 8),
    );
    let captured = ctx.mk(TreeKind::Ident { sym: y }, Type::Int, sp(12, 13));
    let lam = ctx.mk(
        TreeKind::Lambda {
            params: Kids::new(),
            body: captured,
        },
        Type::Any,
        sp(9, 14),
    );
    let lhs = ctx.mk(TreeKind::Ident { sym: y }, Type::Int, sp(15, 16));
    let one = ctx.lit_int(1);
    let assign = ctx.mk(TreeKind::Assign { lhs, rhs: one }, Type::Unit, sp(15, 20));
    let read = ctx.mk(TreeKind::Ident { sym: y }, Type::Int, sp(21, 22));
    let tree = body_def(&mut ctx, m, vec![decl, lam, assign], read);

    let syn = mini_analysis::syntactic_use_before_assign(&ctx.symbols, "u", &tree);
    assert_eq!(
        l004(&syn).len(),
        1,
        "the syntactic core flags the capture (the pinned false positive)"
    );
    assert_eq!(l004(&syn)[0].span, sp(12, 13));
    let df = mini_analysis::dataflow::dataflow_findings(&ctx.symbols, &tree);
    assert!(
        l004(&df).is_empty(),
        "the path-sensitive rule treats the captured variable as escaped: {df:?}"
    );
}

/// The syntactic core's false negative: in `x = x`, the `Assign` node
/// arrives pre-order *before* its rhs read and clears the tracking, so the
/// genuinely-uninitialized read goes unreported. The CFG linearizes the
/// rhs read before the assignment event and catches it, span-exact.
#[test]
fn path_sensitive_l004_catches_self_assign_false_negative() {
    let mut ctx = Ctx::new();
    let m = method(&mut ctx, "m");
    let x = local(&mut ctx, m, "x");
    let no_init = ctx.mk(TreeKind::Empty, Type::NoType, sp(0, 0));
    let decl = ctx.mk(
        TreeKind::ValDef {
            sym: x,
            rhs: no_init,
        },
        Type::Unit,
        sp(0, 8),
    );
    let lhs = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(9, 10));
    let rhs_read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(13, 14));
    let assign = ctx.mk(
        TreeKind::Assign { lhs, rhs: rhs_read },
        Type::Unit,
        sp(9, 14),
    );
    let read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(15, 16));
    let tree = body_def(&mut ctx, m, vec![decl, assign], read);

    let syn = mini_analysis::syntactic_use_before_assign(&ctx.symbols, "u", &tree);
    assert!(
        l004(&syn).is_empty(),
        "the syntactic core misses the read (the pinned false negative): {syn:?}"
    );
    let df = mini_analysis::dataflow::dataflow_findings(&ctx.symbols, &tree);
    let hits = l004(&df);
    assert_eq!(hits.len(), 1, "path-sensitive rule reports exactly once");
    assert_eq!(hits[0].span, sp(13, 14), "at the rhs read, span-exact");
}

/// Both branches of a join assign before the subsequent read: the
/// path-sensitive rule proves definiteness at the merge point and stays
/// quiet, where a purely syntactic treatment has no notion of a join at
/// all.
#[test]
fn path_sensitive_l004_is_quiet_on_both_branches_assign_join() {
    let mut ctx = Ctx::new();
    let m = method(&mut ctx, "m");
    let x = local(&mut ctx, m, "x");
    let c = local(&mut ctx, m, "c");
    let no_init = ctx.mk(TreeKind::Empty, Type::NoType, sp(0, 0));
    let decl = ctx.mk(
        TreeKind::ValDef {
            sym: x,
            rhs: no_init,
        },
        Type::Unit,
        sp(0, 8),
    );
    let t_lit = ctx.lit(Constant::Bool(true), sp(9, 13));
    let cdecl = ctx.mk(
        TreeKind::ValDef { sym: c, rhs: t_lit },
        Type::Unit,
        sp(9, 14),
    );
    let cond = ctx.mk(TreeKind::Ident { sym: c }, Type::Boolean, sp(18, 19));
    let lhs_t = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(20, 21));
    let one = ctx.lit_int(1);
    let then_assign = ctx.mk(
        TreeKind::Assign {
            lhs: lhs_t,
            rhs: one,
        },
        Type::Unit,
        sp(20, 25),
    );
    let lhs_e = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(26, 27));
    let two = ctx.lit_int(2);
    let else_assign = ctx.mk(
        TreeKind::Assign {
            lhs: lhs_e,
            rhs: two,
        },
        Type::Unit,
        sp(26, 31),
    );
    let iff = ctx.mk(
        TreeKind::If {
            cond,
            then_branch: then_assign,
            else_branch: else_assign,
        },
        Type::Unit,
        sp(15, 32),
    );
    let read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(33, 34));
    let tree = body_def(&mut ctx, m, vec![decl, cdecl, iff], read);

    let df = mini_analysis::dataflow::dataflow_findings(&ctx.symbols, &tree);
    assert!(
        l004(&df).is_empty(),
        "assigned on every path into the join — must not be reported: {df:?}"
    );
}

fn body_def(ctx: &mut Ctx, m: SymbolId, stats: Vec<TreeRef>, expr: TreeRef) -> TreeRef {
    let body = ctx.mk(
        TreeKind::Block {
            stats: Kids::from(stats),
            expr,
        },
        Type::Int,
        sp(0, 60),
    );
    ctx.mk(
        TreeKind::DefDef {
            sym: m,
            paramss: vec![],
            rhs: body,
        },
        Type::Nothing,
        sp(0, 61),
    )
}
