//! Fast-VM ≡ reference-VM equivalence.
//!
//! The execution overhaul (slot-resolved dispatch, inline caches,
//! superinstructions, flat frames) must be invisible at every observable
//! surface: the returned value, the captured `println` stream
//! (byte-identical), and trap/exception behavior including fuel exhaustion
//! positions. These tests pin that across compiled corpora × feature
//! ablations, plus the guest-recursion depth ceiling.

use miniphases::mini_backend::{Program, Vm, VmOptions, VmStats};
use miniphases::mini_driver::{compile_sources, CompilerOptions};
use miniphases::workload;
use proptest::prelude::*;

/// Every interesting option combination: reference, each feature alone,
/// all-on, and a couple of pairs.
fn ablations() -> Vec<(&'static str, VmOptions)> {
    let r = VmOptions::reference();
    vec![
        ("reference", r),
        (
            "+slots",
            VmOptions {
                resolved_dispatch: true,
                ..r
            },
        ),
        (
            "+ic",
            VmOptions {
                inline_caches: true,
                ..r
            },
        ),
        (
            "+fuse",
            VmOptions {
                superinstructions: true,
                ..r
            },
        ),
        (
            "+flat",
            VmOptions {
                flat_frames: true,
                ..r
            },
        ),
        (
            "+flat+fuse",
            VmOptions {
                flat_frames: true,
                superinstructions: true,
                ..r
            },
        ),
        (
            "+slots+ic",
            VmOptions {
                resolved_dispatch: true,
                inline_caches: true,
                ..r
            },
        ),
        ("fast", VmOptions::fast()),
    ]
}

/// Runs `f` on a thread with a large stack: the *reference* interpreter
/// recurses on the host stack (one `invoke` frame per guest frame, big in
/// debug builds), so equivalence sweeps that drive it near the default
/// depth budget need more headroom than a 2 MiB test thread offers. The
/// fast interpreter's flat frames don't care.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("test body")
}

/// Runs `program` under `opts` with the given fuel; renders the outcome
/// (value or error) to a comparable string alongside the output stream.
fn run(program: &Program, opts: VmOptions, fuel: u64) -> (String, Vec<String>, VmStats) {
    let mut vm = Vm::with_options(program, opts);
    vm.fuel = fuel;
    let outcome = match vm.run_main() {
        Ok(v) => format!("ok: {v:?}"),
        Err(e) => format!("err: {e:?}"),
    };
    (outcome, vm.out, vm.stats)
}

/// Asserts every ablation matches the reference on outcome + output.
fn assert_equivalent(program: &Program, fuel: u64) {
    let (ref_outcome, ref_out, _) = run(program, VmOptions::reference(), fuel);
    for (label, opts) in ablations() {
        let (outcome, out, _) = run(program, opts, fuel);
        assert_eq!(outcome, ref_outcome, "{label}: outcome diverged");
        assert_eq!(out, ref_out, "{label}: output diverged");
    }
}

fn compile(units: &workload::Workload) -> Program {
    compile_sources(&units.sources(), &CompilerOptions::fused())
        .expect("corpus compiles")
        .program
}

#[test]
fn generated_corpus_runs_identically_under_all_ablations() {
    on_big_stack(|| {
        let w = workload::generate(&workload::WorkloadConfig {
            target_loc: 1_500,
            seed: 23,
            unit_loc: 250,
        });
        assert_equivalent(&compile(&w), u64::MAX);
    });
}

#[test]
fn linked_corpus_runs_identically_under_all_ablations() {
    on_big_stack(|| {
        let cfg = workload::LinkedConfig { units: 8, seed: 42 };
        assert_equivalent(&compile(&workload::generate_linked(&cfg)), u64::MAX);
    });
}

#[test]
fn exec_corpus_runs_identically_and_exercises_the_fast_paths() {
    on_big_stack(|| {
        let cfg = workload::ExecConfig::small();
        let program = compile(&workload::generate_exec(&cfg));
        assert_equivalent(&program, u64::MAX);
        // The corpus must actually light up each optimization.
        let (_, _, stats) = run(&program, VmOptions::fast(), u64::MAX);
        assert!(stats.fused_retired > 0, "superinstructions idle: {stats:?}");
        assert!(stats.ic_hits > 0, "inline caches idle: {stats:?}");
        assert!(stats.peak_frames > 100, "deep recursion missing: {stats:?}");
        assert!(stats.ic_hit_rate() > 0.5, "mostly-miss caches: {stats:?}");
    });
}

#[test]
fn fuel_exhaustion_traps_at_identical_positions() {
    // Out-of-fuel must fire after the same logical instruction in every
    // mode — superinstructions charge per constituent — so the captured
    // output up to the trap is byte-identical.
    on_big_stack(|| {
        let cfg = workload::ExecConfig::small();
        let program = compile(&workload::generate_exec(&cfg));
        for fuel in [1_000u64, 10_000, 60_000] {
            let (ref_outcome, ref_out, _) = run(&program, VmOptions::reference(), fuel);
            assert!(ref_outcome.contains("fuel"), "fuel too high: {ref_outcome}");
            for (label, opts) in ablations() {
                let (outcome, out, _) = run(&program, opts, fuel);
                assert_eq!(outcome, ref_outcome, "{label} @ fuel {fuel}");
                assert_eq!(out, ref_out, "{label} @ fuel {fuel}: output diverged");
            }
        }
    });
}

#[test]
fn guest_recursion_hits_the_depth_ceiling_not_the_host_stack() {
    // Recursion ~4000 deep: far past DEFAULT_MAX_FRAMES, far short of what
    // the big-stack host thread could take recursively. Every mode must
    // surface the same structured trap.
    on_big_stack(|| {
        let src = "def f(n: Int): Int = if (n <= 0) 0 else f(n - 1) + 1\n\
                   def main(): Unit = println(f(4000))\n";
        let program = compile_sources(&[("deep.ms", src)], &CompilerOptions::fused())
            .expect("compiles")
            .program;
        let (ref_outcome, ref_out, _) = run(&program, VmOptions::reference(), u64::MAX);
        assert!(
            ref_outcome.contains("max call depth"),
            "expected depth trap, got {ref_outcome}"
        );
        for (label, opts) in ablations() {
            let (outcome, out, _) = run(&program, opts, u64::MAX);
            assert_eq!(outcome, ref_outcome, "{label}: trap diverged");
            assert_eq!(out, ref_out, "{label}: output diverged");
        }
        // A raised budget lets the same program finish in either mode.
        for base in [VmOptions::fast(), VmOptions::reference()] {
            let roomy = VmOptions {
                max_frames: 8_192,
                ..base
            };
            let (outcome, out, _) = run(&program, roomy, u64::MAX);
            assert!(outcome.starts_with("ok"), "{outcome}");
            assert_eq!(out, vec!["4000"]);
        }
    });
}

#[test]
fn explicit_small_budget_traps_identically_in_both_modes() {
    let src = "def f(n: Int): Int = if (n <= 0) 0 else f(n - 1) + 1\n\
               def main(): Unit = println(f(100))\n";
    let program = compile_sources(&[("deep.ms", src)], &CompilerOptions::fused())
        .expect("compiles")
        .program;
    let mut outcomes = Vec::new();
    for base in [VmOptions::fast(), VmOptions::reference()] {
        let opts = VmOptions {
            max_frames: 16,
            ..base
        };
        let (outcome, _, _) = run(&program, opts, u64::MAX);
        assert!(
            outcome.contains("max call depth 16"),
            "expected depth trap, got {outcome}"
        );
        outcomes.push(outcome);
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for any small exec corpus (seed, size, trip count) and any
    /// fuel budget, every ablation is observably identical to the reference
    /// interpreter.
    #[test]
    fn vm_fast_reference_equivalence(
        seed in 0u64..1_000,
        units in 1usize..3,
        iters in 20usize..160,
        tight_fuel in 0u8..2,
    ) {
        let cfg = workload::ExecConfig { units, seed, iters };
        let fuel = if tight_fuel == 1 { 5_000 } else { u64::MAX };
        on_big_stack(move || {
            let program = compile(&workload::generate_exec(&cfg));
            let (ref_outcome, ref_out, _) = run(&program, VmOptions::reference(), fuel);
            for (label, opts) in ablations() {
                let (outcome, out, _) = run(&program, opts, fuel);
                assert_eq!(outcome, ref_outcome, "{label} diverged");
                assert_eq!(out, ref_out, "{label}: output diverged");
            }
        });
    }
}
