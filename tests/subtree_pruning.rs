//! Subtree kind-summary pruning: semantic equivalence and effectiveness.
//!
//! With `FusionOptions::subtree_pruning` on, the executors skip whole
//! subtrees whose cached kinds-below summary shares no kind with the phase
//! group's combined prepare/transform masks. These tests pin down the two
//! sides of that optimization:
//!
//! * **equivalence** — over generated corpora, in every pipeline mode and
//!   fusion ablation, the pruned run produces byte-identical output trees to
//!   the unpruned run, and `node_visits + nodes_pruned` of the pruned run
//!   equals the unpruned run's `node_visits` (pruning only ever skips what
//!   would have been visited);
//! * **effectiveness** — a sparse-kind plan (`patmat`-only) over the
//!   dotty-like corpus actually prunes (`nodes_pruned > 0`) and visits
//!   strictly fewer nodes;
//! * **paper-exact default** — with the flag off, `nodes_pruned` stays 0.

use miniphases::mini_driver::{standard_plan, CompilerOptions};
use miniphases::mini_ir::{printer, Ctx, Tree};
use miniphases::miniphase::{
    CompilationUnit, ExecStats, MiniPhase, PhasePlan, Pipeline, SubtreePruning,
};
use miniphases::{mini_front, mini_phases, workload};
use proptest::prelude::*;

/// Parses a generated corpus into compilation units under `opts`' IR
/// tunables.
fn frontend(cfg: &workload::WorkloadConfig, opts: &CompilerOptions) -> (Ctx, Vec<CompilationUnit>) {
    let w = workload::generate(cfg);
    let mut ctx = Ctx::new();
    opts.configure_ctx(&mut ctx);
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    assert!(!ctx.has_errors(), "corpus type-checks");
    (ctx, units)
}

/// Runs the standard pipeline, returning printed output trees and stats.
fn run_standard(
    cfg: &workload::WorkloadConfig,
    opts: &CompilerOptions,
) -> (Vec<String>, ExecStats) {
    let (mut ctx, units) = frontend(cfg, opts);
    let (phases, plan) = standard_plan(opts).expect("plan");
    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units(&mut ctx, units);
    let printed = out
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &ctx.symbols)
            )
        })
        .collect();
    (printed, pipe.stats)
}

fn opts_for(mode: u8, ablation: u8) -> CompilerOptions {
    let mut opts = match mode % 3 {
        0 => CompilerOptions::fused(),
        1 => CompilerOptions::mega(),
        _ => CompilerOptions::legacy(),
    };
    match ablation % 4 {
        1 => opts.fusion.identity_skip = false,
        2 => opts.fusion.same_kind_fast_path = false,
        3 => opts.fusion.prepare_always = true,
        _ => {}
    }
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pruned_run_matches_unpruned_run(
        seed in 0u64..10_000,
        loc in 200usize..900,
        mode in 0u8..3,
        ablation in 0u8..4,
    ) {
        let cfg = workload::WorkloadConfig { target_loc: loc, seed, unit_loc: 250 };
        let off = opts_for(mode, ablation);
        let on = off.with_subtree_pruning(true);
        let auto = off.with_pruning_mode(SubtreePruning::Auto);
        let (trees_off, stats_off) = run_standard(&cfg, &off);
        let (trees_on, stats_on) = run_standard(&cfg, &on);
        let (trees_auto, stats_auto) = run_standard(&cfg, &auto);

        prop_assert_eq!(stats_off.nodes_pruned, 0, "paper-exact mode never prunes");
        prop_assert_eq!(
            stats_on.node_visits + stats_on.nodes_pruned,
            stats_off.node_visits,
            "pruning must account for exactly the nodes it skipped \
             (mode {}, ablation {}): {:?} vs {:?}",
            mode, ablation, stats_on, stats_off
        );
        // `Auto` decides per traversal, but whatever it decides the exact
        // accounting invariant (and the output trees) must hold.
        prop_assert_eq!(
            stats_auto.node_visits + stats_auto.nodes_pruned,
            stats_off.node_visits,
            "auto pruning must account exactly (mode {}, ablation {}): {:?} vs {:?}",
            mode, ablation, stats_auto, stats_off
        );
        prop_assert_eq!(stats_on.traversals, stats_off.traversals);
        prop_assert_eq!(stats_auto.traversals, stats_off.traversals);
        prop_assert_eq!(&trees_auto, &trees_off, "auto-pruned trees must match");
        if ablation % 4 == 0 {
            // With identity skip on and per-kind prepares, hooks only ever
            // fire on mask kinds — which pruning never skips — so the work
            // counters are bit-identical too.
            prop_assert_eq!(stats_on.transform_calls, stats_off.transform_calls);
            prop_assert_eq!(stats_on.member_transforms, stats_off.member_transforms);
            prop_assert_eq!(stats_on.prepare_calls, stats_off.prepare_calls);
        }
        prop_assert_eq!(trees_on.len(), trees_off.len());
        for (a, b) in trees_on.iter().zip(trees_off.iter()) {
            prop_assert!(
                a == b,
                "pruned and unpruned trees diverged:\n--- pruned\n{}\n--- unpruned\n{}",
                a, b
            );
        }
    }
}

/// Builds a single-group plan from an explicit phase list, bypassing
/// `build_plan`'s constraint validation (sparse plans deliberately omit the
/// phases the constraints name).
fn solo_plan(phases: &[Box<dyn MiniPhase>]) -> PhasePlan {
    PhasePlan {
        groups: vec![(0..phases.len()).collect()],
    }
}

/// Runs a sparse single-group plan over the corpus with and without pruning;
/// returns (pruned stats, unpruned stats, trees equal).
fn run_sparse(
    mk: fn() -> Vec<Box<dyn MiniPhase>>,
    prune: SubtreePruning,
) -> (ExecStats, Vec<String>) {
    let cfg = workload::WorkloadConfig {
        target_loc: 2_000,
        seed: 0xd077,
        unit_loc: 400,
    };
    let opts = CompilerOptions::fused().with_pruning_mode(prune);
    let (mut ctx, units) = frontend(&cfg, &opts);
    let phases = mk();
    let plan = solo_plan(&phases);
    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units(&mut ctx, units);
    let printed = out
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &ctx.symbols)
            )
        })
        .collect();
    (pipe.stats, printed)
}

fn patmat_only() -> Vec<Box<dyn MiniPhase>> {
    vec![Box::new(mini_phases::PatternMatcher::default())]
}

fn tailrec_only() -> Vec<Box<dyn MiniPhase>> {
    vec![Box::new(mini_phases::TailRec)]
}

#[test]
fn sparse_patmat_plan_prunes_subtrees() {
    let (on, trees_on) = run_sparse(patmat_only, SubtreePruning::On);
    let (off, trees_off) = run_sparse(patmat_only, SubtreePruning::Off);
    assert!(on.nodes_pruned > 0, "sparse plan must prune: {on:?}");
    assert!(
        on.node_visits < off.node_visits,
        "pruned visits {} must shrink below unpruned {}",
        on.node_visits,
        off.node_visits
    );
    assert_eq!(
        on.node_visits + on.nodes_pruned,
        off.node_visits,
        "skipped nodes are priced exactly"
    );
    assert_eq!(off.nodes_pruned, 0);
    assert_eq!(trees_on, trees_off, "pruning must not change the output");
}

#[test]
fn sparse_tailrec_plan_prunes_subtrees() {
    // `tailRec` transforms only `DefDef`: everything below a method's
    // signature line that contains no nested def is skippable.
    let (on, trees_on) = run_sparse(tailrec_only, SubtreePruning::On);
    let (off, trees_off) = run_sparse(tailrec_only, SubtreePruning::Off);
    assert!(on.nodes_pruned > 0, "sparse plan must prune: {on:?}");
    assert!(on.node_visits < off.node_visits);
    assert_eq!(trees_on, trees_off);
}

#[test]
fn auto_pruning_enables_on_sparse_plans() {
    // On a sparse single-phase plan the heuristic must engage — `Auto`
    // behaves exactly like `On`, stats and trees alike.
    let (auto, trees_auto) = run_sparse(patmat_only, SubtreePruning::Auto);
    let (on, trees_on) = run_sparse(patmat_only, SubtreePruning::On);
    assert!(
        auto.nodes_pruned > 0,
        "auto must prune a sparse plan: {auto:?}"
    );
    assert_eq!(auto, on, "auto on a sparse plan is exactly `On`");
    assert_eq!(trees_auto, trees_on);
}

#[test]
fn auto_pruning_declines_dense_groups() {
    // The dense standard fused pipeline's groups blanket most interior
    // kinds; the sparseness test must keep (at least) the bulk of the
    // traversals on the paper-exact walk, so `Auto` prunes far less than
    // `On` while keeping the exact accounting invariant.
    let cfg = workload::WorkloadConfig {
        target_loc: 1_200,
        seed: 0xd077,
        unit_loc: 300,
    };
    let (_, off) = run_standard(&cfg, &CompilerOptions::fused());
    let (_, on) = run_standard(&cfg, &CompilerOptions::fused().with_subtree_pruning(true));
    let (_, auto) = run_standard(
        &cfg,
        &CompilerOptions::fused().with_pruning_mode(SubtreePruning::Auto),
    );
    assert_eq!(auto.node_visits + auto.nodes_pruned, off.node_visits);
    assert!(
        auto.nodes_pruned <= on.nodes_pruned,
        "auto can never prune more than always-on: auto {} vs on {}",
        auto.nodes_pruned,
        on.nodes_pruned
    );
    assert!(
        auto.node_visits >= on.node_visits,
        "declined groups walk paper-exact"
    );
}

#[test]
fn full_standard_pipeline_stays_paper_exact_by_default() {
    let cfg = workload::WorkloadConfig {
        target_loc: 600,
        seed: 7,
        unit_loc: 300,
    };
    let (_, stats) = run_standard(&cfg, &CompilerOptions::fused());
    assert_eq!(stats.nodes_pruned, 0);
    assert!(stats.node_visits > 0);
}

// ---------------------------------------------------------------------------
// Saturated subtree sizes (regression).
//
// `Tree::subtree_size` counts *structural* occurrences and saturates at
// `Tree::SIZE_SATURATED` (the packed header's 24-bit size lane);
// pathological sharing (a node referenced three times per level) overflows
// the lane within ~20 allocations. Pruning prices a skipped subtree from
// that cached size, so skipping a saturated one would add a wrong count to
// `nodes_pruned` and silently break the documented
// `node_visits + nodes_pruned == unpruned node_visits` invariant. The walk
// must refuse to prune a saturated subtree — visit it, then prune its
// exactly-sized descendants.
// ---------------------------------------------------------------------------

/// A phase with empty masks: under pruning, *every* subtree is skippable.
struct NoopPhase;
impl miniphases::miniphase::PhaseInfo for NoopPhase {
    fn name(&self) -> &str {
        "noop"
    }
}
impl MiniPhase for NoopPhase {
    fn transforms(&self) -> miniphases::mini_ir::NodeKindSet {
        miniphases::mini_ir::NodeKindSet::EMPTY
    }
}

/// Structural node count as the walk would count it, computed exactly in
/// `u64` via pointer-memoized subtree sums (the tree is a DAG, so this is
/// O(distinct nodes) even though the structural count is astronomical).
fn structural_count(t: &miniphases::mini_ir::TreeRef) -> u64 {
    use std::collections::HashMap;
    fn go(
        t: &miniphases::mini_ir::TreeRef,
        memo: &mut HashMap<*const miniphases::mini_ir::Tree, u64>,
    ) -> u64 {
        let key = std::rc::Rc::as_ptr(t);
        if let Some(&n) = memo.get(&key) {
            return n;
        }
        let mut n = 1u64;
        let mut i = 0usize;
        while let Some(c) = t.child_at(i) {
            n += go(c, memo);
            i += 1;
        }
        memo.insert(key, n);
        n
    }
    go(t, &mut HashMap::new())
}

/// Builds `levels` of `Block { stats: [t, t], expr: t }` over one literal:
/// structural size 3ⁿ-ish from ~20 allocations, saturating the cached
/// summary at the root while keeping every child's size exact.
fn saturated_dag(ctx: &mut Ctx, levels: u32) -> miniphases::mini_ir::TreeRef {
    let mut t = ctx.lit_int(999);
    for _ in 0..levels {
        let a = t.clone();
        let b = t.clone();
        t = ctx.block(vec![a, b], t);
    }
    t
}

#[test]
fn saturated_subtree_size_is_never_pruned() {
    use miniphases::miniphase::executor::run_phase_on_unit_reference;
    use miniphases::miniphase::{run_phase_on_unit, FusionOptions};

    let mut ctx = Ctx::new();
    let root = saturated_dag(&mut ctx, 20);
    assert_eq!(
        root.subtree_size(),
        Tree::SIZE_SATURATED,
        "fixture must saturate the cached size"
    );
    let truth = structural_count(&root);
    assert!(
        truth > u64::from(Tree::SIZE_SATURATED),
        "true size exceeds the 24-bit header lane"
    );

    let opts = FusionOptions {
        subtree_pruning: SubtreePruning::On,
        ..FusionOptions::default()
    };
    let unit = CompilationUnit::new("sat", root.clone());

    // Iterative walk, reference executor, and the legacy eager path (no
    // copier reuse) must all account identically.
    let run = |ctx: &mut Ctx, reference: bool| -> ExecStats {
        let mut stats = ExecStats::default();
        let mut ph = NoopPhase;
        if reference {
            run_phase_on_unit_reference(&mut ph, &opts, ctx, &unit, &mut stats);
        } else {
            run_phase_on_unit(&mut ph, &opts, ctx, &unit, &mut stats);
        }
        stats
    };
    let iter = run(&mut ctx, false);
    let refr = run(&mut ctx, true);
    assert_eq!(iter, refr, "executors agree on saturated trees");
    assert_eq!(
        iter.node_visits + iter.nodes_pruned,
        truth,
        "the invariant holds exactly: visits {} + pruned {} == structural {}",
        iter.node_visits,
        iter.nodes_pruned,
        truth
    );
    assert!(
        iter.node_visits >= 1,
        "the saturated root is visited, not skipped"
    );

    let mut legacy_ctx = Ctx::new();
    legacy_ctx.options.copier_reuse = false;
    legacy_ctx.options.intern_literals = false;
    let legacy_root = legacy_ctx.import_tree(&root);
    let legacy_unit = CompilationUnit::new("sat", legacy_root);
    let mut stats = ExecStats::default();
    run_phase_on_unit(
        &mut NoopPhase,
        &opts,
        &mut legacy_ctx,
        &legacy_unit,
        &mut stats,
    );
    assert_eq!(
        stats.node_visits + stats.nodes_pruned,
        truth,
        "eager no-reuse walk prices saturated subtrees exactly"
    );
}
