//! Property-based tests over the core data structures and the end-to-end
//! pipeline: randomly generated expression programs must compile and run
//! identically in every pipeline mode, `NodeKindSet` must behave like a set,
//! and the copier's reuse optimization must preserve structure.

use miniphases::mini_driver::{compile_and_run, CompilerOptions};
use miniphases::mini_ir::{
    visit, Ctx, NodeKind, NodeKindSet, TreeKind, TreeRef, ALL_NODE_KINDS, NODE_KIND_COUNT,
};
use proptest::prelude::*;
use std::rc::Rc as Arc;

// ---------------- expression generator --------------------------------

/// A tiny expression AST rendered to MiniScala source, so shrinking works on
/// a structured value rather than on strings.
#[derive(Clone, Debug)]
enum E {
    Int(i64),
    Bool(bool),
    Str(u8),
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Cmp(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>),
    Match(Box<E>),
    Call(Box<E>),
    Concat(Box<E>),
}

impl E {
    /// The MiniScala type of the rendered expression.
    fn is_int(&self) -> bool {
        matches!(
            self,
            E::Int(_) | E::Add(..) | E::Mul(..) | E::If(..) | E::Match(_) | E::Call(_)
        )
    }

    fn render(&self) -> String {
        match self {
            E::Int(i) => format!("{i}"),
            E::Bool(b) => format!("{b}"),
            E::Str(n) => format!("\"s{n}\""),
            E::Add(a, b) => format!("({} + {})", int(a), int(b)),
            E::Mul(a, b) => format!("({} * {})", int(a), int(b)),
            E::Cmp(a, b) => format!("({} < {})", int(a), int(b)),
            E::If(c, a, b) => format!("(if ({}) {} else {})", cond(c), int(a), int(b)),
            E::Match(s) => format!(
                "({} match {{ case 0 => 100\n case n: Int if n < 0 => 0 - n\n case n: Int => n + 1\n case _ => 7 }})",
                int(s)
            ),
            E::Call(a) => format!("helper({})", int(a)),
            E::Concat(a) => format!("(\"v=\" + {})", a.render()),
        }
    }
}

fn int(e: &E) -> String {
    if e.is_int() {
        e.render()
    } else {
        format!("({}).length", E::Concat(Box::new(e.clone())).render())
    }
}

fn cond(e: &E) -> String {
    match e {
        E::Bool(_) | E::Cmp(..) => e.render(),
        other => format!("({} % 2 == 0)", int(other)),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(E::Int),
        any::<bool>().prop_map(E::Bool),
        (0u8..5).prop_map(E::Str),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Cmp(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| E::If(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| E::Match(Box::new(e))),
            inner.clone().prop_map(|e| E::Call(Box::new(e))),
            inner.prop_map(|e| E::Concat(Box::new(e))),
        ]
    })
}

fn program(e: &E) -> String {
    format!(
        "def helper(x: Int): Int = x % 97\ndef main(): Unit = println({})\n",
        e.render()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_agree_across_all_modes(e in arb_expr()) {
        let src = program(&e);
        let fused = compile_and_run(&src, &CompilerOptions::fused())
            .unwrap_or_else(|err| panic!("fused failed on:\n{src}\n{err}"));
        let mega = compile_and_run(&src, &CompilerOptions::mega())
            .unwrap_or_else(|err| panic!("mega failed on:\n{src}\n{err}"));
        let legacy = compile_and_run(&src, &CompilerOptions::legacy())
            .unwrap_or_else(|err| panic!("legacy failed on:\n{src}\n{err}"));
        prop_assert_eq!(&fused.1, &mega.1);
        prop_assert_eq!(&fused.1, &legacy.1);
    }

    #[test]
    fn random_programs_pass_the_tree_checker(e in arb_expr()) {
        let src = program(&e);
        let mut opts = CompilerOptions::fused();
        opts.check = true;
        let r = miniphases::mini_driver::compile(&src, &opts);
        prop_assert!(r.is_ok(), "checker rejected:\n{}\n{}", src, r.err().unwrap());
    }

    // ---------------- NodeKindSet set laws -----------------------------

    #[test]
    fn node_kind_set_behaves_like_a_set(bits_a in 0usize..NODE_KIND_COUNT, bits_b in 0usize..NODE_KIND_COUNT) {
        let a = ALL_NODE_KINDS[bits_a];
        let b = ALL_NODE_KINDS[bits_b];
        let s = NodeKindSet::of(a).with(b);
        prop_assert!(s.contains(a));
        prop_assert!(s.contains(b));
        prop_assert_eq!(s.len(), if a == b { 1 } else { 2 });
        // Union is idempotent and commutative.
        prop_assert_eq!(s.union(s), s);
        prop_assert_eq!(
            NodeKindSet::of(a).union(NodeKindSet::of(b)),
            NodeKindSet::of(b).union(NodeKindSet::of(a))
        );
        // Iteration yields exactly the members.
        let members: Vec<NodeKind> = s.iter().collect();
        prop_assert!(members.contains(&a) && members.contains(&b));
        prop_assert_eq!(members.len(), s.len());
    }

    // ---------------- copier reuse invariants ---------------------------

    #[test]
    fn identity_map_children_is_pointer_identical(n in 1usize..20) {
        let mut ctx = Ctx::new();
        let lits: Vec<TreeRef> = (0..n as i64).map(|i| ctx.lit_int(i)).collect();
        let u = ctx.lit_unit();
        let block = ctx.block(lits, u);
        let before = ctx.stats.nodes;
        let mapped = ctx.map_children(&block, &mut |_, c| Arc::clone(c));
        prop_assert!(Arc::ptr_eq(&mapped, &block));
        prop_assert_eq!(ctx.stats.nodes, before);
    }

    #[test]
    fn rebuilding_preserves_node_count_and_kinds(n in 1usize..20) {
        let mut ctx = Ctx::new();
        let lits: Vec<TreeRef> = (0..n as i64).map(|i| ctx.lit_int(i)).collect();
        let u = ctx.lit_unit();
        let block = ctx.block(lits, u);
        // Replace every literal with a different literal: same shape.
        let mapped = ctx.map_children(&block, &mut |ctx, c| {
            if let TreeKind::Literal { .. } = c.kind() {
                ctx.lit_int(999)
            } else {
                Arc::clone(c)
            }
        });
        prop_assert!(!Arc::ptr_eq(&mapped, &block));
        prop_assert_eq!(visit::count_nodes(&mapped), visit::count_nodes(&block));
        let kinds = |t: &TreeRef| {
            let mut v = Vec::new();
            visit::for_each_subtree(t, &mut |s| v.push(s.node_kind()));
            v
        };
        prop_assert_eq!(kinds(&mapped), kinds(&block));
    }
}
