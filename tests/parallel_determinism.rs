//! Property tests pinning unit-level parallel compilation to the sequential
//! pipeline: over generated MiniScala workloads, `jobs ∈ {2,4,8}` must
//! produce **byte-identical** printed trees, **identical** merged
//! `ExecStats` (including `nodes_pruned`) and — with the dynamic checker on
//! — **identical** checker findings (content *and* order) to `jobs = 1`,
//! across the fused/mega/legacy modes and the subtree-pruning ablation.
//! This is the headline guarantee of the parallel executor: scheduling is
//! allowed to change wall clock and allocation counts, never output,
//! executor accounting, or diagnostics. The checker ablation is what makes
//! `jobs` honest in verified production runs — `check = true` no longer
//! silently downgrades to sequential execution.

use miniphases::mini_driver::{standard_plan, CompilerOptions};
use miniphases::mini_ir::{printer, Ctx, NodeKindSet, TreeKind, TreeRef};
use miniphases::miniphase::{
    run_units_parallel, run_units_parallel_controlled, CompilationUnit, ExecStats, FaultKind,
    FaultPlan, MiniPhase, NoInstrumentation, ParallelTuning, PhaseInfo, Pipeline, RunControls,
    SubtreePruning,
};
use miniphases::{mini_front, mini_phases, workload};
use proptest::prelude::*;
use std::sync::Arc;

/// Runs the standard pipeline over a generated corpus on `jobs` workers and
/// renders every output tree to text plus every checker finding to its
/// display form. `jobs = 1` is the sequential `Pipeline::run_units` path,
/// byte for byte.
fn run_pipeline(
    cfg: &workload::WorkloadConfig,
    opts: &CompilerOptions,
    jobs: usize,
    check: bool,
) -> (Vec<String>, ExecStats, Vec<String>) {
    let w = workload::generate(cfg);
    let mut ctx = Ctx::new();
    opts.configure_ctx(&mut ctx);
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    assert!(!ctx.has_errors(), "corpus type-checks");
    let plan = standard_plan(opts).expect("plan").1;
    let (out, stats, failures) = if jobs > 1 {
        let run = run_units_parallel(
            &mut ctx,
            &mini_phases::standard_pipeline,
            &plan,
            opts.fusion,
            units,
            jobs,
            check,
            &NoInstrumentation,
        );
        (run.units, run.stats, run.failures)
    } else {
        let mut pipe = Pipeline::new(mini_phases::standard_pipeline(), &plan, opts.fusion);
        pipe.check = check;
        let out = pipe.run_units(&mut ctx, units);
        let failures = std::mem::take(&mut pipe.failures);
        (out, pipe.stats, failures)
    };
    let printed = out
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &ctx.symbols)
            )
        })
        .collect();
    let failures = failures.iter().map(|f| f.to_string()).collect();
    (printed, stats, failures)
}

fn opts_for(mode: u8, prune: u8) -> CompilerOptions {
    let mut opts = match mode % 3 {
        0 => CompilerOptions::fused(),
        1 => CompilerOptions::mega(),
        _ => CompilerOptions::legacy(),
    };
    opts.fusion.subtree_pruning = match prune % 3 {
        0 => SubtreePruning::Off,
        1 => SubtreePruning::On,
        _ => SubtreePruning::Auto,
    };
    opts
}

fn assert_equivalent(
    label: &str,
    seq: &(Vec<String>, ExecStats, Vec<String>),
    par: &(Vec<String>, ExecStats, Vec<String>),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &seq.1,
        &par.1,
        "merged ExecStats diverged ({}): {:?} vs {:?}",
        label,
        seq.1,
        par.1
    );
    prop_assert_eq!(seq.0.len(), par.0.len());
    for (a, b) in seq.0.iter().zip(par.0.iter()) {
        prop_assert!(
            a == b,
            "printed trees diverged ({}):\n--- sequential\n{}\n--- parallel\n{}",
            label,
            a,
            b
        );
    }
    prop_assert_eq!(&seq.2, &par.2, "checker findings diverged ({})", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_jobs_match_sequential(
        seed in 0u64..10_000,
        loc in 300usize..1_000,
        mode in 0u8..3,
        prune in 0u8..3,
    ) {
        // Small units force a multi-unit corpus, so chunking really splits.
        let cfg = workload::WorkloadConfig { target_loc: loc, seed, unit_loc: 150 };
        let opts = opts_for(mode, prune);
        let seq = run_pipeline(&cfg, &opts, 1, false);
        for jobs in [2usize, 4, 8] {
            let par = run_pipeline(&cfg, &opts, jobs, false);
            assert_equivalent(&format!("mode {mode}, prune {prune}, jobs {jobs}"), &seq, &par)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checker-on ablation: `jobs ∈ {2,4,8}` with `check = true` replay
    /// the dynamic tree checker per worker chunk and must produce the same
    /// printed trees, the same merged `ExecStats` (the checker observes
    /// without perturbing the accounting) and the same finding list —
    /// content *and* order — as the sequential checked run.
    #[test]
    fn checker_determinism_across_jobs(
        seed in 0u64..10_000,
        loc in 300usize..800,
        mode in 0u8..3,
    ) {
        let cfg = workload::WorkloadConfig { target_loc: loc, seed, unit_loc: 150 };
        let opts = opts_for(mode, 0);
        let unchecked = run_pipeline(&cfg, &opts, 1, false);
        let seq = run_pipeline(&cfg, &opts, 1, true);
        prop_assert_eq!(
            &unchecked.1,
            &seq.1,
            "enabling the checker must not change ExecStats"
        );
        for jobs in [2usize, 4, 8] {
            let par = run_pipeline(&cfg, &opts, jobs, true);
            assert_equivalent(&format!("check on, mode {mode}, jobs {jobs}"), &seq, &par)?;
        }
    }
}

/// A phase whose postcondition rejects string literals containing a marker
/// — used to seed deterministic checker violations in chosen units without
/// perturbing the trees.
struct NoPoison;
impl PhaseInfo for NoPoison {
    fn name(&self) -> &str {
        "noPoison"
    }
}
impl MiniPhase for NoPoison {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if let TreeKind::Literal { value } = t.kind() {
            if value.as_str().is_some_and(|s| s.contains("POISON")) {
                return Err("poison literal survived".into());
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Corpora seeded with postcondition violations: whichever worker
    /// thread trips first on the wall clock, the merged failure list — and
    /// in particular its *first* entry, the first failing unit in unit
    /// order — must be byte-identical to the sequential checked run.
    #[test]
    fn checker_seeded_violation_first_failure_matches_sequential(
        n_units in 4usize..12,
        bad_mask in 1u32..255,
    ) {
        let mk = || -> Vec<Box<dyn MiniPhase>> {
            let mut ps = mini_phases::standard_pipeline();
            ps.push(Box::new(NoPoison));
            ps
        };
        // Guarantee at least one unit in range carries a violation (a drawn
        // mask whose set bits all land past `n_units` would seed nothing).
        let bad_mask = if (0..n_units).any(|u| bad_mask & (1 << (u % 8)) != 0) {
            bad_mask
        } else {
            bad_mask | 1
        };
        let run = |jobs: usize| -> (Vec<String>, Vec<String>) {
            let mut ctx = Ctx::new();
            let units: Vec<CompilationUnit> = (0..n_units)
                .map(|u| {
                    let poisoned = bad_mask & (1 << (u % 8)) != 0;
                    let text = if poisoned {
                        format!("POISON-{u}")
                    } else {
                        format!("clean-{u}")
                    };
                    let src = format!("def f{u}(): Unit = println(\"{text}\")\n");
                    let t = mini_front::compile_source(&mut ctx, &format!("u{u}.ms"), &src)
                        .expect("unit parses");
                    CompilationUnit::new(t.name, t.tree)
                })
                .collect();
            assert!(!ctx.has_errors(), "seeded corpus type-checks");
            let ps = mk();
            let plan = miniphases::miniphase::build_plan(
                &ps,
                &miniphases::miniphase::PlanOptions::default(),
            )
            .expect("plan");
            let run = run_units_parallel(
                &mut ctx,
                &mk,
                &plan,
                Default::default(),
                units,
                jobs,
                true,
                &NoInstrumentation,
            );
            let printed = run
                .units
                .iter()
                .map(|u| printer::print_tree(&u.tree, &ctx.symbols))
                .collect();
            let failures = run.failures.iter().map(|f| f.to_string()).collect();
            (printed, failures)
        };
        let (seq_trees, seq_failures) = run(1);
        prop_assert!(!seq_failures.is_empty(), "seeded violations are found");
        // The first finding names the first poisoned unit in unit order.
        let first_bad = (0..n_units)
            .find(|u| bad_mask & (1 << (u % 8)) != 0)
            .expect("mask is non-zero");
        prop_assert!(
            seq_failures[0].contains(&format!("u{first_bad}.ms")),
            "first failure `{}` should name u{first_bad}.ms",
            seq_failures[0]
        );
        for jobs in [2usize, 4, 8] {
            let (par_trees, par_failures) = run(jobs);
            prop_assert_eq!(&seq_trees, &par_trees, "trees diverged at jobs={}", jobs);
            prop_assert_eq!(
                &seq_failures,
                &par_failures,
                "failure lists diverged at jobs={}",
                jobs
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Robustness satellite: a seeded-violation corpus where one *clean*
    /// unit's chunk additionally panics (one-shot injected fault, caught at
    /// the isolation fence). The surviving chunks must still re-sequence
    /// deterministically: the merged failure list — including its first
    /// entry, the first violating unit in unit order — is byte-identical to
    /// the sequential checked run, the caught fault is attributed to the
    /// panicked unit, and only that unit drops out of the output.
    #[test]
    fn checker_violations_survive_a_sibling_chunk_panic(
        n_units in 4usize..10,
        bad_mask in 1u32..255,
        jobs_pick in 0u8..3,
    ) {
        // Unit 0 always carries a violation; unit 1 is always clean and is
        // the one whose chunk panics.
        let bad_mask = (bad_mask | 1) & !2;
        let panicked = 1usize;
        let jobs = [2usize, 4, 8][jobs_pick as usize % 3];
        let mk = || -> Vec<Box<dyn MiniPhase>> {
            let mut ps = mini_phases::standard_pipeline();
            ps.push(Box::new(NoPoison));
            ps
        };
        let run = |jobs: usize, fault: Option<Arc<FaultPlan>>| {
            let mut ctx = Ctx::new();
            let units: Vec<CompilationUnit> = (0..n_units)
                .map(|u| {
                    let poisoned = bad_mask & (1 << (u % 8)) != 0;
                    let text = if poisoned {
                        format!("POISON-{u}")
                    } else {
                        format!("clean-{u}")
                    };
                    let src = format!("def f{u}(): Unit = println(\"{text}\")\n");
                    let t = mini_front::compile_source(&mut ctx, &format!("u{u}.ms"), &src)
                        .expect("unit parses");
                    CompilationUnit::new(t.name, t.tree)
                })
                .collect();
            assert!(!ctx.has_errors(), "seeded corpus type-checks");
            let ps = mk();
            let plan = miniphases::miniphase::build_plan(
                &ps,
                &miniphases::miniphase::PlanOptions::default(),
            )
            .expect("plan");
            // One chunk per unit, so the panic takes down exactly one unit.
            let tuning = ParallelTuning {
                chunks_per_worker: 64,
                ..ParallelTuning::default()
            };
            let controls = RunControls {
                faults: fault,
                ..RunControls::default()
            };
            run_units_parallel_controlled(
                &mut ctx,
                &mk,
                &plan,
                Default::default(),
                units,
                jobs,
                true,
                &NoInstrumentation,
                tuning,
                &controls,
            )
        };

        let seq = run(1, None);
        prop_assert!(seq.faults.is_empty());
        let seq_failures: Vec<String> = seq.failures.iter().map(|f| f.to_string()).collect();
        prop_assert!(
            seq_failures[0].contains("u0.ms"),
            "first failure `{}` should name u0.ms",
            seq_failures[0]
        );

        let plan = Arc::new(
            FaultPlan::new(0xfa17).with_fault(FaultKind::PanicOnUnit { unit: panicked }, 1),
        );
        let par = run(jobs, Some(plan));

        // The fault is caught, structured and unit-attributed.
        prop_assert_eq!(par.faults.len(), 1, "exactly one chunk fence trips");
        prop_assert_eq!(par.faults[0].unit.as_deref(), Some("u1.ms"));
        // Only the panicked unit drops out; siblings re-sequence in order.
        prop_assert_eq!(par.units.len(), n_units - 1);
        prop_assert!(par.units.iter().all(|u| u.name != "u1.ms"));
        // The failure list — unit 1 is clean, so it contributed none — is
        // byte-identical to the sequential run, first entry included.
        let par_failures: Vec<String> = par.failures.iter().map(|f| f.to_string()).collect();
        prop_assert_eq!(&seq_failures, &par_failures, "failure lists diverged at jobs={}", jobs);
    }
}

/// Many-units smoke on the dotty-like 12 kLOC slice (the benchmark corpus):
/// ~30 units, every mode's headline configuration, `jobs = 4` vs
/// sequential — with the dynamic checker on, since checked runs now keep
/// their parallelism.
#[test]
fn twelve_kloc_corpus_smoke() {
    let cfg = workload::WorkloadConfig {
        target_loc: 12_000,
        seed: 0xd077,
        unit_loc: 400,
    };
    let opts = CompilerOptions::fused();
    let seq = run_pipeline(&cfg, &opts, 1, true);
    let par = run_pipeline(&cfg, &opts, 4, true);
    assert_eq!(seq.1, par.1, "merged ExecStats diverged on the 12k corpus");
    assert_eq!(seq.0, par.0, "printed trees diverged on the 12k corpus");
    assert_eq!(seq.2, par.2, "checker findings diverged on the 12k corpus");
    assert!(seq.2.is_empty(), "the benchmark corpus is checker-clean");
}
