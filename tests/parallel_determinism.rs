//! Property tests pinning unit-level parallel compilation to the sequential
//! pipeline: over generated MiniScala workloads, `jobs ∈ {2,4,8}` must
//! produce **byte-identical** printed trees and **identical** merged
//! `ExecStats` (including `nodes_pruned`) to `jobs = 1`, across the
//! fused/mega/legacy modes and the subtree-pruning ablation. This is the
//! headline guarantee of the parallel executor: scheduling is allowed to
//! change wall clock and allocation counts, never output or executor
//! accounting.

use miniphases::mini_driver::{standard_plan, CompilerOptions};
use miniphases::mini_ir::{printer, Ctx};
use miniphases::miniphase::{
    run_units_parallel, CompilationUnit, ExecStats, NoInstrumentation, Pipeline,
};
use miniphases::{mini_front, mini_phases, workload};
use proptest::prelude::*;

/// Runs the standard pipeline over a generated corpus on `jobs` workers and
/// renders every output tree to text. `jobs = 1` is the sequential
/// `Pipeline::run_units` path, byte for byte.
fn run_pipeline(
    cfg: &workload::WorkloadConfig,
    opts: &CompilerOptions,
    jobs: usize,
) -> (Vec<String>, ExecStats) {
    let w = workload::generate(cfg);
    let mut ctx = Ctx::new();
    opts.configure_ctx(&mut ctx);
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    assert!(!ctx.has_errors(), "corpus type-checks");
    let plan = standard_plan(opts).expect("plan").1;
    let (out, stats) = if jobs > 1 {
        let run = run_units_parallel(
            &mut ctx,
            &mini_phases::standard_pipeline,
            &plan,
            opts.fusion,
            units,
            jobs,
            &NoInstrumentation,
        );
        (run.units, run.stats)
    } else {
        let mut pipe = Pipeline::new(mini_phases::standard_pipeline(), &plan, opts.fusion);
        let out = pipe.run_units(&mut ctx, units);
        (out, pipe.stats)
    };
    let printed = out
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                printer::print_tree(&u.tree, &ctx.symbols)
            )
        })
        .collect();
    (printed, stats)
}

fn opts_for(mode: u8, prune: bool) -> CompilerOptions {
    let mut opts = match mode % 3 {
        0 => CompilerOptions::fused(),
        1 => CompilerOptions::mega(),
        _ => CompilerOptions::legacy(),
    };
    opts.fusion.subtree_pruning = prune;
    opts
}

fn assert_equivalent(
    label: &str,
    seq: &(Vec<String>, ExecStats),
    par: &(Vec<String>, ExecStats),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &seq.1,
        &par.1,
        "merged ExecStats diverged ({}): {:?} vs {:?}",
        label,
        seq.1,
        par.1
    );
    prop_assert_eq!(seq.0.len(), par.0.len());
    for (a, b) in seq.0.iter().zip(par.0.iter()) {
        prop_assert!(
            a == b,
            "printed trees diverged ({}):\n--- sequential\n{}\n--- parallel\n{}",
            label,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_jobs_match_sequential(
        seed in 0u64..10_000,
        loc in 300usize..1_000,
        mode in 0u8..3,
        prune in 0u8..2,
    ) {
        let prune = prune == 1;
        // Small units force a multi-unit corpus, so chunking really splits.
        let cfg = workload::WorkloadConfig { target_loc: loc, seed, unit_loc: 150 };
        let opts = opts_for(mode, prune);
        let seq = run_pipeline(&cfg, &opts, 1);
        for jobs in [2usize, 4, 8] {
            let par = run_pipeline(&cfg, &opts, jobs);
            assert_equivalent(&format!("mode {mode}, prune {prune}, jobs {jobs}"), &seq, &par)?;
        }
    }
}

/// Many-units smoke on the dotty-like 12 kLOC slice (the benchmark corpus):
/// ~30 units, every mode's headline configuration, `jobs = 4` vs
/// sequential.
#[test]
fn twelve_kloc_corpus_smoke() {
    let cfg = workload::WorkloadConfig {
        target_loc: 12_000,
        seed: 0xd077,
        unit_loc: 400,
    };
    let opts = CompilerOptions::fused();
    let seq = run_pipeline(&cfg, &opts, 1);
    let par = run_pipeline(&cfg, &opts, 4);
    assert_eq!(seq.1, par.1, "merged ExecStats diverged on the 12k corpus");
    assert_eq!(seq.0, par.0, "printed trees diverged on the 12k corpus");
}
