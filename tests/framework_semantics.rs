//! Integration tests of the Miniphase framework's documented semantics,
//! exercised through the facade crate: the "seeing the future" property
//! (§4, Figs 2–3), prepare/finish balance across fused kind changes, phase
//! ordering validation, and Mega/Mini result agreement at the tree level.

use miniphases::mini_ir::{visit, Ctx, NodeKind, NodeKindSet, TreeKind, TreeRef, Type};
use miniphases::miniphase::{
    build_plan, CompilationUnit, FusionOptions, MiniPhase, PhaseInfo, Pipeline, PlanOptions,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps int literals into `Typed` nodes.
struct Wrapper;
impl PhaseInfo for Wrapper {
    fn name(&self) -> &str {
        "wrapper"
    }
}
impl MiniPhase for Wrapper {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Literal)
    }
    fn transform_literal(&mut self, ctx: &mut Ctx, t: &TreeRef) -> TreeRef {
        ctx.mk(
            TreeKind::Typed {
                expr: t.clone(),
                tpe: Type::Int,
            },
            Type::Int,
            t.span(),
        )
    }
}

/// Counts how many of the blocks it visits have `Typed` children — if fused
/// *after* Wrapper, it must see the future: children already wrapped.
struct FutureObserver {
    typed_children_seen: Arc<AtomicU64>,
}
impl PhaseInfo for FutureObserver {
    fn name(&self) -> &str {
        "futureObserver"
    }
}
impl MiniPhase for FutureObserver {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Block)
    }
    fn transform_block(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> TreeRef {
        let mut n = 0;
        t.for_each_child(&mut |c| {
            if c.node_kind() == NodeKind::Typed {
                n += 1;
            }
        });
        self.typed_children_seen.fetch_add(n, Ordering::Relaxed);
        t.clone()
    }
}

fn int_block(ctx: &mut Ctx, n: usize) -> TreeRef {
    let lits: Vec<TreeRef> = (0..n as i64).map(|i| ctx.lit_int(i)).collect();
    let last = ctx.lit_unit();
    ctx.block(lits, last)
}

#[test]
fn phases_see_the_future_of_their_children() {
    // FutureObserver comes BEFORE Wrapper in pipeline order, yet when fused,
    // it observes blocks whose literal children were already wrapped by
    // Wrapper — the surprising property the paper documents (§4): "the
    // children of t have been transformed by all Miniphases that have been
    // fused with m, including ones that come both before and after m".
    let seen = Arc::new(AtomicU64::new(0));
    let phases: Vec<Box<dyn MiniPhase>> = vec![
        Box::new(FutureObserver {
            typed_children_seen: Arc::clone(&seen),
        }),
        Box::new(Wrapper),
    ];
    let plan = build_plan(&phases, &PlanOptions::default()).unwrap();
    assert_eq!(plan.group_count(), 1);
    let mut ctx = Ctx::new();
    let tree = int_block(&mut ctx, 10);
    let mut pipe = Pipeline::new(phases, &plan, FusionOptions::default());
    pipe.run_units(&mut ctx, vec![CompilationUnit::new("u", tree)]);
    assert_eq!(
        seen.load(Ordering::Relaxed),
        11, // ten int literals plus the block's unit result
        "the earlier phase saw children already transformed by the later one"
    );
}

#[test]
fn unfused_phases_do_not_see_the_future() {
    let seen = Arc::new(AtomicU64::new(0));
    let phases: Vec<Box<dyn MiniPhase>> = vec![
        Box::new(FutureObserver {
            typed_children_seen: Arc::clone(&seen),
        }),
        Box::new(Wrapper),
    ];
    let plan = build_plan(
        &phases,
        &PlanOptions {
            fuse: false,
            ..PlanOptions::default()
        },
    )
    .unwrap();
    let mut ctx = Ctx::new();
    let tree = int_block(&mut ctx, 10);
    let mut pipe = Pipeline::new(phases, &plan, FusionOptions::default());
    pipe.run_units(&mut ctx, vec![CompilationUnit::new("u", tree)]);
    assert_eq!(
        seen.load(Ordering::Relaxed),
        0,
        "in Megaphase mode the earlier phase runs on untouched trees"
    );
}

/// A prepare-using phase that verifies its own push/pop balance even when
/// another fused phase changes node kinds under it.
struct DepthAuditor {
    depth: i64,
    max_seen: Arc<AtomicU64>,
}
impl PhaseInfo for DepthAuditor {
    fn name(&self) -> &str {
        "depthAuditor"
    }
}
impl MiniPhase for DepthAuditor {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Block).with(NodeKind::Literal)
    }
    fn prepare_block(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.depth += 1;
        self.max_seen
            .fetch_max(self.depth as u64, Ordering::Relaxed);
        true
    }
    fn prepare_literal(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.depth += 1;
        self.max_seen
            .fetch_max(self.depth as u64, Ordering::Relaxed);
        true
    }
    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.depth -= 1;
        assert!(self.depth >= 0, "prepare/finish imbalance");
    }
}

#[test]
fn prepare_finish_stays_balanced_across_kind_changes() {
    let max = Arc::new(AtomicU64::new(0));
    let phases: Vec<Box<dyn MiniPhase>> = vec![
        Box::new(DepthAuditor {
            depth: 0,
            max_seen: Arc::clone(&max),
        }),
        // Wrapper changes Literal -> Typed *after* the auditor prepared on
        // the literal; finish_prepared must still fire exactly once.
        Box::new(Wrapper),
    ];
    let plan = build_plan(&phases, &PlanOptions::default()).unwrap();
    let mut ctx = Ctx::new();
    let inner = int_block(&mut ctx, 4);
    let u = ctx.lit_unit();
    let tree = ctx.block(vec![inner], u);
    let mut pipe = Pipeline::new(phases, &plan, FusionOptions::default());
    pipe.run_units(&mut ctx, vec![CompilationUnit::new("u", tree)]);
    assert!(max.load(Ordering::Relaxed) >= 2, "nesting was observed");
}

#[test]
fn run_always_prepare_mode_agrees_with_per_kind() {
    for prepare_always in [false, true] {
        let max = Arc::new(AtomicU64::new(0));
        let phases: Vec<Box<dyn MiniPhase>> = vec![Box::new(DepthAuditor {
            depth: 0,
            max_seen: Arc::clone(&max),
        })];
        let plan = build_plan(&phases, &PlanOptions::default()).unwrap();
        let mut ctx = Ctx::new();
        let tree = int_block(&mut ctx, 3);
        let mut pipe = Pipeline::new(
            phases,
            &plan,
            FusionOptions {
                prepare_always,
                ..FusionOptions::default()
            },
        );
        pipe.run_units(&mut ctx, vec![CompilationUnit::new("u", tree)]);
        assert_eq!(max.load(Ordering::Relaxed), 2);
    }
}

#[test]
fn full_pipeline_trees_agree_between_modes() {
    // Beyond runtime-output agreement (tested in mini-driver), the lowered
    // trees themselves must be structurally identical between Mini and Mega.
    let src = r#"
trait T { val x: Int = 5 }
class C extends T {
  def f(v: Any): Int = v match {
    case n: Int => n + x
    case _ => x
  }
}
def main(): Unit = println(new C().f(37))
"#;
    let shape = |opts: &miniphases::mini_driver::CompilerOptions| -> Vec<String> {
        let c = miniphases::mini_driver::compile(src, opts).expect("compiles");
        let mut kinds = Vec::new();
        visit::for_each_subtree(&c.units[0].tree, &mut |t| {
            kinds.push(format!("{:?}", t.node_kind()));
        });
        kinds
    };
    let fused = shape(&miniphases::mini_driver::CompilerOptions::fused());
    let mega = shape(&miniphases::mini_driver::CompilerOptions::mega());
    assert_eq!(fused, mega, "lowered tree shapes diverge between modes");
}

#[test]
fn plan_rejects_cyclic_style_orderings() {
    struct P(&'static str, Vec<&'static str>);
    impl PhaseInfo for P {
        fn name(&self) -> &str {
            self.0
        }
    }
    impl MiniPhase for P {
        fn transforms(&self) -> NodeKindSet {
            NodeKindSet::EMPTY
        }
        fn runs_after(&self) -> Vec<&'static str> {
            self.1.clone()
        }
    }
    let phases: Vec<Box<dyn MiniPhase>> =
        vec![Box::new(P("a", vec!["b"])), Box::new(P("b", vec![]))];
    let err = build_plan(&phases, &PlanOptions::default()).unwrap_err();
    assert!(err.to_string().contains("must run after"));
}
