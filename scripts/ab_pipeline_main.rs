use std::time::{Duration, Instant};

fn run_new(w: &workload::Workload, mode: &str) -> Duration {
    let opts = match mode {
        "fused" => mini_driver::CompilerOptions::fused(),
        "mega" => mini_driver::CompilerOptions::mega(),
        _ => mini_driver::CompilerOptions::legacy(),
    };
    let mut ctx = mini_ir::Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
        units.push(miniphase::CompilationUnit::new(t.name, t.tree));
    }
    let start = Instant::now();
    opts.configure_ctx(&mut ctx);
    let (phases, plan) = mini_driver::standard_plan(&opts).expect("plan");
    let mut pipe = miniphase::Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units(&mut ctx, units);
    std::hint::black_box(&out);
    drop(out);
    drop(pipe);
    drop(ctx);
    start.elapsed()
}

fn run_old(w: &workload::Workload, mode: &str) -> Duration {
    let opts = match mode {
        "fused" => driver_old::CompilerOptions::fused(),
        "mega" => driver_old::CompilerOptions::mega(),
        _ => driver_old::CompilerOptions::legacy(),
    };
    let mut ctx = ir_old::Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = front_old::compile_source(&mut ctx, n, s).expect("parses");
        units.push(phase_old::CompilationUnit::new(t.name, t.tree));
    }
    let start = Instant::now();
    if opts.mode == driver_old::Mode::Legacy {
        ctx.options.copier_reuse = false;
    }
    let (phases, plan) = driver_old::standard_plan(&opts).expect("plan");
    let mut pipe = phase_old::Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units(&mut ctx, units);
    std::hint::black_box(&out);
    drop(out);
    drop(pipe);
    drop(ctx);
    start.elapsed()
}

fn main() {
    let loc: usize = std::env::var("CORPUS_LOC").ok().and_then(|v| v.parse().ok()).unwrap_or(12_000);
    let reps: usize = std::env::var("REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let w = workload::generate(&workload::WorkloadConfig { target_loc: loc, seed: 0xd077, unit_loc: 400 });
    let mut ratios: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    let mut mins: std::collections::BTreeMap<String, Duration> = Default::default();
    for rep in 0..reps {
        for mode in ["fused", "mega", "legacy"] {
            if let Ok(f) = std::env::var("MODES") { if !f.contains(mode) { continue; } }
            // alternate order each rep to cancel ordering bias
            let (a, b) = if rep % 2 == 0 { ("old", "new") } else { ("new", "old") };
            let mut t = std::collections::HashMap::new();
            for stack in [a, b] {
                let el = if stack == "old" { run_old(&w, mode) } else { run_new(&w, mode) };
                t.insert(stack, el);
                let e = mins.entry(format!("{mode}-{stack}")).or_insert(el);
                if el < *e { *e = el; }
            }
            ratios.entry(mode.to_string()).or_default()
                .push(t["new"].as_secs_f64() / t["old"].as_secs_f64());
        }
    }
    for (m, rs) in &mut ratios {
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = rs[rs.len() / 2];
        let o = mins[&format!("{m}-old")].as_secs_f64();
        let n = mins[&format!("{m}-new")].as_secs_f64();
        println!("{m:7}: min old {:>7.1}ms  min new {:>7.1}ms  min-ratio {:+.1}%  median paired ratio {:+.1}%",
            o * 1e3, n * 1e3, (n / o - 1.0) * 100.0, (med - 1.0) * 100.0);
    }
}
