#!/usr/bin/env bash
# Paired in-process A/B of the tree-transformation pipeline: the current
# working tree ("new") against the pre-overhaul bootstrap commit ("old").
#
# Cross-process benchmark runs on shared hosts drift by double-digit
# percentages, so this harness links BOTH stacks into ONE binary (the old
# crates are vendored under renamed packages) and alternates paired
# repetitions, reporting per-mode minima and the median of per-repetition
# paired ratios. This is the measurement behind BENCH_pipeline.json.
#
# Usage: scripts/ab_pipeline.sh [REPS] [CORPUS_LOC]
#   MODES=fused,mega scripts/ab_pipeline.sh 30    # skip legacy for speed
set -euo pipefail

REPS="${1:-16}"
LOC="${2:-12000}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d /tmp/miniphases-ab.XXXXXX)"
trap 'git -C "$REPO" worktree remove --force "$WORK/pre" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# The pre-overhaul baseline is the workspace-bootstrap commit: seed
# sources plus manifests, before the traversal overhaul.
PRE="$(git -C "$REPO" rev-list HEAD --grep='Bootstrap cargo workspace' | tail -1)"
if [ -z "$PRE" ]; then
    echo "error: could not find the 'Bootstrap cargo workspace' commit" >&2
    exit 1
fi
echo "old = $PRE (workspace bootstrap)"
echo "new = working tree at $REPO"

git -C "$REPO" worktree add --detach "$WORK/pre" "$PRE" >/dev/null

# Vendor the old crates under renamed packages so both stacks can link
# into one binary. Internal deps are renamed back via cargo's
# `package = ...` dependency renaming, so the old sources compile as-is.
OLD="$WORK/oldstack"
mkdir -p "$OLD"
for c in ir core front phases backend driver; do
    cp -r "$WORK/pre/crates/$c" "$OLD/$c"
    rm -rf "$OLD/$c/tests"
done

old_dep() { echo "$1 = { package = \"$2_old\", path = \"../$3\" }"; }
cat > "$OLD/ir/Cargo.toml" <<EOF
[package]
name = "mini_ir_old"
version = "0.1.0"
edition = "2021"
EOF
cat > "$OLD/core/Cargo.toml" <<EOF
[package]
name = "miniphase_old"
version = "0.1.0"
edition = "2021"

[dependencies]
$(old_dep mini_ir mini_ir ir)
EOF
cat > "$OLD/front/Cargo.toml" <<EOF
[package]
name = "mini_front_old"
version = "0.1.0"
edition = "2021"

[dependencies]
$(old_dep mini_ir mini_ir ir)
EOF
cat > "$OLD/phases/Cargo.toml" <<EOF
[package]
name = "mini_phases_old"
version = "0.1.0"
edition = "2021"

[dependencies]
$(old_dep mini_ir mini_ir ir)
$(old_dep miniphase miniphase core)
EOF
cat > "$OLD/backend/Cargo.toml" <<EOF
[package]
name = "mini_backend_old"
version = "0.1.0"
edition = "2021"

[dependencies]
$(old_dep mini_ir mini_ir ir)
EOF
cat > "$OLD/driver/Cargo.toml" <<EOF
[package]
name = "mini_driver_old"
version = "0.1.0"
edition = "2021"

[dependencies]
$(old_dep mini_ir mini_ir ir)
$(old_dep miniphase miniphase core)
$(old_dep mini_front mini_front front)
$(old_dep mini_phases mini_phases phases)
$(old_dep mini_backend mini_backend backend)
cache_sim = { path = "$REPO/crates/cachesim" }
gc_sim = { path = "$REPO/crates/gcsim" }
EOF

# The combined harness binary.
mkdir -p "$WORK/ab/src"
cp "$REPO/scripts/ab_pipeline_main.rs" "$WORK/ab/src/main.rs"
cat > "$WORK/ab/Cargo.toml" <<EOF
[workspace]

[package]
name = "ab"
version = "0.1.0"
edition = "2021"

[dependencies]
mini_ir = { path = "$REPO/crates/ir" }
miniphase = { path = "$REPO/crates/core" }
mini_front = { path = "$REPO/crates/front" }
mini_driver = { path = "$REPO/crates/driver" }
workload = { path = "$REPO/crates/workload" }
ir_old = { package = "mini_ir_old", path = "$OLD/ir" }
phase_old = { package = "miniphase_old", path = "$OLD/core" }
front_old = { package = "mini_front_old", path = "$OLD/front" }
driver_old = { package = "mini_driver_old", path = "$OLD/driver" }

[profile.release]
debug = true
EOF

cargo build --release --manifest-path "$WORK/ab/Cargo.toml"
REPS="$REPS" CORPUS_LOC="$LOC" "$WORK/ab/target/release/ab"
