//! `CapturedVars` and `NonLocalReturns`.
//!
//! `CapturedVars` heap-boxes mutable locals captured by nested functions,
//! rewriting definitions to cell allocations and uses to `cell.elem`
//! accesses. `NonLocalReturns` turns `return`s that cross a function
//! boundary into a thrown control token caught by the target method.

use mini_ir::{
    std_names, Ctx, Flags, Name, NodeKind, NodeKindSet, SymKind, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};
use std::collections::{HashMap, HashSet};

/// Creates (once) a synthetic top-level class with the given field names and
/// types, returning `(class, fields)`. Used for the `Ref` cell and the
/// non-local-return token; the class has no constructor symbol, so the
/// backend zero-initializes its fields and treats `<init>` as a no-op.
fn make_runtime_class(
    ctx: &mut Ctx,
    name: &str,
    fields: &[(&str, Type)],
) -> (SymbolId, Vec<SymbolId>, TreeRef) {
    let pkg = ctx.symbols.builtins().root_pkg;
    let cls = ctx.symbols.new_class(
        pkg,
        Name::intern(name),
        Flags::SYNTHETIC,
        vec![Type::AnyRef],
        vec![],
    );
    let mut field_syms = Vec::new();
    let mut body = Vec::new();
    for (fname, ftpe) in fields {
        let f = ctx.symbols.new_term(
            cls,
            Name::intern(fname),
            Flags::MUTABLE | Flags::SYNTHETIC,
            ftpe.clone(),
        );
        let e = ctx.empty();
        body.push(ctx.val_def(f, e));
        field_syms.push(f);
    }
    let tree = ctx.mk(
        TreeKind::ClassDef {
            sym: cls,
            body: body.into(),
        },
        Type::Unit,
        mini_ir::Span::SYNTHETIC,
    );
    (cls, field_syms, tree)
}

/// Allocates `new cls` without a constructor symbol (fields start out null).
fn raw_new(ctx: &mut Ctx, cls: SymbolId) -> TreeRef {
    let t = ctx.symbols.class_type(cls);
    let new_node = ctx.mk(
        TreeKind::New { tpe: t.clone() },
        t.clone(),
        mini_ir::Span::SYNTHETIC,
    );
    let m = Type::Method {
        params: vec![vec![]],
        ret: Box::new(Type::Unit),
    };
    let sel = ctx.select(new_node, std_names::init(), SymbolId::NONE, m);
    ctx.apply(sel, vec![], t)
}

// ======================= CapturedVars =================================

/// Boxes mutable variables captured by nested closures or local defs
/// (Dotty's `CapturedVars`).
#[derive(Default)]
pub struct CapturedVars {
    ref_class: Option<(SymbolId, SymbolId)>, // (class, elem field)
    pending_class: Option<TreeRef>,
}

impl CapturedVars {
    fn ensure_ref_class(&mut self, ctx: &mut Ctx) -> (SymbolId, SymbolId) {
        if let Some(rc) = self.ref_class {
            return rc;
        }
        let (cls, fields, tree) = make_runtime_class(ctx, "Ref$cell", &[("elem", Type::Any)]);
        self.pending_class = Some(tree);
        let rc = (cls, fields[0]);
        self.ref_class = Some(rc);
        rc
    }

    fn is_boxed(&self, ctx: &Ctx, sym: SymbolId) -> bool {
        match self.ref_class {
            Some((cls, _)) => ctx.symbols.sym(sym).info.class_sym() == Some(cls),
            None => false,
        }
    }
}

impl PhaseInfo for CapturedVars {
    fn name(&self) -> &str {
        "capturedVars"
    }
    fn description(&self) -> &str {
        "represent vars captured by closures as heap objects"
    }
}

impl MiniPhase for CapturedVars {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ValDef)
            .with(NodeKind::Ident)
            .with(NodeKind::PackageDef)
    }

    fn runs_after_groups_of(&self) -> Vec<&'static str> {
        // Rule 3 (§6.1): the capture analysis in prepare_unit must see the
        // *finished* output of LazyVals (which introduces new local vars and
        // defs); fusing them lets the analysis run on a half-transformed
        // unit. The dynamic checker caught exactly this during development —
        // see DESIGN.md §8.
        vec!["erasure", "lazyVals"]
    }

    fn prepare_unit(&mut self, ctx: &mut Ctx, unit_tree: &TreeRef) {
        // The `Ref$cell` runtime class is **per unit**: every unit that
        // boxes a captured local carries its own ClassDef, so no unit's
        // output depends on whether an *earlier* unit already created the
        // class — the self-containment that unit-level parallel compilation
        // (and honest per-unit incremental reuse) requires.
        self.ref_class = None;
        self.pending_class = None;
        // Mark mutable locals referenced from a nested function.
        struct Walk<'a> {
            ctx: &'a mut Ctx,
            def_fun: HashMap<SymbolId, usize>,
            fun_depth: usize,
            fun_ids: Vec<usize>,
            next_fun: usize,
        }
        impl Walk<'_> {
            fn go(&mut self, t: &TreeRef) {
                match t.kind() {
                    TreeKind::DefDef { .. } | TreeKind::Lambda { .. } => {
                        self.next_fun += 1;
                        self.fun_ids.push(self.next_fun);
                        self.fun_depth += 1;
                        t.for_each_child(&mut |c| self.go(c));
                        self.fun_depth -= 1;
                        self.fun_ids.pop();
                    }
                    TreeKind::ValDef { sym, .. } => {
                        if self.ctx.symbols.sym(*sym).flags.is(Flags::MUTABLE)
                            && self.ctx.symbols.sym(self.ctx.symbols.sym(*sym).owner).kind
                                != SymKind::Class
                        {
                            let cur = self.fun_ids.last().copied().unwrap_or(0);
                            self.def_fun.insert(*sym, cur);
                        }
                        t.for_each_child(&mut |c| self.go(c));
                    }
                    TreeKind::Ident { sym } => {
                        if let Some(&home) = self.def_fun.get(sym) {
                            let cur = self.fun_ids.last().copied().unwrap_or(0);
                            if cur != home {
                                self.ctx.symbols.sym_mut(*sym).flags |= Flags::CAPTURED;
                            }
                        }
                    }
                    _ => t.for_each_child(&mut |c| self.go(c)),
                }
            }
        }
        let mut w = Walk {
            ctx,
            def_fun: HashMap::new(),
            fun_depth: 0,
            fun_ids: Vec::new(),
            next_fun: 0,
        };
        w.go(unit_tree);
    }

    fn transform_val_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ValDef { sym, rhs } = tree.kind() else {
            return tree.clone();
        };
        let flags = ctx.symbols.sym(*sym).flags;
        if !flags.is(Flags::CAPTURED) || !flags.is(Flags::MUTABLE) || rhs.is_empty_tree() {
            return tree.clone();
        }
        if self.is_boxed(ctx, *sym) {
            return tree.clone();
        }
        let (cls, elem) = self.ensure_ref_class(ctx);
        let cell_t = ctx.symbols.class_type(cls);
        // Rewrite the definition to a boxed cell.
        {
            let d = ctx.symbols.sym_mut(*sym);
            d.info = cell_t.clone();
            d.flags = d.flags.without(Flags::MUTABLE);
        }
        let owner = ctx.symbols.sym(*sym).owner;
        let tmp_name = ctx.fresh_name("cell");
        let tmp = ctx
            .symbols
            .new_term(owner, tmp_name, Flags::SYNTHETIC, cell_t.clone());
        let alloc = raw_new(ctx, cls);
        let tmp_def = ctx.val_def(tmp, alloc);
        let tmp_ref = ctx.ident(tmp);
        let elem_sel = ctx.select(tmp_ref, Name::intern("elem"), elem, Type::Any);
        let init = ctx.mk(
            TreeKind::Assign {
                lhs: elem_sel,
                rhs: rhs.clone(),
            },
            Type::Unit,
            tree.span(),
        );
        let tmp_ref2 = ctx.ident(tmp);
        let boxed = ctx.mk(
            TreeKind::Block {
                stats: [tmp_def, init].into(),
                expr: tmp_ref2,
            },
            cell_t,
            tree.span(),
        );
        ctx.with_kind(
            tree,
            TreeKind::ValDef {
                sym: *sym,
                rhs: boxed,
            },
        )
    }

    fn transform_ident(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Ident { sym } = tree.kind() else {
            return tree.clone();
        };
        if !sym.exists() || !ctx.symbols.sym(*sym).flags.is(Flags::CAPTURED) {
            return tree.clone();
        }
        let Some((cls, elem)) = self.ref_class.or_else(|| {
            // Uses can be met before the definition in traversal order.
            let rc = self.ensure_ref_class(ctx);
            Some(rc)
        }) else {
            return tree.clone();
        };
        let cell_t = ctx.symbols.class_type(cls);
        // The node's own type is still the value type; read through the box.
        let value_t = tree.tpe().clone();
        if value_t.class_sym() == Some(cls) {
            return tree.clone(); // already rewritten
        }
        let cell_ref = ctx.retyped(tree, cell_t);
        ctx.select(cell_ref, Name::intern("elem"), elem, value_t)
    }

    fn transform_package_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let Some(cls_tree) = self.pending_class.take() else {
            return tree.clone();
        };
        let TreeKind::PackageDef { pkg, stats } = tree.kind() else {
            return tree.clone();
        };
        let mut new_stats = stats.clone();
        new_stats.push(cls_tree);
        ctx.with_kind(
            tree,
            TreeKind::PackageDef {
                pkg: *pkg,
                stats: new_stats,
            },
        )
    }

    fn check_post_condition(&self, ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        // No bare reads of captured vars remain.
        if let TreeKind::Ident { sym } = t.kind() {
            if sym.exists() && ctx.symbols.sym(*sym).flags.is(Flags::CAPTURED) {
                let boxed = self.is_boxed(ctx, *sym);
                if boxed && t.tpe().class_sym() != ctx.symbols.sym(*sym).info.class_sym() {
                    return Err(format!(
                        "captured var `{}` read without unboxing",
                        ctx.symbols.full_name(*sym)
                    ));
                }
            }
        }
        Ok(())
    }
}

// ======================= NonLocalReturns ==============================

/// Expands non-local returns (Dotty's `NonLocalReturns`): a `return` inside
/// a nested function throws a control token; the target method catches
/// tokens carrying its own key.
#[derive(Default)]
pub struct NonLocalReturns {
    /// Stack of enclosing functions; `None` marks a lambda frame.
    funs: Vec<Option<SymbolId>>,
    token_class: Option<(SymbolId, SymbolId, SymbolId)>, // (class, key, value)
    pending_class: Option<TreeRef>,
    needs_wrap: HashSet<SymbolId>,
}

impl NonLocalReturns {
    fn ensure_token(&mut self, ctx: &mut Ctx) -> (SymbolId, SymbolId, SymbolId) {
        if let Some(t) = self.token_class {
            return t;
        }
        let (cls, fields, tree) = make_runtime_class(
            ctx,
            "NonLocalReturn$token",
            &[("key", Type::Int), ("value", Type::Any)],
        );
        self.pending_class = Some(tree);
        let t = (cls, fields[0], fields[1]);
        self.token_class = Some(t);
        t
    }
}

impl PhaseInfo for NonLocalReturns {
    fn name(&self) -> &str {
        "nonLocalReturns"
    }
    fn description(&self) -> &str {
        "expand non-local returns"
    }
}

impl MiniPhase for NonLocalReturns {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Return)
            .with(NodeKind::DefDef)
            .with(NodeKind::PackageDef)
    }

    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef).with(NodeKind::Lambda)
    }

    fn prepare_unit(&mut self, _ctx: &mut Ctx, _unit_tree: &TreeRef) {
        // Per-unit token class, for the same self-containment reason as
        // `CapturedVars::prepare_unit`: no unit's output may depend on which
        // earlier unit first needed the class.
        self.token_class = None;
        self.pending_class = None;
    }

    fn runs_after_groups_of(&self) -> Vec<&'static str> {
        vec!["erasure"]
    }

    fn prepare_def_def(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> bool {
        self.funs.push(Some(t.def_sym()));
        true
    }

    fn prepare_lambda(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.funs.push(None);
        true
    }

    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.funs.pop();
    }

    fn transform_return(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Return { expr, from } = tree.kind() else {
            return tree.clone();
        };
        if self.funs.last() == Some(&Some(*from)) {
            return tree.clone(); // local return
        }
        let (cls, key_f, value_f) = self.ensure_token(ctx);
        self.needs_wrap.insert(*from);
        let cell_t = ctx.symbols.class_type(cls);
        let owner = *from;
        let tmp_name = ctx.fresh_name("nlr");
        let tmp = ctx
            .symbols
            .new_term(owner, tmp_name, Flags::SYNTHETIC, cell_t.clone());
        let alloc = raw_new(ctx, cls);
        let tmp_def = ctx.val_def(tmp, alloc);
        let t1 = ctx.ident(tmp);
        let k_lhs = ctx.select(t1, Name::intern("key"), key_f, Type::Int);
        let k_lit = ctx.lit_int(i64::from(from.index()));
        let set_key = ctx.mk(
            TreeKind::Assign {
                lhs: k_lhs,
                rhs: k_lit,
            },
            Type::Unit,
            tree.span(),
        );
        let t2 = ctx.ident(tmp);
        let v_lhs = ctx.select(t2, Name::intern("value"), value_f, Type::Any);
        let set_value = ctx.mk(
            TreeKind::Assign {
                lhs: v_lhs,
                rhs: expr.clone(),
            },
            Type::Unit,
            tree.span(),
        );
        let t3 = ctx.ident(tmp);
        let thr = ctx.mk(TreeKind::Throw { expr: t3 }, Type::Nothing, tree.span());
        ctx.mk(
            TreeKind::Block {
                stats: [tmp_def, set_key, set_value].into(),
                expr: thr,
            },
            Type::Nothing,
            tree.span(),
        )
    }

    fn transform_def_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::DefDef { sym, paramss, rhs } = tree.kind() else {
            return tree.clone();
        };
        if !self.needs_wrap.remove(sym) {
            return tree.clone();
        }
        let (cls, key_f, value_f) = self.ensure_token(ctx);
        let ret_t = ctx.symbols.sym(*sym).info.final_result().clone();
        let cell_t = ctx.symbols.class_type(cls);
        // catch (e: Any) =>
        //   if (e.isInstanceOf[Token] && e.asInstanceOf[Token].key == K)
        //     e.asInstanceOf[Token].value.asInstanceOf[R]
        //   else throw e
        let exc_name = ctx.fresh_name("exc");
        let exc = ctx
            .symbols
            .new_term(*sym, exc_name, Flags::PARAM | Flags::SYNTHETIC, Type::Any);
        let e1 = ctx.ident(exc);
        let is_tok = ctx.mk(
            TreeKind::IsInstance {
                expr: e1,
                tpe: cell_t.clone(),
            },
            Type::Boolean,
            tree.span(),
        );
        let e2 = ctx.ident(exc);
        let cast1 = ctx.mk(
            TreeKind::Cast {
                expr: e2,
                tpe: cell_t.clone(),
            },
            cell_t.clone(),
            tree.span(),
        );
        let key_read = ctx.select(cast1, Name::intern("key"), key_f, Type::Int);
        let k_lit = ctx.lit_int(i64::from(sym.index()));
        let eq_m = Type::Method {
            params: vec![vec![Type::Any]],
            ret: Box::new(Type::Boolean),
        };
        let eq_sel = ctx.select(key_read, Name::intern("=="), SymbolId::NONE, eq_m);
        let key_eq = ctx.apply(eq_sel, vec![k_lit], Type::Boolean);
        let and_m = Type::Method {
            params: vec![vec![Type::Boolean]],
            ret: Box::new(Type::Boolean),
        };
        let and_sel = ctx.select(is_tok, Name::intern("&&"), SymbolId::NONE, and_m);
        let cond = ctx.apply(and_sel, vec![key_eq], Type::Boolean);
        let e3 = ctx.ident(exc);
        let cast2 = ctx.mk(
            TreeKind::Cast {
                expr: e3,
                tpe: cell_t.clone(),
            },
            cell_t,
            tree.span(),
        );
        let v_read = ctx.select(cast2, Name::intern("value"), value_f, Type::Any);
        let result = if ret_t == Type::Any {
            v_read
        } else {
            ctx.mk(
                TreeKind::Cast {
                    expr: v_read,
                    tpe: ret_t.clone(),
                },
                ret_t.clone(),
                tree.span(),
            )
        };
        let e4 = ctx.ident(exc);
        let rethrow = ctx.mk(TreeKind::Throw { expr: e4 }, Type::Nothing, tree.span());
        let handler = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: result,
                else_branch: rethrow,
            },
            ret_t.clone(),
            tree.span(),
        );
        let ee = ctx.empty();
        let typed_any = ctx.mk(
            TreeKind::Typed {
                expr: ee,
                tpe: Type::Any,
            },
            Type::Any,
            tree.span(),
        );
        let bind = ctx.mk(
            TreeKind::Bind {
                sym: exc,
                pat: typed_any,
            },
            Type::Any,
            tree.span(),
        );
        let eg = ctx.empty();
        let case = ctx.mk(
            TreeKind::CaseDef {
                pat: bind,
                guard: eg,
                body: handler,
            },
            ret_t.clone(),
            tree.span(),
        );
        let ef = ctx.empty();
        let wrapped = ctx.mk(
            TreeKind::Try {
                block: rhs.clone(),
                cases: [case].into(),
                finalizer: ef,
            },
            ret_t,
            tree.span(),
        );
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: paramss.clone(),
                rhs: wrapped,
            },
        )
    }

    fn transform_package_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let Some(cls_tree) = self.pending_class.take() else {
            return tree.clone();
        };
        let TreeKind::PackageDef { pkg, stats } = tree.kind() else {
            return tree.clone();
        };
        let mut new_stats = stats.clone();
        new_stats.push(cls_tree);
        ctx.with_kind(
            tree,
            TreeKind::PackageDef {
                pkg: *pkg,
                stats: new_stats,
            },
        )
    }
}
