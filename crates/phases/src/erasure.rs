//! `Erasure` — rewrites all types to the backend model, erasing type
//! parameters, type applications, function types and by-name remnants.
//!
//! The paper's second canonical group splitter (§6.2.2): erasure changes the
//! types of *every* tree, so phases cannot straddle it (rule 2), and it
//! assumes earlier phases finished whole units (rule 3). It therefore forms
//! a fusion group of its own via `runs_after_groups_of`.

use mini_ir::{Ctx, NodeKindSet, SymbolId, TreeKind, TreeRef, Type};
use miniphase::{MiniPhase, PhaseInfo};

/// The type-erasure phase.
#[derive(Default)]
pub struct Erasure {
    swept: bool,
}

impl PhaseInfo for Erasure {
    fn name(&self) -> &str {
        "erasure"
    }
    fn description(&self) -> &str {
        "rewrite types to the backend model, erasing all type parameters"
    }
}

impl Erasure {
    fn erase_node(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let erased = ctx.symbols.erase(tree.tpe());
        match tree.kind() {
            // Type applications vanish; the function child is already erased.
            TreeKind::TypeApply { fun, .. } => fun.clone(),
            // Member selections: a value select whose member erased to a less
            // specific type gets a cast back to the erased static type.
            TreeKind::Select { qual, name, sym } => {
                if sym.exists() {
                    let member_info = ctx.symbols.sym(*sym).info.clone();
                    if !member_info.is_method_like() {
                        let node = ctx.mk(
                            TreeKind::Select {
                                qual: qual.clone(),
                                name: *name,
                                sym: *sym,
                            },
                            member_info.clone(),
                            tree.span(),
                        );
                        return self.cast_if_needed(ctx, node, &member_info, &erased);
                    }
                    // Method select in function position: carries the erased
                    // method type.
                    return ctx.retyped(tree, member_info);
                }
                // Intrinsic selects: erase the carried method type.
                ctx.retyped(tree, erased)
            }
            // Applications: the result type comes from the (erased) function
            // type; cast back to the erased static type when they differ.
            TreeKind::Apply { fun, .. } => {
                let result = match fun.tpe() {
                    Type::Method { ret, .. } => (**ret).clone(),
                    _ => erased.clone(),
                };
                let node = ctx.retyped(tree, result.clone());
                self.cast_if_needed(ctx, node, &result, &erased)
            }
            TreeKind::New { .. } => {
                let k = TreeKind::New {
                    tpe: erased.clone(),
                };
                ctx.mk(k, erased, tree.span())
            }
            TreeKind::Cast { expr, tpe } => {
                let et = ctx.symbols.erase(tpe);
                ctx.mk(
                    TreeKind::Cast {
                        expr: expr.clone(),
                        tpe: et.clone(),
                    },
                    et,
                    tree.span(),
                )
            }
            TreeKind::IsInstance { expr, tpe } => {
                let et = ctx.symbols.erase(tpe);
                ctx.mk(
                    TreeKind::IsInstance {
                        expr: expr.clone(),
                        tpe: et,
                    },
                    Type::Boolean,
                    tree.span(),
                )
            }
            TreeKind::Typed { expr, tpe } => {
                let et = ctx.symbols.erase(tpe);
                ctx.mk(
                    TreeKind::Typed {
                        expr: expr.clone(),
                        tpe: et.clone(),
                    },
                    et,
                    tree.span(),
                )
            }
            TreeKind::SeqLiteral { elems, elem_tpe } => {
                let et = ctx.symbols.erase(elem_tpe);
                let node_t = Type::Array(Box::new(et.clone()));
                ctx.mk(
                    TreeKind::SeqLiteral {
                        elems: elems.clone(),
                        elem_tpe: et,
                    },
                    node_t,
                    tree.span(),
                )
            }
            // Everything else: keep the shape, erase the node type.
            _ => ctx.retyped(tree, erased),
        }
    }

    fn cast_if_needed(
        &self,
        ctx: &mut Ctx,
        node: TreeRef,
        actual: &Type,
        expected: &Type,
    ) -> TreeRef {
        if actual == expected || expected.is_missing() || *expected == Type::Any {
            return node;
        }
        if !matches!(actual, Type::Any) {
            // Only the Any→specific narrowing needs a checked cast.
            return node;
        }
        let span = node.span();
        ctx.mk(
            TreeKind::Cast {
                expr: node,
                tpe: expected.clone(),
            },
            expected.clone(),
            span,
        )
    }

    fn sweep_symbols(&mut self, ctx: &mut Ctx) {
        if self.swept {
            return;
        }
        self.swept = true;
        // `ids()` rather than `1..len()`: ids are not contiguous once the
        // table carries a parallel-worker shard.
        let ids: Vec<SymbolId> = ctx.symbols.ids().collect();
        for id in ids {
            let info = ctx.symbols.sym(id).info.clone();
            let erased = ctx.symbols.erase(&info);
            let parents = ctx.symbols.sym(id).parents.clone();
            let eparents: Vec<Type> = parents.iter().map(|p| ctx.symbols.erase(p)).collect();
            let d = ctx.symbols.sym_mut(id);
            d.info = erased;
            d.parents = eparents;
        }
    }
}

macro_rules! impl_erasure_hooks {
    ($(($variant:ident, $t:ident, $p:ident),)*) => {
        impl MiniPhase for Erasure {
            fn transforms(&self) -> NodeKindSet {
                NodeKindSet::ALL
            }

            fn runs_after_groups_of(&self) -> Vec<&'static str> {
                // Rule 2 + rule 3 (§6.2.2): everything before erasure must
                // have finished the whole unit.
                vec!["patternMatcher", "elimByName", "seqLiterals"]
            }

            fn prepare_unit(&mut self, ctx: &mut Ctx, _unit_tree: &TreeRef) {
                self.sweep_symbols(ctx);
            }

            fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
                if matches!(t.kind(), TreeKind::TypeApply { .. }) {
                    return Err("TypeApply survived Erasure".into());
                }
                if !t.is_empty_tree() && !t.tpe().is_erased() {
                    return Err(format!("unerased type {} survived Erasure", t.tpe()));
                }
                Ok(())
            }

            $(
                fn $t(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
                    self.erase_node(ctx, tree)
                }
            )*
        }
    };
}

mini_ir::with_node_kinds!(impl_erasure_hooks);
