//! # mini-phases — the concrete Miniphases
//!
//! The MiniScala lowering pipeline, mirroring the structure of Table 2 in
//! the paper: 22 Miniphases that the planner fuses into 6 groups — the same
//! block count as Dotty's pipeline (§6.2) — with boundaries forced by
//! `PatternMatcher` (rule 2), `Erasure` (rules 2+3), `CapturedVars`
//! (rule 3, see DESIGN.md §8) and `LambdaLift` (rule 3). See
//! `standard_pipeline`.

#![warn(missing_docs)]

pub mod capture;
pub mod erasure;
pub mod fields;
pub mod flow;
pub mod lambda_lift;
pub mod mixin;
pub mod outer;
pub mod patmat;
pub mod simple;
pub mod util;

pub use capture::{CapturedVars, NonLocalReturns};
pub use erasure::Erasure;
pub use fields::{Getters, LazyVals, Memoize};
pub use flow::{ElimByName, LiftTry, TailRec};
pub use lambda_lift::LambdaLift;
pub use mixin::{Constructors, Mixin};
pub use outer::ExplicitOuter;
pub use patmat::PatternMatcher;
pub use simple::{
    ElimRepeated, ExpandPrivate, FirstTransform, Flatten, InterceptedMethods, RefChecks,
    RestoreScopes, SeqLiterals,
};

use miniphase::MiniPhase;

/// The standard MiniScala transformation pipeline, in pipeline order.
///
/// The declared `runs_after_groups_of` constraints make the planner split
/// this list into six fusion groups:
///
/// 1. `firstTransform refChecks elimRepeated tailRec liftTry
///    interceptedMethods getters`
/// 2. `patternMatcher explicitOuter elimByName seqLiterals`
/// 3. `erasure`
/// 4. `mixin lazyVals memoize nonLocalReturns`
/// 5. `capturedVars constructors`
/// 6. `lambdaLift flatten restoreScopes expandPrivate`
pub fn standard_pipeline() -> Vec<Box<dyn MiniPhase>> {
    vec![
        Box::new(FirstTransform),
        Box::new(RefChecks),
        Box::new(ElimRepeated::default()),
        Box::new(TailRec),
        Box::new(LiftTry::default()),
        Box::new(InterceptedMethods),
        Box::new(Getters),
        Box::new(PatternMatcher::default()),
        Box::new(ExplicitOuter::default()),
        Box::new(ElimByName::default()),
        Box::new(SeqLiterals),
        Box::new(Erasure::default()),
        Box::new(Mixin),
        Box::new(LazyVals::default()),
        Box::new(Memoize),
        Box::new(NonLocalReturns::default()),
        Box::new(CapturedVars::default()),
        Box::new(Constructors),
        Box::new(LambdaLift::default()),
        Box::new(Flatten::default()),
        Box::new(RestoreScopes),
        Box::new(ExpandPrivate::default()),
    ]
}

/// Number of phases in [`standard_pipeline`].
pub fn standard_pipeline_len() -> usize {
    22
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniphase::{build_plan, PlanOptions};

    #[test]
    fn pipeline_has_expected_size() {
        assert_eq!(standard_pipeline().len(), standard_pipeline_len());
    }

    #[test]
    fn planner_groups_the_pipeline_into_six_blocks() {
        let phases = standard_pipeline();
        let plan = build_plan(&phases, &PlanOptions::default()).expect("constraints are valid");
        // Six blocks — the same count as the Dotty pipeline in the paper
        // ("our compiler has 6 separate blocks of Miniphases", §6.2).
        assert_eq!(plan.group_count(), 6, "plan:\n{}", plan.describe(&phases));
        // Erasure stands alone (rules 2+3, §6.2.2).
        let erasure_group = plan
            .groups
            .iter()
            .find(|g| g.iter().any(|&i| phases[i].name() == "erasure"))
            .expect("erasure present");
        assert_eq!(erasure_group.len(), 1, "erasure must form its own group");
    }

    #[test]
    fn megaphase_mode_yields_one_group_per_phase() {
        let phases = standard_pipeline();
        let plan = build_plan(
            &phases,
            &PlanOptions {
                fuse: false,
                ..PlanOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plan.group_count(), standard_pipeline_len());
    }

    #[test]
    fn table2_listing_marks_fused_blocks() {
        let phases = standard_pipeline();
        let plan = build_plan(&phases, &PlanOptions::default()).unwrap();
        let listing = plan.describe(&phases);
        assert!(listing.contains("patternMatcher"));
        assert!(listing.contains("erasure"));
        assert!(listing.contains("* "), "fused phases are starred");
    }
}
