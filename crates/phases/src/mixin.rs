//! `Mixin` and `Constructors`.
//!
//! `Mixin` inserts calls to the trait initializers of a class's own (newly
//! inherited) traits; `Constructors` collects all initialization code —
//! super-constructor call, trait initializers, field initializers, loose
//! template statements — into the primary constructor (`<init>`), and into a
//! synthesized `{Trait}$init` method for traits.

use mini_ir::{
    std_names, Ctx, Flags, Name, NodeKind, NodeKindSet, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};

/// The per-trait initializer method name.
pub fn trait_init_name(ctx: &Ctx, trait_sym: SymbolId) -> Name {
    Name::intern(&format!("{}$init", ctx.symbols.sym(trait_sym).name))
}

// ======================= Mixin =======================================

/// Expands trait composition (Dotty's `Mixin`): each concrete class gains
/// calls to the initializers of the traits it newly mixes in, base-most
/// first. The initializers themselves are synthesized by `Constructors`.
#[derive(Default)]
pub struct Mixin;

impl PhaseInfo for Mixin {
    fn name(&self) -> &str {
        "mixin"
    }
    fn description(&self) -> &str {
        "expand trait fields and trait initializers"
    }
}

impl MiniPhase for Mixin {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn runs_after_groups_of(&self) -> Vec<&'static str> {
        vec!["erasure"]
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        let cls = *sym;
        let d = ctx.symbols.sym(cls);
        if d.flags.is(Flags::TRAIT) {
            return tree.clone();
        }
        // New traits: in this class's linearization but not inherited through
        // the superclass.
        let lin = ctx.symbols.linearization(cls);
        let super_cls = d
            .parents
            .first()
            .and_then(|p| p.class_sym())
            .filter(|&p| !ctx.symbols.sym(p).flags.is(Flags::TRAIT));
        let inherited: Vec<SymbolId> = match super_cls {
            Some(p) => ctx.symbols.linearization(p),
            None => Vec::new(),
        };
        let mut new_traits: Vec<SymbolId> = lin
            .into_iter()
            .skip(1)
            .filter(|&t| {
                let td = ctx.symbols.sym(t);
                td.flags.is(Flags::TRAIT)
                    && !td.flags.is(Flags::SYNTHETIC)
                    && !inherited.contains(&t)
            })
            .collect();
        if new_traits.is_empty() {
            return tree.clone();
        }
        // Base-most first.
        new_traits.reverse();
        let mut stats: Vec<TreeRef> = Vec::with_capacity(new_traits.len() + body.len());
        for t in new_traits {
            let name = trait_init_name(ctx, t);
            let this = ctx.this_mono(cls);
            let m = Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Unit),
            };
            let init_sym = ctx.symbols.decl(t, name).unwrap_or(SymbolId::NONE);
            let sel = ctx.select(this, name, init_sym, m);
            stats.push(ctx.apply(sel, vec![], Type::Unit));
        }
        stats.extend(body.iter().cloned());
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: cls,
                body: stats.into(),
            },
        )
    }
}

// ======================= Constructors =================================

/// Collects initialization code into primary constructors (Dotty's
/// `Constructors`). For classes: synthesizes `<init>` with the constructor
/// parameters, assigning parameter fields, chaining the super constructor,
/// and moving field initializers and loose statements in declaration order.
/// For traits: the same material moves into a `{Trait}$init` method invoked
/// by implementing classes (inserted by `Mixin`).
#[derive(Default)]
pub struct Constructors;

impl PhaseInfo for Constructors {
    fn name(&self) -> &str {
        "constructors"
    }
    fn description(&self) -> &str {
        "collect initialization code in primary constructors"
    }
}

fn is_loose_stat(t: &TreeRef) -> bool {
    !t.is_def() && !t.is_empty_tree()
}

impl Constructors {
    fn field_assign(&self, ctx: &mut Ctx, cls: SymbolId, field: SymbolId, rhs: TreeRef) -> TreeRef {
        let this = ctx.this_mono(cls);
        let ft = ctx.symbols.sym(field).info.clone();
        let name = ctx.symbols.sym(field).name;
        let lhs = ctx.select(this, name, field, ft);
        ctx.mk(
            TreeKind::Assign { lhs, rhs },
            Type::Unit,
            mini_ir::Span::SYNTHETIC,
        )
    }

    fn transform_trait(&mut self, ctx: &mut Ctx, cls: SymbolId, body: &[TreeRef]) -> Vec<TreeRef> {
        let mut init_stats = Vec::new();
        let mut new_body = Vec::new();
        for m in body {
            match m.kind() {
                TreeKind::ValDef { sym, rhs } if !rhs.is_empty_tree() => {
                    init_stats.push(self.field_assign(ctx, cls, *sym, rhs.clone()));
                    let e = ctx.empty();
                    new_body.push(ctx.val_def(*sym, e));
                }
                _ if is_loose_stat(m) => init_stats.push(m.clone()),
                _ => new_body.push(m.clone()),
            }
        }
        let name = trait_init_name(ctx, cls);
        let init_sym = match ctx.symbols.decl(cls, name) {
            Some(s) => s,
            None => ctx.symbols.new_term(
                cls,
                name,
                Flags::METHOD | Flags::SYNTHETIC,
                Type::Method {
                    params: vec![vec![]],
                    ret: Box::new(Type::Unit),
                },
            ),
        };
        let unit = ctx.lit_unit();
        let init_body = ctx.block(init_stats, unit);
        new_body.push(ctx.mk(
            TreeKind::DefDef {
                sym: init_sym,
                paramss: vec![vec![]],
                rhs: init_body,
            },
            Type::Unit,
            mini_ir::Span::SYNTHETIC,
        ));
        new_body
    }

    fn transform_class(
        &mut self,
        ctx: &mut Ctx,
        cls: SymbolId,
        ctor: SymbolId,
        body: &[TreeRef],
    ) -> Vec<TreeRef> {
        // Constructor parameters mirror the PARAM-flagged fields, in
        // declaration order.
        let param_fields: Vec<SymbolId> = ctx
            .symbols
            .decls_of(cls)
            .into_iter()
            .filter(|&d| {
                let sd = ctx.symbols.sym(d);
                sd.flags.is(Flags::PARAM) && !sd.flags.is(Flags::METHOD)
            })
            .collect();
        let mut params = Vec::with_capacity(param_fields.len());
        let mut init_stats = Vec::new();
        // 1. Super constructor.
        let super_cls = ctx
            .symbols
            .sym(cls)
            .parents
            .first()
            .and_then(|p| p.class_sym())
            .filter(|&p| !ctx.symbols.sym(p).flags.is(Flags::TRAIT));
        if let Some(p) = super_cls {
            if let Some(pctor) = ctx.symbols.decl(p, std_names::init()) {
                let sup_t = ctx.symbols.class_type(p);
                let sup = ctx.mk(TreeKind::Super { cls }, sup_t, mini_ir::Span::SYNTHETIC);
                let m = ctx.symbols.sym(pctor).info.clone();
                let sel = ctx.select(sup, std_names::init(), pctor, m);
                init_stats.push(ctx.apply(sel, vec![], Type::Unit));
            }
        }
        // 2. Parameter-field assignments.
        for &f in &param_fields {
            let fname = ctx.symbols.sym(f).name;
            let ft = ctx.symbols.sym(f).info.clone();
            let p = ctx.symbols.new_term(
                ctor,
                Name::intern(&format!("{fname}$p")),
                Flags::PARAM | Flags::SYNTHETIC,
                ft,
            );
            let e = ctx.empty();
            params.push(ctx.mk(
                TreeKind::ValDef { sym: p, rhs: e },
                Type::Unit,
                mini_ir::Span::SYNTHETIC,
            ));
            let pref = ctx.ident(p);
            init_stats.push(self.field_assign(ctx, cls, f, pref));
        }
        // 3. Field initializers and loose statements, in order; fields stay
        //    as declarations.
        let mut new_body: Vec<TreeRef> = param_fields
            .iter()
            .map(|&f| {
                let e = ctx.empty();
                ctx.val_def(f, e)
            })
            .collect();
        for m in body {
            match m.kind() {
                TreeKind::ValDef { sym, rhs } if !rhs.is_empty_tree() => {
                    init_stats.push(self.field_assign(ctx, cls, *sym, rhs.clone()));
                    let e = ctx.empty();
                    new_body.push(ctx.val_def(*sym, e));
                }
                _ if is_loose_stat(m) => init_stats.push(m.clone()),
                _ => new_body.push(m.clone()),
            }
        }
        let unit = ctx.lit_unit();
        let ctor_body = ctx.block(init_stats, unit);
        new_body.push(ctx.mk(
            TreeKind::DefDef {
                sym: ctor,
                paramss: vec![params],
                rhs: ctor_body,
            },
            Type::Unit,
            mini_ir::Span::SYNTHETIC,
        ));
        new_body
    }
}

impl MiniPhase for Constructors {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["mixin", "memoize", "capturedVars"]
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        let cls = *sym;
        let new_body = if ctx.symbols.sym(cls).flags.is(Flags::TRAIT) {
            self.transform_trait(ctx, cls, body)
        } else {
            match ctx.symbols.decl(cls, std_names::init()) {
                // Synthetic classes without a constructor symbol (closure
                // classes, the Ref cell) are left alone.
                None => return tree.clone(),
                Some(ctor) => self.transform_class(ctx, cls, ctor, body),
            }
        };
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: cls,
                body: new_body.into(),
            },
        )
    }

    fn check_post_condition(&self, ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if let TreeKind::ClassDef { sym, body } = t.kind() {
            // No field initializers outside the constructor.
            for m in body {
                if let TreeKind::ValDef { sym: f, rhs } = m.kind() {
                    if !rhs.is_empty_tree() {
                        return Err(format!(
                            "field `{}` still initialized outside <init>",
                            ctx.symbols.full_name(*f)
                        ));
                    }
                }
            }
            // Classes with a constructor symbol carry an <init> DefDef.
            if !ctx.symbols.sym(*sym).flags.is(Flags::TRAIT)
                && ctx.symbols.decl(*sym, std_names::init()).is_some()
                && !body.iter().any(|m| {
                    matches!(m.kind(), TreeKind::DefDef { sym: d, .. }
                        if ctx.symbols.sym(*d).flags.is(Flags::CONSTRUCTOR))
                })
            {
                return Err(format!(
                    "class `{}` lacks an <init> after Constructors",
                    ctx.symbols.full_name(*sym)
                ));
            }
        }
        Ok(())
    }
}
