//! `PatternMatcher` — compiles `match` expressions (and catch-case patterns)
//! into chains of type tests, binder vals and fall-through local defs.
//!
//! This is the paper's canonical example of a phase that forces a fusion
//! group boundary (§6.2.1): it "makes major changes to the structure of the
//! trees", so it declares `runs_after_groups_of(TailRec)` — tail-recursion
//! rewriting must have finished the whole unit before pattern matching
//! compiles the cases.
//!
//! Translation scheme for `sel match { case p1 if g1 => b1; ... }` of type
//! `T`:
//!
//! ```text
//! {
//!   val sel$ = sel
//!   def case$n(): T = throw "MatchError..."       // fallback
//!   def case$i(): T =
//!     if (<test p_i on sel$>) { <binders>; if (g_i) b_i else case$i+1() }
//!     else case$i+1()
//!   case$1()
//! }
//! ```
//!
//! The nested defs are later lifted by `LambdaLift`. Catch clauses are
//! compiled to the backend contract: a single catch-all binder whose body is
//! the compiled match over the exception, rethrowing when nothing applies.

use crate::util::OwnerStack;
use mini_ir::{
    Constant, Ctx, Flags, Name, NodeKind, NodeKindSet, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};

/// The pattern-match compilation phase.
#[derive(Default)]
pub struct PatternMatcher {
    owners: OwnerStack,
}

impl PhaseInfo for PatternMatcher {
    fn name(&self) -> &str {
        "patternMatcher"
    }
    fn description(&self) -> &str {
        "compile pattern matches"
    }
}

impl PatternMatcher {
    fn owner(&self, ctx: &Ctx) -> SymbolId {
        let cur = self.owners.current();
        if cur.exists() {
            cur
        } else {
            ctx.symbols.builtins().root_pkg
        }
    }

    /// Builds the boolean test for `pat` against `sel`, and appends binder
    /// vals to `binds`.
    fn test_for(
        &self,
        ctx: &mut Ctx,
        pat: &TreeRef,
        sel: SymbolId,
        binds: &mut Vec<TreeRef>,
    ) -> TreeRef {
        match pat.kind() {
            TreeKind::Literal { value } => {
                let sel_ref = ctx.ident(sel);
                let lit = ctx.lit(*value, pat.span());
                let m = Type::Method {
                    params: vec![vec![Type::Any]],
                    ret: Box::new(Type::Boolean),
                };
                let sel_eq = ctx.select(sel_ref, Name::intern("=="), SymbolId::NONE, m);
                ctx.apply(sel_eq, vec![lit], Type::Boolean)
            }
            TreeKind::Typed { tpe, .. } => {
                if matches!(tpe, Type::Any) {
                    ctx.lit_bool(true)
                } else {
                    let sel_ref = ctx.ident(sel);
                    ctx.mk(
                        TreeKind::IsInstance {
                            expr: sel_ref,
                            tpe: tpe.clone(),
                        },
                        Type::Boolean,
                        pat.span(),
                    )
                }
            }
            TreeKind::Bind { sym, pat: inner } => {
                let test = self.test_for(ctx, inner, sel, binds);
                // Bind the selected value, cast to the pattern type.
                let target_t = ctx.symbols.sym(*sym).info.clone();
                let sel_ref = ctx.ident(sel);
                let value = if matches!(target_t, Type::Any) {
                    sel_ref
                } else {
                    ctx.mk(
                        TreeKind::Cast {
                            expr: sel_ref,
                            tpe: target_t.clone(),
                        },
                        target_t,
                        pat.span(),
                    )
                };
                binds.push(ctx.val_def(*sym, value));
                test
            }
            TreeKind::Alternative { pats } => {
                let mut acc: Option<TreeRef> = None;
                for p in pats {
                    let t = self.test_for(ctx, p, sel, binds);
                    acc = Some(match acc {
                        None => t,
                        Some(prev) => {
                            let m = Type::Method {
                                params: vec![vec![Type::Boolean]],
                                ret: Box::new(Type::Boolean),
                            };
                            let or = ctx.select(prev, Name::intern("||"), SymbolId::NONE, m);
                            ctx.apply(or, vec![t], Type::Boolean)
                        }
                    });
                }
                acc.unwrap_or_else(|| ctx.lit_bool(false))
            }
            // A bare reference/literal pattern already lowered, or anything
            // unexpected: equality test.
            _ => {
                let sel_ref = ctx.ident(sel);
                let m = Type::Method {
                    params: vec![vec![Type::Any]],
                    ret: Box::new(Type::Boolean),
                };
                let eq = ctx.select(sel_ref, Name::intern("=="), SymbolId::NONE, m);
                ctx.apply(eq, vec![pat.clone()], Type::Boolean)
            }
        }
    }

    /// Compiles a full match into the block described in the module docs.
    fn translate_match(
        &mut self,
        ctx: &mut Ctx,
        selector: &TreeRef,
        cases: &[TreeRef],
        result_t: &Type,
        span: mini_ir::Span,
        fallback: Fallback,
    ) -> TreeRef {
        let owner = self.owner(ctx);
        let sel_name = ctx.fresh_name("sel");
        let sel_sym =
            ctx.symbols
                .new_term(owner, sel_name, Flags::SYNTHETIC, selector.tpe().clone());
        let sel_def = ctx.val_def(sel_sym, selector.clone());

        // Fallback def.
        let fb_body = match fallback {
            Fallback::MatchError => {
                let msg = ctx.lit(Constant::Str(Name::intern("MatchError")), span);
                ctx.mk(TreeKind::Throw { expr: msg }, Type::Nothing, span)
            }
            Fallback::Rethrow => {
                let sel_ref = ctx.ident(sel_sym);
                ctx.mk(TreeKind::Throw { expr: sel_ref }, Type::Nothing, span)
            }
        };
        let mut defs: Vec<TreeRef> = Vec::with_capacity(cases.len() + 1);
        let mk_case_sym = |ctx: &mut Ctx, this: &PatternMatcher, i: usize| {
            let name = ctx.fresh_name(&format!("case{i}"));
            ctx.symbols.new_term(
                this.owner(ctx),
                name,
                Flags::METHOD | Flags::SYNTHETIC,
                Type::Method {
                    params: vec![vec![]],
                    ret: Box::new(result_t.clone()),
                },
            )
        };
        let fb_sym = mk_case_sym(ctx, self, cases.len());
        defs.push(ctx.mk(
            TreeKind::DefDef {
                sym: fb_sym,
                paramss: vec![vec![]],
                rhs: fb_body,
            },
            Type::Unit,
            span,
        ));
        // Build cases back to front.
        let mut next = fb_sym;
        for (i, c) in cases.iter().enumerate().rev() {
            let TreeKind::CaseDef { pat, guard, body } = c.kind() else {
                continue;
            };
            let sym = mk_case_sym(ctx, self, i);
            let mut binds = Vec::new();
            let test = self.test_for(ctx, pat, sel_sym, &mut binds);
            let call_next = |ctx: &mut Ctx, next: SymbolId| {
                let f = ctx.ident(next);
                ctx.apply(f, vec![], result_t.clone())
            };
            let success: TreeRef = if guard.is_empty_tree() {
                body.clone()
            } else {
                let else_b = call_next(ctx, next);
                ctx.mk(
                    TreeKind::If {
                        cond: guard.clone(),
                        then_branch: body.clone(),
                        else_branch: else_b,
                    },
                    result_t.clone(),
                    c.span(),
                )
            };
            let then_b = if binds.is_empty() {
                success
            } else {
                let tpe = success.tpe().clone();
                ctx.mk(
                    TreeKind::Block {
                        stats: binds.into(),
                        expr: success,
                    },
                    tpe,
                    c.span(),
                )
            };
            let else_b = call_next(ctx, next);
            let case_body = ctx.mk(
                TreeKind::If {
                    cond: test,
                    then_branch: then_b,
                    else_branch: else_b,
                },
                result_t.clone(),
                c.span(),
            );
            defs.push(ctx.mk(
                TreeKind::DefDef {
                    sym,
                    paramss: vec![vec![]],
                    rhs: case_body,
                },
                Type::Unit,
                c.span(),
            ));
            next = sym;
        }
        let entry = ctx.ident(next);
        let call = ctx.apply(entry, vec![], result_t.clone());
        let mut stats = vec![sel_def];
        stats.extend(defs.into_iter().rev());
        ctx.mk(
            TreeKind::Block {
                stats: stats.into(),
                expr: call,
            },
            result_t.clone(),
            span,
        )
    }
}

enum Fallback {
    MatchError,
    Rethrow,
}

impl MiniPhase for PatternMatcher {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Match).with(NodeKind::Try)
    }

    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef).with(NodeKind::ClassDef)
    }

    fn runs_after_groups_of(&self) -> Vec<&'static str> {
        vec!["tailRec"]
    }

    fn prepare_def_def(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> bool {
        self.owners.push(t.def_sym());
        true
    }

    fn prepare_class_def(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> bool {
        self.owners.push(t.def_sym());
        true
    }

    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.owners.pop();
    }

    fn transform_match(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Match { selector, cases } = tree.kind() else {
            return tree.clone();
        };
        let t = tree.tpe().clone();
        self.translate_match(
            ctx,
            &selector.clone(),
            &cases.clone(),
            &t,
            tree.span(),
            Fallback::MatchError,
        )
    }

    fn transform_try(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Try {
            block,
            cases,
            finalizer,
        } = tree.kind()
        else {
            return tree.clone();
        };
        if cases.is_empty() {
            return tree.clone();
        }
        // Already lowered to the single-binder form?
        if cases.len() == 1 {
            if let TreeKind::CaseDef { pat, guard, .. } = cases[0].kind() {
                if guard.is_empty_tree() {
                    if let TreeKind::Bind { pat: inner, .. } = pat.kind() {
                        if matches!(inner.kind(), TreeKind::Typed { tpe: Type::Any, .. }) {
                            return tree.clone();
                        }
                    }
                }
            }
        }
        let t = tree.tpe().clone();
        let owner = self.owner(ctx);
        let exc_name = ctx.fresh_name("exc");
        let exc = ctx
            .symbols
            .new_term(owner, exc_name, Flags::SYNTHETIC | Flags::PARAM, Type::Any);
        // Body: compiled match over the exception value, rethrowing on no
        // match.
        let exc_ref = ctx.ident(exc);
        let handler = self.translate_match(
            ctx,
            &exc_ref,
            &cases.clone(),
            &t,
            tree.span(),
            Fallback::Rethrow,
        );
        // Rebind the fallback: translate_match's Rethrow throws the
        // *selector* val, which is a copy of exc — equivalent.
        let e = ctx.empty();
        let typed_any = ctx.mk(
            TreeKind::Typed {
                expr: e,
                tpe: Type::Any,
            },
            Type::Any,
            tree.span(),
        );
        let bind = ctx.mk(
            TreeKind::Bind {
                sym: exc,
                pat: typed_any,
            },
            Type::Any,
            tree.span(),
        );
        let eg = ctx.empty();
        let case = ctx.mk(
            TreeKind::CaseDef {
                pat: bind,
                guard: eg,
                body: handler,
            },
            t.clone(),
            tree.span(),
        );
        ctx.mk(
            TreeKind::Try {
                block: block.clone(),
                cases: [case].into(),
                finalizer: finalizer.clone(),
            },
            t,
            tree.span(),
        )
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        match t.kind() {
            TreeKind::Match { .. } => Err("Match node survived PatternMatcher".into()),
            TreeKind::Alternative { .. } => {
                Err("pattern Alternative survived PatternMatcher".into())
            }
            TreeKind::Try { cases, .. } => {
                if cases.len() > 1 {
                    return Err("multi-case catch survived PatternMatcher".into());
                }
                if let Some(c) = cases.first() {
                    let TreeKind::CaseDef { pat, guard, .. } = c.kind() else {
                        return Err("catch case is not a CaseDef".into());
                    };
                    if !guard.is_empty_tree() {
                        return Err("guarded catch case survived PatternMatcher".into());
                    }
                    if !matches!(pat.kind(), TreeKind::Bind { .. }) {
                        return Err("catch pattern not reduced to a binder".into());
                    }
                }
                Ok(())
            }
            // CaseDefs are only legal directly under Try after this phase;
            // a stray CaseDef elsewhere cannot be detected without parent
            // links, so the Try shape above carries the check.
            _ => Ok(()),
        }
    }
}
