//! `ExplicitOuter` — gives nested classes an `$outer` field and rewrites
//! `this` references to outer classes into `$outer` chains.

use mini_ir::{
    std_names, Ctx, Flags, Name, NodeKind, NodeKindSet, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};

/// The outer-pointer phase.
#[derive(Default)]
pub struct ExplicitOuter {
    /// Enclosing class stack (maintained through prepares).
    classes: Vec<SymbolId>,
}

fn outer_name() -> Name {
    std_names::outer()
}

/// The `$outer` field of `cls`, if it has one.
fn outer_field(ctx: &Ctx, cls: SymbolId) -> Option<SymbolId> {
    ctx.symbols.decl(cls, outer_name())
}

impl ExplicitOuter {
    /// Builds the access path from the current class's `this` to `target`'s
    /// instance by chaining `$outer` fields. Returns `None` when `target` is
    /// not on the enclosing-class path.
    fn outer_path(&self, ctx: &mut Ctx, target: SymbolId) -> Option<TreeRef> {
        let innermost = *self.classes.last()?;
        let mut expr = ctx.this_ref(innermost);
        let mut cur = innermost;
        let mut fuel = 64;
        while cur != target {
            fuel -= 1;
            if fuel == 0 {
                return None;
            }
            let f = outer_field(ctx, cur)?;
            let next = ctx.symbols.sym(f).info.class_sym()?;
            let ft = ctx.symbols.sym(f).info.clone();
            expr = ctx.select(expr, outer_name(), f, ft);
            cur = next;
        }
        Some(expr)
    }
}

impl PhaseInfo for ExplicitOuter {
    fn name(&self) -> &str {
        "explicitOuter"
    }
    fn description(&self) -> &str {
        "add accessors to outer classes from nested ones"
    }
}

impl MiniPhase for ExplicitOuter {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::This).with(NodeKind::Apply)
    }

    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["patternMatcher"]
    }

    fn prepare_class_def(&mut self, ctx: &mut Ctx, t: &TreeRef) -> bool {
        let cls = t.def_sym();
        // Entering a nested class: give it an `$outer` parameter-field and
        // extend its constructor signature (idempotent).
        let owner = ctx.symbols.sym(cls).owner;
        if ctx.symbols.sym(owner).kind == mini_ir::SymKind::Class && outer_field(ctx, cls).is_none()
        {
            let outer_t = ctx.symbols.class_type(owner);
            ctx.symbols.new_term(
                cls,
                outer_name(),
                Flags::PARAM | Flags::SYNTHETIC,
                outer_t.clone(),
            );
            if let Some(ctor) = ctx.symbols.decl(cls, std_names::init()) {
                if let Type::Method { params, ret } = ctx.symbols.sym(ctor).info.clone() {
                    let mut ps = params;
                    if let Some(first) = ps.first_mut() {
                        first.push(outer_t);
                    }
                    ctx.symbols.sym_mut(ctor).info = Type::Method { params: ps, ret };
                }
            }
        }
        self.classes.push(cls);
        true
    }

    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.classes.pop();
    }

    fn transform_this(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::This { cls } = tree.kind() else {
            return tree.clone();
        };
        match self.classes.last() {
            Some(&inner) if inner != *cls => match self.outer_path(ctx, *cls) {
                Some(path) => path,
                None => tree.clone(),
            },
            _ => tree.clone(),
        }
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        // Constructor calls of nested classes receive the outer instance as
        // an extra trailing argument.
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        let TreeKind::Select { qual, name, sym: _ } = fun.kind() else {
            return tree.clone();
        };
        if *name != std_names::init() || !matches!(qual.kind(), TreeKind::New { .. }) {
            return tree.clone();
        }
        let TreeKind::New { tpe } = qual.kind() else {
            return tree.clone();
        };
        let Some(cls) = tpe.class_sym() else {
            return tree.clone();
        };
        let owner = ctx.symbols.sym(cls).owner;
        if !owner.exists() || ctx.symbols.sym(owner).kind != mini_ir::SymKind::Class {
            return tree.clone();
        }
        // Nested class: needs the outer instance (unless already passed).
        let Some(f) = outer_field(ctx, cls) else {
            // The class's own prepare may not have run yet (forward
            // reference within the unit): create the field now, mirroring
            // prepare_class_def.
            let outer_t = ctx.symbols.class_type(owner);
            ctx.symbols
                .new_term(cls, outer_name(), Flags::PARAM | Flags::SYNTHETIC, outer_t);
            return self.transform_apply(ctx, tree);
        };
        let expected = ctx
            .symbols
            .sym(cls)
            .decls
            .iter()
            .filter(|&&d| {
                let sd = ctx.symbols.sym(d);
                sd.flags.is(Flags::PARAM) && !sd.flags.is(Flags::METHOD)
            })
            .count();
        if args.len() >= expected {
            return tree.clone(); // already expanded
        }
        let Some(outer) = self.outer_path(ctx, owner) else {
            ctx.error(
                tree.span(),
                "explicitOuter",
                "cannot construct a nested class outside its outer class",
            );
            return tree.clone();
        };
        let _ = f;
        let mut new_args = args.clone();
        new_args.push(outer);
        ctx.with_kind(
            tree,
            TreeKind::Apply {
                fun: fun.clone(),
                args: new_args,
            },
        )
    }
}
