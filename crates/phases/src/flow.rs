//! Control-flow lowering Miniphases: `TailRec`, `LiftTry` (the paper's
//! flagship prepare-using phase, §4.1) and `ElimByName`.

use mini_ir::{
    std_names, Ctx, Flags, NodeKind, NodeKindSet, SymKind, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};

// ======================= TailRec ======================================

/// Rewrites self-recursive tail calls into jumps (Dotty's `TailRec`):
/// the method body is wrapped in a `Labeled` block and each tail call
/// becomes a `JumpTo` that re-binds the parameters.
///
/// Applied to methods that cannot be overridden: top-level functions and
/// `private`/`final` members.
#[derive(Default)]
pub struct TailRec;

fn is_self_call(fun: &TreeRef, m: SymbolId) -> bool {
    match fun.kind() {
        TreeKind::Ident { sym } => *sym == m,
        TreeKind::Select { qual, sym, .. } => {
            *sym == m && matches!(qual.kind(), TreeKind::This { .. })
        }
        _ => false,
    }
}

fn rewrite_tails(
    ctx: &mut Ctx,
    t: &TreeRef,
    m: SymbolId,
    label: SymbolId,
    n_params: usize,
    found: &mut bool,
) -> TreeRef {
    match t.kind() {
        TreeKind::Apply { fun, args } if is_self_call(fun, m) && args.len() == n_params => {
            *found = true;
            ctx.mk(
                TreeKind::JumpTo {
                    label,
                    args: args.clone(),
                },
                Type::Nothing,
                t.span(),
            )
        }
        TreeKind::Block { stats, expr } => {
            let new_expr = rewrite_tails(ctx, expr, m, label, n_params, found);
            if TreeRef::ptr_eq(&new_expr, expr) {
                t.clone()
            } else {
                ctx.with_kind(
                    t,
                    TreeKind::Block {
                        stats: stats.clone(),
                        expr: new_expr,
                    },
                )
            }
        }
        TreeKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let nt = rewrite_tails(ctx, then_branch, m, label, n_params, found);
            let ne = rewrite_tails(ctx, else_branch, m, label, n_params, found);
            if TreeRef::ptr_eq(&nt, then_branch) && TreeRef::ptr_eq(&ne, else_branch) {
                t.clone()
            } else {
                ctx.with_kind(
                    t,
                    TreeKind::If {
                        cond: cond.clone(),
                        then_branch: nt,
                        else_branch: ne,
                    },
                )
            }
        }
        TreeKind::Match { selector, cases } => {
            let mut changed = false;
            let new_cases: Vec<TreeRef> = cases
                .iter()
                .map(|c| {
                    if let TreeKind::CaseDef { pat, guard, body } = c.kind() {
                        let nb = rewrite_tails(ctx, body, m, label, n_params, found);
                        if TreeRef::ptr_eq(&nb, body) {
                            c.clone()
                        } else {
                            changed = true;
                            ctx.with_kind(
                                c,
                                TreeKind::CaseDef {
                                    pat: pat.clone(),
                                    guard: guard.clone(),
                                    body: nb,
                                },
                            )
                        }
                    } else {
                        c.clone()
                    }
                })
                .collect();
            if changed {
                ctx.with_kind(
                    t,
                    TreeKind::Match {
                        selector: selector.clone(),
                        cases: new_cases.into(),
                    },
                )
            } else {
                t.clone()
            }
        }
        // Tail calls inside try/lambda/nested defs must not be rewritten.
        _ => t.clone(),
    }
}

impl PhaseInfo for TailRec {
    fn name(&self) -> &str {
        "tailRec"
    }
    fn description(&self) -> &str {
        "rewrite tail recursion to loops"
    }
}

impl MiniPhase for TailRec {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["firstTransform"]
    }

    fn transform_def_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::DefDef { sym, paramss, rhs } = tree.kind() else {
            return tree.clone();
        };
        if rhs.is_empty_tree() {
            return tree.clone();
        }
        let d = ctx.symbols.sym(*sym);
        let owner_is_pkg = ctx.symbols.sym(d.owner).kind == SymKind::Package;
        if !(owner_is_pkg || d.flags.is_any(Flags::PRIVATE | Flags::FINAL)) {
            return tree.clone();
        }
        let param_syms: Vec<SymbolId> = paramss.iter().flatten().map(|p| p.def_sym()).collect();
        let info = d.info.clone();
        let label_name = ctx.fresh_name("tailLoop");
        let label = ctx.symbols.new_label(*sym, label_name, info);
        ctx.symbols.sym_mut(label).decls = param_syms.clone();
        let mut found = false;
        let new_rhs = rewrite_tails(ctx, rhs, *sym, label, param_syms.len(), &mut found);
        if !found {
            return tree.clone();
        }
        let labeled = ctx.mk(
            TreeKind::Labeled {
                label,
                body: new_rhs.clone(),
            },
            new_rhs.tpe().clone(),
            tree.span(),
        );
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: paramss.clone(),
                rhs: labeled,
            },
        )
    }
}

// ======================= LiftTry ======================================

/// Lifts `try` expressions that would execute on a non-empty operand stack
/// into their own (nested, later lambda-lifted) methods — the paper's
/// running example for *prepares* (§4.1): the phase "maintains a boolean
/// state which is an over-approximation of whether the current subtree is
/// inside an expression".
#[derive(Default)]
pub struct LiftTry {
    /// One entry per prepared node: (owner introduced here, "inside
    /// expression" flag for the subtree).
    stack: Vec<(Option<SymbolId>, bool)>,
}

impl LiftTry {
    fn in_expr(&self) -> bool {
        self.stack.last().is_some_and(|e| e.1)
    }

    fn current_owner(&self, ctx: &Ctx) -> SymbolId {
        self.stack
            .iter()
            .rev()
            .find_map(|e| e.0)
            .unwrap_or(ctx.symbols.builtins().root_pkg)
    }

    fn push_expr(&mut self, flag: bool) -> bool {
        self.stack.push((None, flag));
        true
    }
}

impl PhaseInfo for LiftTry {
    fn name(&self) -> &str {
        "liftTry"
    }
    fn description(&self) -> &str {
        "put try expressions that might execute on non-empty stacks into their own methods"
    }
}

impl MiniPhase for LiftTry {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Try)
    }

    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::from_kinds([
            NodeKind::Apply,
            NodeKind::Select,
            NodeKind::Assign,
            NodeKind::If,
            NodeKind::Throw,
            NodeKind::Return,
            NodeKind::While,
            NodeKind::Labeled,
            NodeKind::CaseDef,
            NodeKind::ValDef,
            NodeKind::DefDef,
            NodeKind::Lambda,
            NodeKind::ClassDef,
        ])
    }

    fn prepare_apply(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(true)
    }
    fn prepare_select(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(true)
    }
    fn prepare_assign(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(true)
    }
    fn prepare_if(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        // Over-approximation: an `if` nested in an expression keeps the
        // flag; at statement level the enclosing scope already pushed false.
        let cur = self.in_expr();
        self.push_expr(cur)
    }
    fn prepare_throw(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(true)
    }
    fn prepare_return(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(true)
    }
    fn prepare_while(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(false)
    }
    fn prepare_labeled(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(false)
    }
    fn prepare_case_def(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(false)
    }
    fn prepare_val_def(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(false)
    }
    fn prepare_def_def(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> bool {
        self.stack.push((Some(t.def_sym()), false));
        true
    }
    fn prepare_lambda(&mut self, _ctx: &mut Ctx, _t: &TreeRef) -> bool {
        self.push_expr(false)
    }
    fn prepare_class_def(&mut self, _ctx: &mut Ctx, t: &TreeRef) -> bool {
        self.stack.push((Some(t.def_sym()), false));
        true
    }

    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.stack.pop();
    }

    fn transform_try(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        if !self.in_expr() {
            return tree.clone();
        }
        let t = tree.tpe().clone();
        let owner = self.current_owner(ctx);
        let name = ctx.fresh_name("liftedTry");
        let meth = ctx.symbols.new_term(
            owner,
            name,
            Flags::METHOD | Flags::SYNTHETIC,
            Type::Method {
                params: vec![vec![]],
                ret: Box::new(t.clone()),
            },
        );
        let def = ctx.mk(
            TreeKind::DefDef {
                sym: meth,
                paramss: vec![vec![]],
                rhs: tree.clone(),
            },
            Type::Unit,
            tree.span(),
        );
        let fun = ctx.ident(meth);
        let call = ctx.apply(fun, vec![], t.clone());
        ctx.mk(
            TreeKind::Block {
                stats: [def].into(),
                expr: call,
            },
            t,
            tree.span(),
        )
    }
}

// ======================= ElimByName ===================================

/// Expands by-name parameters and arguments (Dotty's `ElimByName`):
/// `=> T` parameters become `() => T` thunks, arguments are wrapped in
/// zero-parameter lambdas, and parameter uses become `.apply()` calls.
#[derive(Default)]
pub struct ElimByName {
    swept: bool,
}

impl PhaseInfo for ElimByName {
    fn name(&self) -> &str {
        "elimByName"
    }
    fn description(&self) -> &str {
        "expand by-name parameters and arguments"
    }
}

fn strip_by_name(t: &Type) -> Type {
    match t {
        Type::ByName(inner) => Type::Function {
            params: vec![],
            ret: Box::new(strip_by_name(inner)),
        },
        Type::Method { params, ret } => Type::Method {
            params: params
                .iter()
                .map(|ps| ps.iter().map(strip_by_name).collect())
                .collect(),
            ret: Box::new(strip_by_name(ret)),
        },
        Type::Poly {
            tparams,
            underlying,
        } => Type::Poly {
            tparams: tparams.clone(),
            underlying: Box::new(strip_by_name(underlying)),
        },
        other => other.clone(),
    }
}

impl MiniPhase for ElimByName {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Apply).with(NodeKind::Ident)
    }

    fn prepare_unit(&mut self, ctx: &mut Ctx, _unit_tree: &TreeRef) {
        if self.swept {
            return;
        }
        self.swept = true;
        // `ids()` rather than `1..len()`: ids are not contiguous once the
        // table carries a parallel-worker shard.
        let ids: Vec<SymbolId> = ctx.symbols.ids().collect();
        for id in ids {
            let info = ctx.symbols.sym(id).info.clone();
            let stripped = strip_by_name(&info);
            if stripped != info {
                ctx.symbols.sym_mut(id).info = stripped;
            }
        }
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        // The tree type of `fun` still shows the by-name positions.
        let Type::Method { params, ret } = fun.tpe() else {
            return tree.clone();
        };
        let Some(ps) = params.first() else {
            return tree.clone();
        };
        if !ps.iter().any(|p| matches!(p, Type::ByName(_))) {
            return tree.clone();
        }
        let mut new_args = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            if let Some(Type::ByName(inner)) = ps.get(i) {
                let thunk_t = Type::Function {
                    params: vec![],
                    ret: Box::new((**inner).clone()),
                };
                let thunk = ctx.mk(
                    TreeKind::Lambda {
                        params: vec![].into(),
                        body: a.clone(),
                    },
                    thunk_t,
                    a.span(),
                );
                new_args.push(thunk);
            } else {
                new_args.push(a.clone());
            }
        }
        let new_fun_t = Type::Method {
            params: vec![ps.iter().map(strip_by_name).collect()],
            ret: ret.clone(),
        };
        let new_fun = ctx.retyped(fun, new_fun_t);
        ctx.with_kind(
            tree,
            TreeKind::Apply {
                fun: new_fun,
                args: new_args.into(),
            },
        )
    }

    fn transform_ident(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Ident { sym } = tree.kind() else {
            return tree.clone();
        };
        if !sym.exists() || !ctx.symbols.sym(*sym).flags.is(Flags::BY_NAME) {
            return tree.clone();
        }
        // The use of a by-name parameter forces the thunk.
        let inner = match tree.tpe() {
            Type::ByName(t) => (**t).clone(),
            Type::Function { ret, .. } => (**ret).clone(),
            other => other.clone(),
        };
        let fn_t = Type::Function {
            params: vec![],
            ret: Box::new(inner.clone()),
        };
        let thunk_ref = ctx.retyped(tree, fn_t.clone());
        let (apply_sym, apply_t) = ctx
            .symbols
            .member(&fn_t, std_names::apply())
            .expect("Function0 has apply");
        let sel = ctx.select(thunk_ref, std_names::apply(), apply_sym, apply_t);
        ctx.apply(sel, vec![], inner)
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        fn has_by_name(t: &Type) -> bool {
            match t {
                Type::ByName(_) => true,
                Type::Method { params, ret } => {
                    params.iter().flatten().any(has_by_name) || has_by_name(ret)
                }
                Type::Poly { underlying, .. } => has_by_name(underlying),
                _ => false,
            }
        }
        if has_by_name(t.tpe()) {
            return Err("by-name type survived ElimByName".into());
        }
        Ok(())
    }
}
