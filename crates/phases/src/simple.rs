//! The structurally simple Miniphases: `FirstTransform`, `RefChecks`,
//! `InterceptedMethods`, `ElimRepeated`, `SeqLiterals`, `ExpandPrivate`,
//! `Flatten` and `RestoreScopes`.

use crate::util::OwnerStack;
use mini_ir::{
    std_names, Constant, Ctx, Flags, Name, NodeKind, NodeKindSet, SymKind, SymbolId, TreeKind,
    TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};
use std::collections::HashMap;

// ======================= FirstTransform ================================

/// Puts trees into canonical form (Dotty's `FirstTransform`): flattens
/// curried parameter lists (the `uncurry` of scalac), normalizes
/// parameterless `def f` to `def f()`, and folds `if` on constant conditions
/// (the transformation the paper describes creeping into scalac's
/// `refchecks`, §2.1).
#[derive(Default)]
pub struct FirstTransform;

fn flatten_method_type(t: &Type) -> Type {
    match t {
        Type::Poly {
            tparams,
            underlying,
        } => Type::Poly {
            tparams: tparams.clone(),
            underlying: Box::new(flatten_method_type(underlying)),
        },
        Type::Method { params, ret } => Type::Method {
            params: vec![params.iter().flatten().cloned().collect()],
            ret: ret.clone(),
        },
        other => other.clone(),
    }
}

impl PhaseInfo for FirstTransform {
    fn name(&self) -> &str {
        "firstTransform"
    }
    fn description(&self) -> &str {
        "some transformations to put trees into a canonical form"
    }
}

impl MiniPhase for FirstTransform {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef)
            .with(NodeKind::Apply)
            .with(NodeKind::If)
    }

    fn transform_def_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::DefDef { sym, paramss, rhs } = tree.kind() else {
            return tree.clone();
        };
        if paramss.len() == 1 {
            return tree.clone();
        }
        let flat: Vec<TreeRef> = paramss.iter().flatten().cloned().collect();
        let info = flatten_method_type(&ctx.symbols.sym(*sym).info);
        ctx.symbols.sym_mut(*sym).info = info;
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: vec![flat],
                rhs: rhs.clone(),
            },
        )
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        // Merge `f(a)(b)` into `f(a, b)` when the inner apply is a partial
        // method application (function-value applications go through
        // `.apply` and are not method-typed).
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        if let TreeKind::Apply {
            fun: inner_fun,
            args: inner_args,
        } = fun.kind()
        {
            if matches!(fun.tpe(), Type::Method { .. }) {
                let mut all = inner_args.clone();
                all.extend(args.iter().cloned());
                return ctx.with_kind(
                    tree,
                    TreeKind::Apply {
                        fun: inner_fun.clone(),
                        args: all,
                    },
                );
            }
        }
        tree.clone()
    }

    fn transform_if(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::If {
            cond,
            then_branch,
            else_branch,
        } = tree.kind()
        else {
            return tree.clone();
        };
        if let TreeKind::Literal { value } = cond.kind() {
            if let Some(b) = value.as_bool() {
                let taken = if b { then_branch } else { else_branch };
                if taken.is_empty_tree() {
                    return ctx.lit(Constant::Unit, tree.span());
                }
                return taken.clone();
            }
        }
        tree.clone()
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        match t.kind() {
            TreeKind::DefDef { paramss, .. } if paramss.len() != 1 => {
                Err("curried parameter lists survived FirstTransform".into())
            }
            TreeKind::Apply { fun, .. }
                if matches!(fun.kind(), TreeKind::Apply { .. })
                    && matches!(fun.tpe(), Type::Method { .. }) =>
            {
                Err("curried application survived FirstTransform".into())
            }
            _ => Ok(()),
        }
    }
}

// ======================= RefChecks =====================================

/// Checks that overriding members conform to the members they override
/// (paper §2.1: originally "intended to only inspect but not modify the
/// tree" — in our pipeline it really is check-only).
#[derive(Default)]
pub struct RefChecks;

impl PhaseInfo for RefChecks {
    fn name(&self) -> &str {
        "refChecks"
    }
    fn description(&self) -> &str {
        "checks related to abstract members and overriding"
    }
}

impl MiniPhase for RefChecks {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, .. } = tree.kind() else {
            return tree.clone();
        };
        let cls = *sym;
        let decls = ctx.symbols.decls_of(cls);
        for m in decls {
            let md = ctx.symbols.sym(m);
            if !md.flags.is(Flags::METHOD) || md.flags.is(Flags::CONSTRUCTOR) {
                continue;
            }
            let name = md.name;
            let info = md.info.clone();
            let is_override = md.flags.is(Flags::OVERRIDE);
            if let Some(parent_m) = ctx.symbols.overridden(cls, m) {
                let pinfo = ctx.symbols.sym(parent_m).info.clone();
                let ok = ctx
                    .symbols
                    .is_subtype(info.final_result(), pinfo.final_result());
                if !ok {
                    let span = ctx.symbols.sym(m).span;
                    ctx.error(
                        span,
                        "refChecks",
                        format!(
                            "override of `{name}` has incompatible result type: {} vs {}",
                            info.final_result(),
                            pinfo.final_result()
                        ),
                    );
                }
            } else if is_override {
                let span = ctx.symbols.sym(m).span;
                ctx.error(span, "refChecks", format!("`{name}` overrides nothing"));
            }
        }
        tree.clone()
    }
}

// ======================= InterceptedMethods ============================

/// Special handling of `==`, `!=` and `getClass` (Dotty's
/// `InterceptedMethods` + `GetClass`): reference equality tests become
/// `equals` calls; `getClass` on statically known primitives becomes a
/// constant.
#[derive(Default)]
pub struct InterceptedMethods;

impl PhaseInfo for InterceptedMethods {
    fn name(&self) -> &str {
        "interceptedMethods"
    }
    fn description(&self) -> &str {
        "special handling of ==, != and getClass"
    }
}

impl MiniPhase for InterceptedMethods {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Apply)
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        let TreeKind::Select { qual, name, sym } = fun.kind() else {
            return tree.clone();
        };
        // getClass on a primitive receiver: constant-fold to the type name.
        if *sym == ctx.symbols.builtins().get_class_meth && qual.tpe().is_primitive() {
            let text = qual.tpe().to_string();
            let lit = ctx.lit(Constant::Str(Name::intern(&text)), tree.span());
            // Preserve the receiver's evaluation for effects.
            return ctx.mk(
                TreeKind::Block {
                    stats: [qual.clone()].into(),
                    expr: lit,
                },
                Type::Str,
                tree.span(),
            );
        }
        if sym.exists() || args.len() != 1 {
            return tree.clone();
        }
        let eq = name.as_str() == "==";
        let ne = name.as_str() == "!=";
        if (!eq && !ne) || !qual.tpe().is_ref_like() {
            return tree.clone();
        }
        let equals = ctx.symbols.builtins().equals_meth;
        let m = Type::Method {
            params: vec![vec![Type::Any]],
            ret: Box::new(Type::Boolean),
        };
        let sel = ctx.select(qual.clone(), std_names::equals(), equals, m);
        let call = ctx.apply(sel, args.clone(), Type::Boolean);
        if eq {
            call
        } else {
            let not_m = Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Boolean),
            };
            let not_sel = ctx.select(call, Name::intern("!"), SymbolId::NONE, not_m);
            ctx.apply(not_sel, vec![], Type::Boolean)
        }
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if let TreeKind::Apply { fun, .. } = t.kind() {
            if let TreeKind::Select { qual, name, sym } = fun.kind() {
                if !sym.exists()
                    && (name.as_str() == "==" || name.as_str() == "!=")
                    && qual.tpe().is_ref_like()
                {
                    return Err("reference `==` survived InterceptedMethods".into());
                }
            }
        }
        Ok(())
    }
}

// ======================= ElimRepeated ==================================

/// Rewrites vararg parameters and arguments (Dotty's `ElimRepeated`):
/// `T*` parameters become arrays, trailing argument groups become
/// `SeqLiteral`s.
#[derive(Default)]
pub struct ElimRepeated {
    swept: bool,
}

impl PhaseInfo for ElimRepeated {
    fn name(&self) -> &str {
        "elimRepeated"
    }
    fn description(&self) -> &str {
        "rewrite vararg parameters and arguments"
    }
}

impl MiniPhase for ElimRepeated {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Apply)
    }

    fn prepare_unit(&mut self, ctx: &mut Ctx, _unit_tree: &TreeRef) {
        if self.swept {
            return;
        }
        self.swept = true;
        // Signature sweep: Repeated(T) becomes Array(T) in every symbol.
        fn strip(t: &Type) -> Type {
            match t {
                Type::Repeated(e) => Type::Array(Box::new(strip(e))),
                Type::Method { params, ret } => Type::Method {
                    params: params
                        .iter()
                        .map(|ps| ps.iter().map(strip).collect())
                        .collect(),
                    ret: Box::new(strip(ret)),
                },
                Type::Poly {
                    tparams,
                    underlying,
                } => Type::Poly {
                    tparams: tparams.clone(),
                    underlying: Box::new(strip(underlying)),
                },
                other => other.clone(),
            }
        }
        // `ids()` rather than `1..len()`: ids are not contiguous once the
        // table carries a parallel-worker shard.
        let ids: Vec<SymbolId> = ctx.symbols.ids().collect();
        for id in ids {
            let info = ctx.symbols.sym(id).info.clone();
            let stripped = strip(&info);
            if stripped != info {
                ctx.symbols.sym_mut(id).info = stripped;
            }
        }
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        // The tree type of `fun` still carries the pre-sweep signature.
        let Type::Method { params, ret } = fun.tpe() else {
            return tree.clone();
        };
        let Some(ps) = params.first() else {
            return tree.clone();
        };
        let Some(Type::Repeated(elem)) = ps.last() else {
            return tree.clone();
        };
        let fixed = ps.len() - 1;
        let mut new_args: Vec<TreeRef> = args[..fixed.min(args.len())].to_vec();
        let rest: Vec<TreeRef> = args[fixed.min(args.len())..].to_vec();
        // A single argument that is already an array is passed through
        // (`xs: _*` analogue: forwarding a repeated param).
        let wrapped = if rest.len() == 1 && matches!(rest[0].tpe(), Type::Array(_)) {
            rest.into_iter().next().expect("one element")
        } else {
            ctx.mk(
                TreeKind::SeqLiteral {
                    elems: rest.into(),
                    elem_tpe: (**elem).clone(),
                },
                Type::Array(elem.clone()),
                tree.span(),
            )
        };
        new_args.push(wrapped);
        // Retype the function tree with the swept signature.
        let mut new_ps: Vec<Type> = ps[..fixed].to_vec();
        new_ps.push(Type::Array(elem.clone()));
        let new_fun = ctx.retyped(
            fun,
            Type::Method {
                params: vec![new_ps],
                ret: ret.clone(),
            },
        );
        ctx.with_kind(
            tree,
            TreeKind::Apply {
                fun: new_fun,
                args: new_args.into(),
            },
        )
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        fn has_repeated(t: &Type) -> bool {
            match t {
                Type::Repeated(_) => true,
                Type::Method { params, ret } => {
                    params.iter().flatten().any(has_repeated) || has_repeated(ret)
                }
                Type::Poly { underlying, .. } => has_repeated(underlying),
                _ => false,
            }
        }
        if has_repeated(t.tpe()) {
            return Err("repeated parameter type survived ElimRepeated".into());
        }
        Ok(())
    }
}

// ======================= SeqLiterals ===================================

/// Expresses `SeqLiteral`s as explicit array construction (Dotty's
/// `SeqLiterals`): `[e1, e2]` becomes
/// `{ val a = new Array(2); a(0) = e1; a(1) = e2; a }`.
#[derive(Default)]
pub struct SeqLiterals;

impl PhaseInfo for SeqLiterals {
    fn name(&self) -> &str {
        "seqLiterals"
    }
    fn description(&self) -> &str {
        "express vararg arguments as arrays"
    }
}

impl MiniPhase for SeqLiterals {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::SeqLiteral)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["elimRepeated"]
    }

    fn transform_seq_literal(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::SeqLiteral { elems, elem_tpe } = tree.kind() else {
            return tree.clone();
        };
        let arr_t = Type::Array(Box::new(elem_tpe.clone()));
        let owner = ctx.symbols.builtins().root_pkg;
        let name = ctx.fresh_name("seq");
        let arr_sym = ctx
            .symbols
            .new_term(owner, name, Flags::SYNTHETIC, arr_t.clone());
        let new_node = ctx.mk(
            TreeKind::New { tpe: arr_t.clone() },
            arr_t.clone(),
            tree.span(),
        );
        let ctor_t = Type::Method {
            params: vec![vec![Type::Int]],
            ret: Box::new(arr_t.clone()),
        };
        let ctor = ctx.select(new_node, std_names::init(), SymbolId::NONE, ctor_t);
        let len = ctx.lit_int(elems.len() as i64);
        let alloc = ctx.apply(ctor, vec![len], arr_t.clone());
        let val = ctx.val_def(arr_sym, alloc);
        let mut stats = vec![val];
        for (i, e) in elems.iter().enumerate() {
            let a_ref = ctx.ident(arr_sym);
            let upd_t = Type::Method {
                params: vec![vec![Type::Int, elem_tpe.clone()]],
                ret: Box::new(Type::Unit),
            };
            let upd = ctx.select(a_ref, Name::intern("update"), SymbolId::NONE, upd_t);
            let idx = ctx.lit_int(i as i64);
            stats.push(ctx.apply(upd, vec![idx, e.clone()], Type::Unit));
        }
        let result = ctx.ident(arr_sym);
        ctx.mk(
            TreeKind::Block {
                stats: stats.into(),
                expr: result,
            },
            arr_t,
            tree.span(),
        )
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if matches!(t.kind(), TreeKind::SeqLiteral { .. }) {
            return Err("SeqLiteral survived SeqLiterals".into());
        }
        Ok(())
    }
}

// ======================= ExpandPrivate =================================

/// Widens private members that are accessed from other classes after
/// closures/nested classes were lifted (Dotty's `ExpandPrivate`).
#[derive(Default)]
pub struct ExpandPrivate {
    classes: OwnerStack,
}

impl PhaseInfo for ExpandPrivate {
    fn name(&self) -> &str {
        "expandPrivate"
    }
    fn description(&self) -> &str {
        "widen private definitions accessed from other classes"
    }
}

impl MiniPhase for ExpandPrivate {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::Select)
    }

    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn prepare_class_def(&mut self, _ctx: &mut Ctx, tree: &TreeRef) -> bool {
        self.classes.push(tree.def_sym());
        true
    }

    fn finish_prepared(&mut self, _ctx: &mut Ctx, _t: &TreeRef) {
        self.classes.pop();
    }

    fn transform_select(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Select { sym, .. } = tree.kind() else {
            return tree.clone();
        };
        if !sym.exists() {
            return tree.clone();
        }
        let owner = ctx.symbols.enclosing_class(*sym);
        let flags = ctx.symbols.sym(*sym).flags;
        if flags.is(Flags::PRIVATE) && owner != self.classes.current() {
            let f = &mut ctx.symbols.sym_mut(*sym).flags;
            *f = f.without(Flags::PRIVATE) | Flags::NOT_PRIVATE_ANYMORE;
        }
        tree.clone()
    }
}

// ======================= Flatten ======================================

/// Lifts nested classes to package scope (Dotty's `Flatten`), renaming
/// `Inner` to `Outer$Inner`.
#[derive(Default)]
pub struct Flatten {
    pending: Vec<TreeRef>,
}

impl PhaseInfo for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }
    fn description(&self) -> &str {
        "lift all inner classes to package scope"
    }
}

impl MiniPhase for Flatten {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef).with(NodeKind::PackageDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["lambdaLift"]
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        if !body
            .iter()
            .any(|m| matches!(m.kind(), TreeKind::ClassDef { .. }))
        {
            return tree.clone();
        }
        let outer_name = ctx.symbols.sym(*sym).name;
        let mut kept = Vec::new();
        for m in body {
            if let TreeKind::ClassDef { sym: inner, .. } = m.kind() {
                let pkg = ctx.symbols.builtins().root_pkg;
                let inner_name = ctx.symbols.sym(*inner).name;
                let flat = Name::intern(&format!("{outer_name}${inner_name}"));
                {
                    let d = ctx.symbols.sym_mut(*inner);
                    d.name = flat;
                    d.owner = pkg;
                }
                self.pending.push(m.clone());
            } else {
                kept.push(m.clone());
            }
        }
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: *sym,
                body: kept.into(),
            },
        )
    }

    fn transform_package_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        if self.pending.is_empty() {
            return tree.clone();
        }
        let TreeKind::PackageDef { pkg, stats } = tree.kind() else {
            return tree.clone();
        };
        let mut new_stats = stats.clone();
        new_stats.extend(self.pending.drain(..));
        ctx.with_kind(
            tree,
            TreeKind::PackageDef {
                pkg: *pkg,
                stats: new_stats,
            },
        )
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if let TreeKind::ClassDef { body, .. } = t.kind() {
            if body
                .iter()
                .any(|m| matches!(m.kind(), TreeKind::ClassDef { .. }))
            {
                return Err("nested class survived Flatten".into());
            }
        }
        Ok(())
    }
}

// ======================= RestoreScopes =================================

/// Repairs owner links and declaration scopes invalidated by phases that
/// moved definitions (Dotty's `RestoreScopes`).
#[derive(Default)]
pub struct RestoreScopes;

impl PhaseInfo for RestoreScopes {
    fn name(&self) -> &str {
        "restoreScopes"
    }
    fn description(&self) -> &str {
        "repair scopes rendered invalid by moving definitions"
    }
}

impl MiniPhase for RestoreScopes {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef).with(NodeKind::PackageDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["flatten"]
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        let mut decls = Vec::new();
        for m in body {
            let d = m.def_sym();
            if d.exists() {
                ctx.symbols.sym_mut(d).owner = *sym;
                if !decls.contains(&d) {
                    decls.push(d);
                }
            }
        }
        ctx.symbols.sym_mut(*sym).decls = decls;
        tree.clone()
    }

    fn transform_package_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::PackageDef { pkg, stats } = tree.kind() else {
            return tree.clone();
        };
        for s in stats {
            let d = s.def_sym();
            if d.exists() {
                ctx.symbols.sym_mut(d).owner = *pkg;
                if ctx.symbols.decl(*pkg, ctx.symbols.sym(d).name) != Some(d) {
                    let already = ctx.symbols.sym(*pkg).decls.contains(&d);
                    if !already {
                        ctx.symbols.sym_mut(*pkg).decls.push(d);
                    }
                }
            }
        }
        tree.clone()
    }

    fn check_post_condition(&self, ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if let TreeKind::ClassDef { sym, body } = t.kind() {
            for m in body {
                let d = m.def_sym();
                if d.exists() && ctx.symbols.sym(d).owner != *sym {
                    return Err(format!(
                        "member `{}` not owned by its class after RestoreScopes",
                        ctx.symbols.full_name(d)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Tracks per-method signature rewrites keyed by symbol (shared by phases
/// that change signatures during their symbol sweep and later need the
/// original shape at call sites).
#[derive(Default, Debug)]
pub struct SigMemo {
    map: HashMap<SymbolId, Type>,
}

impl SigMemo {
    /// Records `sym`'s pre-rewrite info.
    pub fn remember(&mut self, sym: SymbolId, original: Type) {
        self.map.insert(sym, original);
    }

    /// The recorded original info, if any.
    pub fn original(&self, sym: SymbolId) -> Option<&Type> {
        self.map.get(&sym)
    }
}

/// True for symbols that `Getters` turns into accessors: concrete,
/// non-private, non-parameter, immutable, term members of a class.
pub fn is_accessorable(ctx: &Ctx, sym: SymbolId) -> bool {
    if !sym.exists() {
        return false;
    }
    let d = ctx.symbols.sym(sym);
    d.kind == SymKind::Term
        && !d
            .flags
            .is_any(Flags::METHOD | Flags::PARAM | Flags::PRIVATE | Flags::MUTABLE | Flags::FIELD)
        && ctx.symbols.sym(d.owner).kind == SymKind::Class
        && d.owner != ctx.symbols.builtins().any_class
}
