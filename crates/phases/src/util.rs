//! Shared helpers for concrete Miniphases.

use mini_ir::{Ctx, SymbolId, TreeKind, TreeRef};

/// Rewrites identifier/`this` references throughout a tree.
///
/// `f` is consulted for every `Ident` and `This` node; returning `Some`
/// replaces that node (children of replaced nodes are not revisited). Used by
/// `LambdaLift` to redirect captured variables into closure fields.
pub fn rewrite_refs(
    ctx: &mut Ctx,
    t: &TreeRef,
    f: &mut dyn FnMut(&mut Ctx, &TreeRef) -> Option<TreeRef>,
) -> TreeRef {
    match t.kind() {
        TreeKind::Ident { .. } | TreeKind::This { .. } => {
            if let Some(r) = f(ctx, t) {
                return r;
            }
            t.clone()
        }
        _ => ctx.map_children(t, &mut |ctx, c| rewrite_refs(ctx, c, f)),
    }
}

/// A stack of enclosing definitions maintained through prepare hooks; used by
/// phases that need to know the current class or method (`LiftTry`,
/// `ExplicitOuter`, `PatternMatcher`, ...).
#[derive(Default, Debug)]
pub struct OwnerStack {
    stack: Vec<SymbolId>,
}

impl OwnerStack {
    /// Pushes an owner on entry to its subtree.
    pub fn push(&mut self, sym: SymbolId) {
        self.stack.push(sym);
    }

    /// Pops on exit.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// The innermost owner, or `NONE`.
    pub fn current(&self) -> SymbolId {
        self.stack.last().copied().unwrap_or(SymbolId::NONE)
    }

    /// The innermost owner satisfying `pred`.
    pub fn find(&self, pred: impl Fn(SymbolId) -> bool) -> SymbolId {
        self.stack
            .iter()
            .rev()
            .copied()
            .find(|&s| pred(s))
            .unwrap_or(SymbolId::NONE)
    }

    /// All entries, outermost first.
    pub fn entries(&self) -> &[SymbolId] {
        &self.stack
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_ir::{Flags, Name, Type};

    #[test]
    fn rewrite_refs_replaces_idents() {
        let mut ctx = Ctx::new();
        let root = ctx.symbols.builtins().root_pkg;
        let x = ctx
            .symbols
            .new_term(root, Name::from("x"), Flags::EMPTY, Type::Int);
        let ix = ctx.ident(x);
        let one = ctx.lit_int(1);
        let blk = ctx.block(vec![one], ix);
        let out = rewrite_refs(&mut ctx, &blk, &mut |ctx, t| {
            if t.ref_sym() == x {
                Some(ctx.lit_int(99))
            } else {
                None
            }
        });
        let mut found = false;
        mini_ir::visit::for_each_subtree(&out, &mut |s| {
            if let TreeKind::Literal { value } = s.kind() {
                if value.as_int() == Some(99) {
                    found = true;
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn owner_stack_find() {
        let mut s = OwnerStack::default();
        assert!(s.current().is_none());
        s.push(SymbolId::from_index(3));
        s.push(SymbolId::from_index(5));
        assert_eq!(s.current(), SymbolId::from_index(5));
        assert_eq!(s.find(|x| x.index() == 3), SymbolId::from_index(3));
        s.pop();
        assert_eq!(s.current(), SymbolId::from_index(3));
    }
}
