//! Field-related Miniphases: `Getters`, `LazyVals` and `Memoize` — the
//! trio that the scalac `fields` megaphase fused by hand (§2.1) and Dotty
//! keeps as three independent Miniphases.

use crate::simple::is_accessorable;
use mini_ir::{
    Constant, Ctx, Flags, NodeKind, NodeKindSet, SymKind, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};

// ======================= Getters ======================================

/// Replaces non-private immutable class-member values with getter defs
/// (Dotty's `Getters`); the backing fields are added later by `Memoize`.
#[derive(Default)]
pub struct Getters;

impl PhaseInfo for Getters {
    fn name(&self) -> &str {
        "getters"
    }
    fn description(&self) -> &str {
        "replace non-private vals with getter defs (fields are added later)"
    }
}

/// True if the select must become a getter application — either the symbol
/// is still a plain value member (this phase has not yet seen its ValDef) or
/// it was already converted to an accessor method.
fn reads_through_getter(ctx: &Ctx, sym: SymbolId) -> bool {
    if is_accessorable(ctx, sym) {
        return true;
    }
    if !sym.exists() {
        return false;
    }
    let d = ctx.symbols.sym(sym);
    d.flags.is(Flags::METHOD | Flags::ACCESSOR)
}

impl MiniPhase for Getters {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ValDef).with(NodeKind::Select)
    }

    fn transform_val_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ValDef { sym, rhs } = tree.kind() else {
            return tree.clone();
        };
        if !is_accessorable(ctx, *sym) {
            return tree.clone();
        }
        let value_t = ctx.symbols.sym(*sym).info.clone();
        {
            let d = ctx.symbols.sym_mut(*sym);
            d.flags |= Flags::METHOD | Flags::ACCESSOR;
            d.info = Type::Method {
                params: vec![vec![]],
                ret: Box::new(value_t),
            };
        }
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: vec![vec![]],
                rhs: rhs.clone(),
            },
        )
    }

    fn transform_select(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Select { qual, name, sym } = tree.kind() else {
            return tree.clone();
        };
        if !reads_through_getter(ctx, *sym) {
            return tree.clone();
        }
        let value_t = tree.tpe().clone();
        // A select that is already the function of an accessor Apply was
        // produced by this phase or a later reference; bare value reads are
        // distinguishable because their type is the *value* type.
        if matches!(value_t, Type::Method { .. }) {
            return tree.clone();
        }
        let getter_t = Type::Method {
            params: vec![vec![]],
            ret: Box::new(value_t.clone()),
        };
        let sel = ctx.select(qual.clone(), *name, *sym, getter_t);
        ctx.apply(sel, vec![], value_t)
    }

    fn check_post_condition(&self, ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        // No bare value-typed selection of an accessorable member remains.
        if let TreeKind::Select { sym, .. } = t.kind() {
            if is_accessorable(ctx, *sym) {
                return Err(format!(
                    "member value `{}` read without a getter",
                    ctx.symbols.full_name(*sym)
                ));
            }
        }
        Ok(())
    }
}

// ======================= LazyVals ====================================

/// Expands lazy vals (Dotty's `LazyVals`): a lazy accessor gets a value
/// field and an initialization flag field, and its body becomes the
/// check-compute-cache sequence. Local lazy vals become nested defs.
#[derive(Default)]
pub struct LazyVals {
    /// Field declarations to add per enclosing class.
    pending_fields: Vec<(SymbolId, TreeRef)>,
}

impl PhaseInfo for LazyVals {
    fn name(&self) -> &str {
        "lazyVals"
    }
    fn description(&self) -> &str {
        "expand lazy vals"
    }
}

impl LazyVals {
    fn expand_member(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::DefDef { sym, paramss, rhs } = tree.kind() else {
            return tree.clone();
        };
        let d = ctx.symbols.sym(*sym);
        if !d.flags.is(Flags::LAZY) || rhs.is_empty_tree() {
            return tree.clone();
        }
        let cls = d.owner;
        let name = d.name;
        let value_t = d.info.final_result().clone();
        // Fields.
        let value_f = ctx.symbols.new_term(
            cls,
            mini_ir::Name::intern(&format!("{name}$lzy")),
            Flags::FIELD | Flags::MUTABLE | Flags::SYNTHETIC,
            value_t.clone(),
        );
        let flag_f = ctx.symbols.new_term(
            cls,
            mini_ir::Name::intern(&format!("{name}$flag")),
            Flags::FIELD | Flags::MUTABLE | Flags::SYNTHETIC,
            Type::Boolean,
        );
        {
            let dm = ctx.symbols.sym_mut(*sym);
            dm.flags = dm.flags.without(Flags::LAZY | Flags::ACCESSOR);
        }
        let e1 = ctx.empty();
        self.pending_fields.push((cls, ctx.val_def(value_f, e1)));
        let false_lit = ctx.lit_bool(false);
        self.pending_fields
            .push((cls, ctx.val_def(flag_f, false_lit)));
        // Body: if (!this.flag) { this.value = rhs; this.flag = true };
        //       this.value
        let this1 = ctx.this_mono(cls);
        let flag_read = ctx.select(this1, ctx.symbols.sym(flag_f).name, flag_f, Type::Boolean);
        let not_t = Type::Method {
            params: vec![vec![]],
            ret: Box::new(Type::Boolean),
        };
        let not_sel = ctx.select(flag_read, mini_ir::Name::intern("!"), SymbolId::NONE, not_t);
        let cond = ctx.apply(not_sel, vec![], Type::Boolean);

        let this2 = ctx.this_mono(cls);
        let value_lhs = ctx.select(
            this2,
            ctx.symbols.sym(value_f).name,
            value_f,
            value_t.clone(),
        );
        let set_value = ctx.mk(
            TreeKind::Assign {
                lhs: value_lhs,
                rhs: rhs.clone(),
            },
            Type::Unit,
            tree.span(),
        );
        let this3 = ctx.this_mono(cls);
        let flag_lhs = ctx.select(this3, ctx.symbols.sym(flag_f).name, flag_f, Type::Boolean);
        let true_lit = ctx.lit_bool(true);
        let set_flag = ctx.mk(
            TreeKind::Assign {
                lhs: flag_lhs,
                rhs: true_lit,
            },
            Type::Unit,
            tree.span(),
        );
        let unit1 = ctx.lit_unit();
        let then_b = ctx.block(vec![set_value, set_flag], unit1);
        let empty = ctx.empty();
        let check = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: then_b,
                else_branch: empty,
            },
            Type::Unit,
            tree.span(),
        );
        let this4 = ctx.this_mono(cls);
        let read = ctx.select(
            this4,
            ctx.symbols.sym(value_f).name,
            value_f,
            value_t.clone(),
        );
        let body = ctx.mk(
            TreeKind::Block {
                stats: [check].into(),
                expr: read,
            },
            value_t,
            tree.span(),
        );
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: paramss.clone(),
                rhs: body,
            },
        )
    }
}

impl MiniPhase for LazyVals {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef)
            .with(NodeKind::ClassDef)
            .with(NodeKind::Block)
            .with(NodeKind::Ident)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["mixin"]
    }

    fn transform_def_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        // Member lazy accessors were produced by Getters; locals are handled
        // in transform_block.
        let sym = tree.def_sym();
        if sym.exists() && ctx.symbols.sym(ctx.symbols.sym(sym).owner).kind == SymKind::Class {
            return self.expand_member(ctx, tree);
        }
        tree.clone()
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        if self.pending_fields.iter().all(|(c, _)| c != sym) {
            return tree.clone();
        }
        let mut new_body = body.clone();
        self.pending_fields.retain(|(c, f)| {
            if c == sym {
                new_body.push(f.clone());
                false
            } else {
                true
            }
        });
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: *sym,
                body: new_body,
            },
        )
    }

    fn transform_block(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        // Local lazy vals: `lazy val x: T = rhs` becomes
        // `var x$flag = false; var x$v: T = null; def x(): T = {...}` and
        // uses become `x()` (see transform_ident).
        let TreeKind::Block { stats, expr } = tree.kind() else {
            return tree.clone();
        };
        if !stats.iter().any(|s| {
            let d = s.def_sym();
            matches!(s.kind(), TreeKind::ValDef { .. })
                && d.exists()
                && ctx.symbols.sym(d).flags.is(Flags::LAZY)
        }) {
            return tree.clone();
        }
        let mut new_stats = Vec::with_capacity(stats.len() + 2);
        for s in stats {
            let d = s.def_sym();
            let is_lazy_local = matches!(s.kind(), TreeKind::ValDef { .. })
                && d.exists()
                && ctx.symbols.sym(d).flags.is(Flags::LAZY);
            if !is_lazy_local {
                new_stats.push(s.clone());
                continue;
            }
            let TreeKind::ValDef { sym, rhs } = s.kind() else {
                unreachable!("checked above")
            };
            let owner = ctx.symbols.sym(*sym).owner;
            let name = ctx.symbols.sym(*sym).name;
            let value_t = ctx.symbols.sym(*sym).info.clone();
            let flag_sym = ctx.symbols.new_term(
                owner,
                mini_ir::Name::intern(&format!("{name}$flag")),
                Flags::MUTABLE | Flags::SYNTHETIC,
                Type::Boolean,
            );
            let value_sym = ctx.symbols.new_term(
                owner,
                mini_ir::Name::intern(&format!("{name}$lzy")),
                Flags::MUTABLE | Flags::SYNTHETIC,
                value_t.clone(),
            );
            {
                let dm = ctx.symbols.sym_mut(*sym);
                dm.flags = dm.flags.without(Flags::LAZY) | Flags::METHOD | Flags::SYNTHETIC;
                dm.info = Type::Method {
                    params: vec![vec![]],
                    ret: Box::new(value_t.clone()),
                };
            }
            let f = ctx.lit_bool(false);
            new_stats.push(ctx.val_def(flag_sym, f));
            let n = ctx.lit(Constant::Null, s.span());
            new_stats.push(ctx.val_def(value_sym, n));
            // def x(): T = { if (!flag) { value = rhs; flag = true }; value }
            let flag_read = ctx.ident(flag_sym);
            let not_t = Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Boolean),
            };
            let not_sel = ctx.select(flag_read, mini_ir::Name::intern("!"), SymbolId::NONE, not_t);
            let cond = ctx.apply(not_sel, vec![], Type::Boolean);
            let v_lhs = ctx.ident(value_sym);
            let set_v = ctx.mk(
                TreeKind::Assign {
                    lhs: v_lhs,
                    rhs: rhs.clone(),
                },
                Type::Unit,
                s.span(),
            );
            let f_lhs = ctx.ident(flag_sym);
            let t_lit = ctx.lit_bool(true);
            let set_f = ctx.mk(
                TreeKind::Assign {
                    lhs: f_lhs,
                    rhs: t_lit,
                },
                Type::Unit,
                s.span(),
            );
            let u = ctx.lit_unit();
            let then_b = ctx.block(vec![set_v, set_f], u);
            let e = ctx.empty();
            let check = ctx.mk(
                TreeKind::If {
                    cond,
                    then_branch: then_b,
                    else_branch: e,
                },
                Type::Unit,
                s.span(),
            );
            let read = ctx.ident(value_sym);
            let body = ctx.mk(
                TreeKind::Block {
                    stats: [check].into(),
                    expr: read,
                },
                value_t,
                s.span(),
            );
            new_stats.push(ctx.mk(
                TreeKind::DefDef {
                    sym: *sym,
                    paramss: vec![vec![]],
                    rhs: body,
                },
                Type::Unit,
                s.span(),
            ));
        }
        ctx.with_kind(
            tree,
            TreeKind::Block {
                stats: new_stats.into(),
                expr: expr.clone(),
            },
        )
    }

    fn transform_ident(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        // A use of a local lazy val forces the generated def. Decidable from
        // the tree: the symbol is (or will be) a nullary method while the
        // reference is still value-typed.
        let TreeKind::Ident { sym } = tree.kind() else {
            return tree.clone();
        };
        if !sym.exists() {
            return tree.clone();
        }
        let d = ctx.symbols.sym(*sym);
        let lazy_now = d.flags.is(Flags::LAZY) && !d.flags.is(Flags::PARAM);
        let lazified = d.flags.is(Flags::METHOD | Flags::SYNTHETIC)
            && matches!(tree.tpe(), t if !t.is_method_like());
        if !(lazy_now || (lazified && matches!(d.info, Type::Method { .. }))) {
            return tree.clone();
        }
        if matches!(tree.tpe(), Type::Method { .. }) {
            return tree.clone();
        }
        let value_t = tree.tpe().clone();
        let m_t = Type::Method {
            params: vec![vec![]],
            ret: Box::new(value_t.clone()),
        };
        let f = ctx.retyped(tree, m_t);
        ctx.apply(f, vec![], value_t)
    }
}

// ======================= Memoize ======================================

/// Adds backing fields to getters (Dotty's `Memoize`): an accessor
/// `def x(): T = rhs` becomes a field declaration plus an initializer (later
/// moved into the constructor by `Constructors`), and the accessor body
/// becomes a field read.
#[derive(Default)]
pub struct Memoize;

impl PhaseInfo for Memoize {
    fn name(&self) -> &str {
        "memoize"
    }
    fn description(&self) -> &str {
        "add private fields to getters"
    }
}

impl MiniPhase for Memoize {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::ClassDef)
    }

    fn runs_after(&self) -> Vec<&'static str> {
        vec!["lazyVals"]
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        let cls = *sym;
        let needs = body.iter().any(|m| {
            let d = m.def_sym();
            matches!(m.kind(), TreeKind::DefDef { rhs, .. } if !rhs.is_empty_tree())
                && d.exists()
                && ctx.symbols.sym(d).flags.is(Flags::ACCESSOR)
        });
        if !needs {
            return tree.clone();
        }
        let mut new_body = Vec::with_capacity(body.len() + 2);
        for m in body {
            let d = m.def_sym();
            let is_accessor = d.exists() && ctx.symbols.sym(d).flags.is(Flags::ACCESSOR);
            match m.kind() {
                TreeKind::DefDef { sym, paramss, rhs } if is_accessor && !rhs.is_empty_tree() => {
                    let name = ctx.symbols.sym(*sym).name;
                    let value_t = ctx.symbols.sym(*sym).info.final_result().clone();
                    let field = ctx.symbols.new_term(
                        cls,
                        mini_ir::Name::intern(&format!("{name}$field")),
                        Flags::FIELD | Flags::PRIVATE | Flags::MUTABLE | Flags::SYNTHETIC,
                        value_t.clone(),
                    );
                    // Initializer in declaration order; Constructors moves it
                    // into <init>.
                    new_body.push(ctx.val_def(field, rhs.clone()));
                    let this = ctx.this_mono(cls);
                    let read = ctx.select(this, ctx.symbols.sym(field).name, field, value_t);
                    new_body.push(ctx.mk(
                        TreeKind::DefDef {
                            sym: *sym,
                            paramss: paramss.clone(),
                            rhs: read,
                        },
                        Type::Unit,
                        m.span(),
                    ));
                }
                _ => new_body.push(m.clone()),
            }
        }
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: cls,
                body: new_body.into(),
            },
        )
    }

    fn check_post_condition(&self, ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        // Accessors hold no computation anymore: their body is a field read.
        if let TreeKind::DefDef { sym, rhs, .. } = t.kind() {
            if sym.exists()
                && ctx.symbols.sym(*sym).flags.is(Flags::ACCESSOR)
                && !rhs.is_empty_tree()
                && !matches!(rhs.kind(), TreeKind::Select { .. })
            {
                return Err(format!(
                    "accessor `{}` still computes its value after Memoize",
                    ctx.symbols.full_name(*sym)
                ));
            }
        }
        Ok(())
    }
}
