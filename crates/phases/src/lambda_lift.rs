//! `LambdaLift` — lifts nested functions to class scope and converts
//! lambdas to closure classes.
//!
//! * **Local defs** (including the `case$n` defs from `PatternMatcher` and
//!   the `liftedTry$n` defs from `LiftTry`) get their captured locals
//!   prepended as parameters — reusing the captured symbols themselves, so
//!   bodies need no rewriting — and are hoisted into the enclosing class
//!   (as methods) or to the top level (as statics). Capture sets are
//!   computed in `prepare_unit` with a fix-point over local call edges.
//! * **Lambdas** become top-level closure classes extending the appropriate
//!   `FunctionN` trait, with one field per captured variable (plus `$this`
//!   when the body uses the enclosing instance) and an `apply` method.
//!   Capture sets for lambdas are computed on demand from the
//!   already-transformed body, which makes nested closures compose.

use crate::util::rewrite_refs;
use mini_ir::{
    std_names, Ctx, Flags, Name, NodeKind, NodeKindSet, SymKind, SymbolId, TreeKind, TreeRef, Type,
};
use miniphase::{MiniPhase, PhaseInfo};
use std::collections::{HashMap, HashSet};

/// The lambda-lifting phase.
#[derive(Default)]
pub struct LambdaLift {
    /// Capture list per local def (ordered, deduplicated).
    captures: HashMap<SymbolId, Vec<SymbolId>>,
    /// Local defs discovered in the unit.
    local_defs: HashSet<SymbolId>,
    /// Hoisted definitions awaiting re-attachment: (target class or NONE for
    /// top level, tree).
    pending: Vec<(SymbolId, TreeRef)>,
    anon_counter: u32,
}

fn is_local_value(ctx: &Ctx, sym: SymbolId) -> bool {
    sym.exists() && {
        let d = ctx.symbols.sym(sym);
        d.kind == SymKind::Term
            && !d.flags.is(Flags::METHOD)
            && ctx.symbols.sym(d.owner).kind == SymKind::Term
    }
}

impl PhaseInfo for LambdaLift {
    fn name(&self) -> &str {
        "lambdaLift"
    }
    fn description(&self) -> &str {
        "lift nested functions to class scope, storing free variables in environments"
    }
}

impl LambdaLift {
    /// Free-variable and call-edge analysis over the (not yet transformed)
    /// unit tree.
    fn analyze(&mut self, ctx: &mut Ctx, unit_tree: &TreeRef) {
        #[derive(Default)]
        struct St {
            /// Stack of enclosing functions: local-def symbol, or NONE for
            /// lambdas and non-local defs.
            defs: Vec<SymbolId>,
            /// Syms defined per stack entry.
            defined: Vec<HashSet<SymbolId>>,
            refs: HashMap<SymbolId, Vec<SymbolId>>, // def -> referenced outer locals
            calls: Vec<(Vec<SymbolId>, SymbolId)>,  // (enclosing defs innermost-first, callee)
            local_defs: HashSet<SymbolId>,
            /// The innermost enclosing *local def* frame at each local's
            /// definition site (NONE when defined in a lambda or at method
            /// top level). Symbol owners are unreliable here: phases like
            /// PatternMatcher create locals owned by the method even though
            /// they live inside generated case defs.
            def_home: HashMap<SymbolId, SymbolId>,
        }
        fn note_defined(st: &mut St, sym: SymbolId) {
            if let Some(d) = st.defined.last_mut() {
                d.insert(sym);
            }
            let home = st
                .defs
                .iter()
                .rev()
                .copied()
                .find(|s| s.exists())
                .unwrap_or(SymbolId::NONE);
            st.def_home.insert(sym, home);
        }
        fn mark(st: &mut St, ctx: &Ctx, v: SymbolId) {
            if !is_local_value(ctx, v) {
                return;
            }
            // Walk inward from the definition point: every local def between
            // the defining frame and the use references v freely.
            for i in (0..st.defs.len()).rev() {
                if st.defined[i].contains(&v) {
                    break;
                }
                let d = st.defs[i];
                if d.exists() {
                    let list = st.refs.entry(d).or_default();
                    if !list.contains(&v) {
                        list.push(v);
                    }
                }
            }
        }
        fn walk(st: &mut St, ctx: &Ctx, t: &TreeRef) {
            match t.kind() {
                TreeKind::DefDef { sym, paramss, rhs } => {
                    let local = ctx.symbols.sym(ctx.symbols.sym(*sym).owner).kind == SymKind::Term;
                    if local {
                        st.local_defs.insert(*sym);
                    }
                    st.defs.push(if local { *sym } else { SymbolId::NONE });
                    st.defined.push(HashSet::new());
                    for p in paramss.iter().flatten() {
                        let ps = p.def_sym();
                        note_defined(st, ps);
                        // Params of this def belong to this frame even
                        // through def_home.
                        if local {
                            st.def_home.insert(ps, *sym);
                        }
                    }
                    walk(st, ctx, rhs);
                    st.defined.pop();
                    st.defs.pop();
                }
                TreeKind::Lambda { params, body } => {
                    st.defs.push(SymbolId::NONE);
                    st.defined.push(HashSet::new());
                    for p in params {
                        let ps = p.def_sym();
                        note_defined(st, ps);
                        st.def_home.insert(ps, SymbolId::NONE);
                    }
                    walk(st, ctx, body);
                    st.defined.pop();
                    st.defs.pop();
                }
                TreeKind::ValDef { sym, rhs } => {
                    walk(st, ctx, rhs);
                    note_defined(st, *sym);
                }
                TreeKind::Bind { sym, pat } => {
                    walk(st, ctx, pat);
                    note_defined(st, *sym);
                }
                TreeKind::Ident { sym } => {
                    mark(st, ctx, *sym);
                }
                TreeKind::Apply { fun, args } => {
                    if let TreeKind::Ident { sym } = fun.kind() {
                        let owner = ctx.symbols.sym(*sym).owner;
                        if owner.exists() && ctx.symbols.sym(owner).kind == SymKind::Term {
                            let chain: Vec<SymbolId> = st
                                .defs
                                .iter()
                                .rev()
                                .copied()
                                .filter(|s| s.exists())
                                .collect();
                            st.calls.push((chain, *sym));
                        }
                    }
                    walk(st, ctx, fun);
                    for a in args {
                        walk(st, ctx, a);
                    }
                }
                _ => t.for_each_child(&mut |c| walk(st, ctx, c)),
            }
        }
        let mut st = St::default();
        walk(&mut st, ctx, unit_tree);

        // Fix-point: propagate callee captures to callers, stopping at the
        // frame that actually defines the variable.
        loop {
            let mut changed = false;
            for (chain, callee) in &st.calls {
                let Some(callee_refs) = st.refs.get(callee).cloned() else {
                    continue;
                };
                for v in callee_refs {
                    let home = st.def_home.get(&v).copied().unwrap_or(SymbolId::NONE);
                    for d in chain {
                        if *d == home {
                            break;
                        }
                        if *d == *callee {
                            continue;
                        }
                        let list = st.refs.entry(*d).or_default();
                        if !list.contains(&v) {
                            list.push(v);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Final capture lists: referenced locals not defined in the def
        // itself.
        for d in &st.local_defs {
            let list: Vec<SymbolId> = st
                .refs
                .get(d)
                .map(|l| {
                    l.iter()
                        .copied()
                        .filter(|v| st.def_home.get(v) != Some(d))
                        .collect()
                })
                .unwrap_or_default();
            self.captures.insert(*d, list);
        }
        self.local_defs.extend(st.local_defs.iter().copied());
        // Extend signatures now, so both call sites and definitions agree.
        for d in &st.local_defs {
            let caps = self.captures.get(d).cloned().unwrap_or_default();
            if caps.is_empty() {
                continue;
            }
            let info = ctx.symbols.sym(*d).info.clone();
            if let Type::Method { params, ret } = info {
                let mut ps = params;
                let cap_types: Vec<Type> = caps
                    .iter()
                    .map(|&v| ctx.symbols.sym(v).info.clone())
                    .collect();
                if let Some(first) = ps.first_mut() {
                    let mut new_first = cap_types;
                    new_first.extend(first.iter().cloned());
                    *first = new_first;
                } else {
                    ps.push(cap_types);
                }
                ctx.symbols.sym_mut(*d).info = Type::Method { params: ps, ret };
            }
        }
    }

    /// Scans an already-transformed lambda body for captured locals and
    /// `this` references.
    fn scan_lambda(
        &self,
        ctx: &Ctx,
        params: &[TreeRef],
        body: &TreeRef,
    ) -> (Vec<SymbolId>, Option<SymbolId>) {
        let mut defined: HashSet<SymbolId> = params.iter().map(|p| p.def_sym()).collect();
        let mut free: Vec<SymbolId> = Vec::new();
        let mut this_cls: Option<SymbolId> = None;
        mini_ir::visit::for_each_subtree(body, &mut |t| match t.kind() {
            TreeKind::ValDef { sym, .. } | TreeKind::Bind { sym, .. } => {
                defined.insert(*sym);
            }
            TreeKind::DefDef { sym, paramss, .. } => {
                defined.insert(*sym);
                for p in paramss.iter().flatten() {
                    defined.insert(p.def_sym());
                }
            }
            TreeKind::Lambda { params, .. } => {
                for p in params {
                    defined.insert(p.def_sym());
                }
            }
            TreeKind::Ident { sym } if is_local_value(ctx, *sym) && !free.contains(sym) => {
                free.push(*sym);
            }
            TreeKind::This { cls } => {
                this_cls = Some(*cls);
            }
            _ => {}
        });
        // `defined` fills in post-order, so filter afterwards.
        free.retain(|v| !defined.contains(v));
        (free, this_cls)
    }
}

impl MiniPhase for LambdaLift {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::of(NodeKind::DefDef)
            .with(NodeKind::Apply)
            .with(NodeKind::Block)
            .with(NodeKind::Lambda)
            .with(NodeKind::ClassDef)
            .with(NodeKind::PackageDef)
    }

    fn runs_after_groups_of(&self) -> Vec<&'static str> {
        vec!["constructors"]
    }

    fn prepare_unit(&mut self, ctx: &mut Ctx, unit_tree: &TreeRef) {
        // Anon-class numbering restarts per unit so a unit's lifted-closure
        // names depend only on its own lambdas, never on how many closures
        // *earlier* units lifted — the self-containment that unit-level
        // parallel compilation requires (names may repeat across units;
        // symbols stay distinct and lookup is by id).
        self.anon_counter = 0;
        self.analyze(ctx, unit_tree);
    }

    fn transform_def_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::DefDef { sym, paramss, rhs } = tree.kind() else {
            return tree.clone();
        };
        if !self.local_defs.contains(sym) {
            return tree.clone();
        }
        let caps = self.captures.get(sym).cloned().unwrap_or_default();
        let mut first: Vec<TreeRef> = caps
            .iter()
            .map(|&v| {
                let e = ctx.empty();
                ctx.mk(TreeKind::ValDef { sym: v, rhs: e }, Type::Unit, tree.span())
            })
            .collect();
        if let Some(old_first) = paramss.first() {
            first.extend(old_first.iter().cloned());
        }
        ctx.symbols.sym_mut(*sym).flags |= Flags::LIFTED;
        ctx.with_kind(
            tree,
            TreeKind::DefDef {
                sym: *sym,
                paramss: vec![first],
                rhs: rhs.clone(),
            },
        )
    }

    fn transform_apply(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Apply { fun, args } = tree.kind() else {
            return tree.clone();
        };
        let TreeKind::Ident { sym } = fun.kind() else {
            return tree.clone();
        };
        if !self.local_defs.contains(sym) {
            return tree.clone();
        }
        let caps = self.captures.get(sym).cloned().unwrap_or_default();
        let mut new_args: Vec<TreeRef> = caps.iter().map(|&v| ctx.ident(v)).collect();
        new_args.extend(args.iter().cloned());
        let target = ctx.symbols.enclosing_class(*sym);
        let info = ctx.symbols.sym(*sym).info.clone();
        let new_fun = if target.exists() {
            let this = ctx.this_mono(target);
            let name = ctx.symbols.sym(*sym).name;
            ctx.select(this, name, *sym, info)
        } else {
            ctx.retyped(fun, info)
        };
        ctx.with_kind(
            tree,
            TreeKind::Apply {
                fun: new_fun,
                args: new_args.into(),
            },
        )
    }

    fn transform_block(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Block { stats, expr } = tree.kind() else {
            return tree.clone();
        };
        if !stats.iter().any(|s| {
            let d = s.def_sym();
            matches!(s.kind(), TreeKind::DefDef { .. })
                && d.exists()
                && ctx.symbols.sym(d).flags.is(Flags::LIFTED)
        }) {
            return tree.clone();
        }
        let mut kept = Vec::new();
        for s in stats {
            let d = s.def_sym();
            if matches!(s.kind(), TreeKind::DefDef { .. })
                && d.exists()
                && ctx.symbols.sym(d).flags.is(Flags::LIFTED)
            {
                let target = ctx.symbols.enclosing_class(d);
                if target.exists() {
                    ctx.symbols.sym_mut(d).owner = target;
                } else {
                    let pkg = ctx.symbols.builtins().root_pkg;
                    ctx.symbols.sym_mut(d).owner = pkg;
                }
                self.pending.push((target, s.clone()));
            } else {
                kept.push(s.clone());
            }
        }
        ctx.with_kind(
            tree,
            TreeKind::Block {
                stats: kept.into(),
                expr: expr.clone(),
            },
        )
    }

    fn transform_lambda(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::Lambda { params, body } = tree.kind() else {
            return tree.clone();
        };
        let (free, this_cls) = self.scan_lambda(ctx, params, body);
        let pkg = ctx.symbols.builtins().root_pkg;
        self.anon_counter += 1;
        let anon_name = Name::intern(&format!("Anon$fn{}", self.anon_counter));
        let n = params.len().min(3);
        let fn_cls = ctx.symbols.builtins().function_classes[n];
        let parents = vec![Type::AnyRef, ctx.symbols.class_type(fn_cls)];
        let anon = ctx.symbols.new_class(
            pkg,
            anon_name,
            Flags::SYNTHETIC | Flags::FINAL,
            parents,
            vec![],
        );
        // Capture fields.
        let mut field_of: HashMap<SymbolId, SymbolId> = HashMap::new();
        let mut body_defs: Vec<TreeRef> = Vec::new();
        for &v in &free {
            let vt = ctx.symbols.sym(v).info.clone();
            let vname = ctx.symbols.sym(v).name;
            let f = ctx.symbols.new_term(
                anon,
                Name::intern(&format!("{vname}$cap")),
                Flags::MUTABLE | Flags::SYNTHETIC,
                vt,
            );
            let e = ctx.empty();
            body_defs.push(ctx.val_def(f, e));
            field_of.insert(v, f);
        }
        let this_field = this_cls.map(|c| {
            let t = ctx.symbols.class_type(c);
            let f = ctx.symbols.new_term(
                anon,
                Name::intern("$this"),
                Flags::MUTABLE | Flags::SYNTHETIC,
                t,
            );
            let e = ctx.empty();
            body_defs.push(ctx.val_def(f, e));
            f
        });
        // Rewrite captured references in the body.
        let anon_cls = anon;
        let new_body = rewrite_refs(ctx, body, &mut |ctx, t| match t.kind() {
            TreeKind::Ident { sym } => field_of.get(sym).map(|&f| {
                let this = ctx.this_mono(anon_cls);
                let ft = ctx.symbols.sym(f).info.clone();
                let name = ctx.symbols.sym(f).name;
                ctx.select(this, name, f, ft)
            }),
            TreeKind::This { .. } => this_field.map(|f| {
                let this = ctx.this_mono(anon_cls);
                let ft = ctx.symbols.sym(f).info.clone();
                ctx.select(this, Name::intern("$this"), f, ft)
            }),
            _ => None,
        });
        // apply method.
        let param_types: Vec<Type> = params
            .iter()
            .map(|p| ctx.symbols.sym(p.def_sym()).info.clone())
            .collect();
        let apply_sym = ctx.symbols.new_term(
            anon,
            std_names::apply(),
            Flags::METHOD | Flags::SYNTHETIC,
            Type::Method {
                params: vec![param_types],
                ret: Box::new(new_body.tpe().clone()),
            },
        );
        body_defs.push(ctx.mk(
            TreeKind::DefDef {
                sym: apply_sym,
                paramss: vec![params.to_vec()],
                rhs: new_body,
            },
            Type::Unit,
            tree.span(),
        ));
        let class_def = ctx.mk(
            TreeKind::ClassDef {
                sym: anon,
                body: body_defs.into(),
            },
            Type::Unit,
            tree.span(),
        );
        self.pending.push((SymbolId::NONE, class_def));
        // Construction site: allocate, fill capture fields, yield.
        let closure_t = tree.tpe().clone();
        let tmp_name = ctx.fresh_name("closure");
        let tmp = ctx.symbols.new_term(
            pkg,
            tmp_name,
            Flags::SYNTHETIC,
            ctx.symbols.class_type(anon),
        );
        let anon_t = ctx.symbols.class_type(anon);
        let new_node = ctx.mk(
            TreeKind::New {
                tpe: anon_t.clone(),
            },
            anon_t.clone(),
            tree.span(),
        );
        let ctor_m = Type::Method {
            params: vec![vec![]],
            ret: Box::new(Type::Unit),
        };
        let ctor_sel = ctx.select(new_node, std_names::init(), SymbolId::NONE, ctor_m);
        let alloc = ctx.apply(ctor_sel, vec![], anon_t);
        let mut stats = vec![ctx.val_def(tmp, alloc)];
        for &v in &free {
            let f = field_of[&v];
            let tref = ctx.ident(tmp);
            let ft = ctx.symbols.sym(f).info.clone();
            let fname = ctx.symbols.sym(f).name;
            let lhs = ctx.select(tref, fname, f, ft);
            let rhs = ctx.ident(v);
            stats.push(ctx.mk(TreeKind::Assign { lhs, rhs }, Type::Unit, tree.span()));
        }
        if let (Some(f), Some(c)) = (this_field, this_cls) {
            let tref = ctx.ident(tmp);
            let ft = ctx.symbols.sym(f).info.clone();
            let lhs = ctx.select(tref, Name::intern("$this"), f, ft);
            let rhs = ctx.this_mono(c);
            stats.push(ctx.mk(TreeKind::Assign { lhs, rhs }, Type::Unit, tree.span()));
        }
        let result = ctx.ident(tmp);
        let result = ctx.retyped(&result, closure_t.clone());
        ctx.mk(
            TreeKind::Block {
                stats: stats.into(),
                expr: result,
            },
            closure_t,
            tree.span(),
        )
    }

    fn transform_class_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        let TreeKind::ClassDef { sym, body } = tree.kind() else {
            return tree.clone();
        };
        if self.pending.iter().all(|(t, _)| t != sym) {
            return tree.clone();
        }
        let mut new_body = body.clone();
        self.pending.retain(|(t, d)| {
            if t == sym {
                new_body.push(d.clone());
                false
            } else {
                true
            }
        });
        ctx.with_kind(
            tree,
            TreeKind::ClassDef {
                sym: *sym,
                body: new_body,
            },
        )
    }

    fn transform_package_def(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> TreeRef {
        if self.pending.is_empty() {
            return tree.clone();
        }
        let TreeKind::PackageDef { pkg, stats } = tree.kind() else {
            return tree.clone();
        };
        let mut new_stats = stats.clone();
        for (_, d) in self.pending.drain(..) {
            new_stats.push(d);
        }
        ctx.with_kind(
            tree,
            TreeKind::PackageDef {
                pkg: *pkg,
                stats: new_stats,
            },
        )
    }

    fn check_post_condition(&self, _ctx: &Ctx, t: &TreeRef) -> Result<(), String> {
        if matches!(t.kind(), TreeKind::Lambda { .. }) {
            return Err("Lambda survived LambdaLift".into());
        }
        if let TreeKind::Block { stats, .. } = t.kind() {
            if stats
                .iter()
                .any(|s| matches!(s.kind(), TreeKind::DefDef { .. }))
            {
                return Err("local def survived LambdaLift".into());
            }
        }
        Ok(())
    }
}
