//! Opt-in dead-code elimination driven by the dataflow facts.
//!
//! [`Dce`] is a true transform miniphase — the first consumer of the
//! analysis layer that *changes* trees — but it rewrites whole units in
//! [`MiniPhase::transform_unit`] rather than through per-kind hooks, for
//! the same reason the dataflow rules do: liveness and constancy are
//! whole-graph facts, not per-node ones. Because `transform_unit` runs
//! *after* the group's traversal (where the lint prepare hooks fire) and
//! after every member's `prepare_unit`, findings are always computed on
//! the pre-DCE tree in both fused and mega plans — one half of the
//! output-neutrality contract.
//!
//! ## What it eliminates
//!
//! * **Dead stores** — `x = rhs` where the dataflow layer proved no path
//!   reads the stored value ([`crate::dataflow::DceFacts::dead_assigns`])
//!   *and* the right-hand side is pure (a literal, a variable read, or
//!   `this`), so dropping the statement cannot change observable
//!   behaviour. The assignment is replaced by a unit literal carrying the
//!   assignment's type and span.
//! * **Statically dead branches** — `if`/`while` whose condition is a
//!   local bound once to a boolean literal whose binding dominates the
//!   decision ([`crate::dataflow::DceFacts::const_branches`]). An `if`
//!   folds to its taken branch (wrapped in a block keeping the `if`'s
//!   type and span); a never-entered `while` folds to a unit literal.
//!   `while (true)` is never touched. Condition reads are pure by the
//!   [`crate::cfg::CondSource::Var`] construction, so no effects are lost.
//!
//! Rewrites are skipped for synthetic spans (fact tables are span-keyed)
//! and for subtrees whose cached size saturated (the eliminated-node
//! count, surfaced as [`miniphase::ExecStats::nodes_eliminated`], must
//! stay exact). Everything here only ever *shrinks* trees; the
//! output-neutrality property tests pin VM output and findings
//! byte-identical with the phase on and off across every executor mode.

use mini_ir::{Constant, Ctx, Kids, NodeKindSet, Span, Tree, TreeKind, TreeRef};
use miniphase::{MiniPhase, PhaseInfo};

use crate::dataflow::{compute_dce_facts, DceFacts};
use crate::FactCache;

/// The dead-code-elimination phase. Stateless between units apart from
/// the eliminated-node counter the executors drain.
#[derive(Default)]
pub struct Dce {
    eliminated: u64,
    cache: Option<FactCache>,
}

impl Dce {
    /// A DCE phase that first looks for this unit's facts in `cache`
    /// (published by [`crate::Dataflow::sharing_facts`] from the same
    /// fixpoint solve that produced the lint findings) and only computes
    /// them itself on a miss.
    pub fn consuming_facts(cache: FactCache) -> Dce {
        Dce {
            eliminated: 0,
            cache: Some(cache),
        }
    }
}

/// True when evaluating `t` can have no observable effect.
fn is_pure(t: &TreeRef) -> bool {
    matches!(
        t.kind(),
        TreeKind::Literal { .. } | TreeKind::Ident { .. } | TreeKind::This { .. }
    )
}

impl Dce {
    fn unit_lit(ctx: &mut Ctx, of: &TreeRef) -> TreeRef {
        ctx.mk(
            TreeKind::Literal {
                value: Constant::Unit,
            },
            of.tpe().clone(),
            of.span(),
        )
    }

    fn count(&mut self, before: &TreeRef, after: &TreeRef) {
        self.eliminated += u64::from(before.subtree_size().saturating_sub(after.subtree_size()));
    }

    fn rewrite(&mut self, ctx: &mut Ctx, t: &TreeRef, facts: &DceFacts) -> TreeRef {
        let span = t.span();
        let sized = t.subtree_size() < Tree::SIZE_SATURATED && span != Span::SYNTHETIC;
        match t.kind() {
            TreeKind::Assign { lhs, rhs }
                if sized
                    && facts.dead_assigns.contains(&span)
                    && matches!(lhs.kind(), TreeKind::Ident { .. })
                    && is_pure(rhs) =>
            {
                let repl = Self::unit_lit(ctx, t);
                self.count(t, &repl);
                repl
            }
            TreeKind::If {
                then_branch,
                else_branch,
                ..
            } if sized && facts.const_branches.contains_key(&span) => {
                let taken = if facts.const_branches[&span] {
                    then_branch
                } else {
                    else_branch
                };
                let expr = if taken.is_empty_tree() {
                    Self::unit_lit(ctx, t)
                } else {
                    self.rewrite(ctx, taken, facts)
                };
                let repl = ctx.mk(
                    TreeKind::Block {
                        stats: Kids::new(),
                        expr,
                    },
                    t.tpe().clone(),
                    span,
                );
                self.count(t, &repl);
                repl
            }
            TreeKind::While { .. } if sized && facts.const_branches.get(&span) == Some(&false) => {
                let repl = Self::unit_lit(ctx, t);
                self.count(t, &repl);
                repl
            }
            _ => ctx.map_children(t, &mut |ctx, c| self.rewrite(ctx, c, facts)),
        }
    }
}

impl PhaseInfo for Dce {
    fn name(&self) -> &str {
        "dce"
    }
    fn description(&self) -> &str {
        "dead-code elimination from liveness + constancy facts (opt-in)"
    }
}

impl MiniPhase for Dce {
    // Empty masks: like the dataflow rules, the whole-unit rewrite happens
    // in `transform_unit`, not in per-kind hooks, so the phase adds
    // nothing to the group's traversal or pruning masks.
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn transform_unit(&mut self, ctx: &mut Ctx, tree: TreeRef) -> TreeRef {
        let facts = match self.cache.as_ref().and_then(|c| c.take(&tree)) {
            Some(shared) => shared,
            None => std::rc::Rc::new(compute_dce_facts(&ctx.symbols, &tree)),
        };
        if facts.dead_assigns.is_empty() && facts.const_branches.is_empty() {
            return tree;
        }
        self.rewrite(ctx, &tree, &facts)
    }
    fn take_eliminated(&mut self) -> u64 {
        std::mem::take(&mut self.eliminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_ir::{Flags, Name, SymbolId, Type};

    fn sp(a: u32, b: u32) -> Span {
        Span { start: a, end: b }
    }

    fn method(ctx: &mut Ctx, name: &str) -> SymbolId {
        let root = ctx.symbols.builtins().root_pkg;
        ctx.symbols
            .new_term(root, Name::intern(name), Flags::METHOD, Type::Int)
    }

    fn local(ctx: &mut Ctx, owner: SymbolId, name: &str) -> SymbolId {
        ctx.symbols
            .new_term(owner, Name::intern(name), Flags::EMPTY, Type::Int)
    }

    /// var d = 0; d = 1 (dead); d = 2 (live); if (g=false) … ; d
    fn fixture(ctx: &mut Ctx) -> TreeRef {
        let m = method(ctx, "m");
        let d = local(ctx, m, "d");
        let g = local(ctx, m, "g");
        let zero = ctx.lit_int(0);
        let ddecl = ctx.mk(TreeKind::ValDef { sym: d, rhs: zero }, Type::Unit, sp(0, 9));
        let lhs1 = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(10, 11));
        let one = ctx.lit_int(111);
        let dead = ctx.mk(
            TreeKind::Assign {
                lhs: lhs1,
                rhs: one,
            },
            Type::Unit,
            sp(10, 15),
        );
        let lhs2 = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(16, 17));
        let two = ctx.lit_int(222);
        let live = ctx.mk(
            TreeKind::Assign {
                lhs: lhs2,
                rhs: two,
            },
            Type::Unit,
            sp(16, 21),
        );
        let f_lit = ctx.lit(Constant::Bool(false), sp(30, 35));
        let gdecl = ctx.mk(
            TreeKind::ValDef { sym: g, rhs: f_lit },
            Type::Unit,
            sp(22, 36),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: g }, Type::Boolean, sp(41, 42));
        let ten = ctx.lit_int(101);
        let twenty = ctx.lit_int(202);
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: ten,
                else_branch: twenty,
            },
            Type::Int,
            sp(37, 50),
        );
        let d_read = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(51, 52));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![ddecl, dead, live, gdecl, iff]),
                expr: d_read,
            },
            Type::Int,
            sp(0, 53),
        );
        ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 54),
        )
    }

    #[test]
    fn dce_drops_dead_store_and_folds_branch() {
        let mut ctx = Ctx::new();
        let tree = fixture(&mut ctx);
        let before = tree.subtree_size();
        let mut dce = Dce::default();
        let out = dce.transform_unit(&mut ctx, tree);
        let after = out.subtree_size();
        assert!(after < before, "tree must shrink: {before} -> {after}");
        assert_eq!(
            dce.take_eliminated(),
            u64::from(before - after),
            "counter matches the actual shrinkage"
        );
        assert_eq!(dce.take_eliminated(), 0, "counter drains");
        // The dead store's span now holds a unit literal; the live store
        // survives; the if folded to its else branch.
        let printed = mini_ir::printer::print_tree(&out, &ctx.symbols);
        assert!(!printed.contains("111"), "dead store removed: {printed}");
        assert!(printed.contains("222"), "live store kept: {printed}");
        assert!(
            printed.contains("202") && !printed.contains("101"),
            "if folded to else branch: {printed}"
        );
    }

    #[test]
    fn shared_fixpoint_matches_standalone_passes() {
        // `analyze_unit` must reproduce both standalone entry points from
        // its single solve, and a cache-fed Dce must rewrite identically
        // to one that computes facts itself.
        let mut ctx = Ctx::new();
        let tree = fixture(&mut ctx);
        let (findings, facts) = crate::dataflow::analyze_unit(&ctx.symbols, &tree);
        assert_eq!(
            findings,
            crate::dataflow::dataflow_findings(&ctx.symbols, &tree)
        );
        let standalone = compute_dce_facts(&ctx.symbols, &tree);
        assert_eq!(facts.dead_assigns, standalone.dead_assigns);
        assert_eq!(facts.const_branches, standalone.const_branches);

        let cache = crate::FactCache::new();
        cache.store(&tree, std::rc::Rc::new(facts));
        let mut shared = Dce::consuming_facts(cache.clone());
        let shared_out = shared.transform_unit(&mut ctx, tree.clone());
        assert!(
            cache.take(&tree).is_none(),
            "transform consumed the cache entry"
        );
        let mut plain = Dce::default();
        let plain_out = plain.transform_unit(&mut ctx, tree.clone());
        assert_eq!(
            mini_ir::printer::print_tree(&shared_out, &ctx.symbols),
            mini_ir::printer::print_tree(&plain_out, &ctx.symbols)
        );
        assert_eq!(shared.take_eliminated(), plain.take_eliminated());

        // A cache miss (no stored entry) falls back to computing facts.
        let mut missing = Dce::consuming_facts(crate::FactCache::new());
        let missing_out = missing.transform_unit(&mut ctx, tree.clone());
        assert_eq!(
            mini_ir::printer::print_tree(&missing_out, &ctx.symbols),
            mini_ir::printer::print_tree(&plain_out, &ctx.symbols)
        );
    }

    #[test]
    fn dce_is_identity_without_facts() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let one = ctx.lit_int(1);
        let decl = ctx.mk(TreeKind::ValDef { sym: x, rhs: one }, Type::Unit, sp(0, 8));
        let read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(9, 10));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![decl]),
                expr: read,
            },
            Type::Int,
            sp(0, 11),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 12),
        );
        let mut dce = Dce::default();
        let out = dce.transform_unit(&mut ctx, mdef.clone());
        assert!(std::rc::Rc::ptr_eq(&out, &mdef), "no facts, no rewrite");
        assert_eq!(dce.take_eliminated(), 0);
    }

    #[test]
    fn dce_leaves_impure_dead_store() {
        // d = f() — dead by liveness, but the call may have effects.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let f = method(&mut ctx, "f");
        let d = local(&mut ctx, m, "d");
        let zero = ctx.lit_int(0);
        let ddecl = ctx.mk(TreeKind::ValDef { sym: d, rhs: zero }, Type::Unit, sp(0, 9));
        let lhs = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(10, 11));
        let fref = ctx.mk(TreeKind::Ident { sym: f }, Type::Int, sp(14, 15));
        let call = ctx.mk(
            TreeKind::Apply {
                fun: fref,
                args: Kids::new(),
            },
            Type::Int,
            sp(14, 17),
        );
        let store = ctx.mk(TreeKind::Assign { lhs, rhs: call }, Type::Unit, sp(10, 18));
        let d_read = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(19, 20));
        let lhs2 = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(21, 22));
        let three = ctx.lit_int(3);
        let live = ctx.mk(
            TreeKind::Assign {
                lhs: lhs2,
                rhs: three,
            },
            Type::Unit,
            sp(21, 27),
        );
        let _ = d_read;
        let final_read = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(28, 29));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![ddecl, store, live]),
                expr: final_read,
            },
            Type::Int,
            sp(0, 30),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 31),
        );
        let mut dce = Dce::default();
        let out = dce.transform_unit(&mut ctx, mdef.clone());
        assert!(
            std::rc::Rc::ptr_eq(&out, &mdef),
            "impure store survives untouched"
        );
        assert_eq!(dce.take_eliminated(), 0);
    }

    #[test]
    fn while_true_is_never_folded() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let g = local(&mut ctx, m, "g");
        let t_lit = ctx.lit(Constant::Bool(true), sp(9, 13));
        let gdecl = ctx.mk(
            TreeKind::ValDef { sym: g, rhs: t_lit },
            Type::Unit,
            sp(0, 14),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: g }, Type::Boolean, sp(21, 22));
        let unit_body = ctx.lit_unit();
        let wh = ctx.mk(
            TreeKind::While {
                cond,
                body: unit_body,
            },
            Type::Unit,
            sp(15, 30),
        );
        let unit_expr = ctx.lit_unit();
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![gdecl, wh]),
                expr: unit_expr,
            },
            Type::Unit,
            sp(0, 31),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 32),
        );
        let mut dce = Dce::default();
        let out = dce.transform_unit(&mut ctx, mdef);
        let printed = mini_ir::printer::print_tree(&out, &ctx.symbols);
        assert!(printed.contains("while ("), "while(true) kept: {printed}");
    }
}
