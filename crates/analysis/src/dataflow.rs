//! Generic monotone-framework fixpoint solver and the three shipped
//! dataflow analyses (definite assignment, liveness, sparse constancy).
//!
//! ## Design note: lattices, direction, termination
//!
//! Every analysis here works over the **powerset lattice of tracked
//! variables**, represented as a compact [`BitSet`] (one bit per
//! [`crate::cfg::VarInfo`]). The framework is parameterized by:
//!
//! * **Direction** — [`Direction::Forward`] analyses propagate facts from
//!   [`crate::cfg::ENTRY`] along successor edges; [`Direction::Backward`]
//!   analyses propagate from [`crate::cfg::EXIT`] along predecessor edges.
//! * **Join** — [`Join::Union`] for *may* analyses (a fact holds if it
//!   holds on *some* path), [`Join::Intersection`] for *must* analyses (a
//!   fact holds only if it holds on *every* path). Must analyses start
//!   optimistic (all facts ⊤) everywhere except the boundary block and
//!   are narrowed; may analyses start at ∅ and are widened.
//! * **Transfer functions** — [`Analysis::transfer`] maps a block's entry
//!   facts to its exit facts (or exit to entry, for backward analyses) by
//!   folding the block's linearized events.
//!
//! **Termination:** the lattice is finite (`2^vars` elements, height
//! `vars`) and every shipped transfer function is monotone (each event
//! only sets or clears its own bit, independent of other bits), so each
//! block's state moves monotonically along a finite chain; the worklist
//! algorithm therefore reaches the unique minimal/maximal fixpoint in at
//! most `O(blocks × vars)` state changes regardless of the order blocks
//! are taken off the worklist. The order-independence of the result is
//! property-tested (`solver_fixpoint_is_order_independent`).
//!
//! ## Exceptional edges
//!
//! An exceptional edge `b ⇢ h` means control may leave `b` from *any*
//! event point. The solver therefore propagates **block-entry facts**
//! along exceptional edges:
//!
//! * forward/must: `in[h]` meets `in[b]` (not `out[b]`) — the handler
//!   can only rely on what was already true when the protected block
//!   *started*, an under-approximation of assignedness, which is the
//!   sound side for a must analysis;
//! * backward/may: `in[h]` is unioned into `b`'s entry facts *and* (via
//!   [`Solution::exc_live`]) into every interior event point — an
//!   over-approximation of liveness, again the sound side.
//!
//! Only these two configurations (forward+must, backward+may) are
//! shipped; they are exactly the sound pairings for the entry-fact
//! treatment above.
//!
//! ## The rule clients
//!
//! [`dataflow_findings`] packages the analyses as lint rules: L004
//! (path-sensitive definite assignment — same rule code as the old
//! syntactic core, strictly better verdicts), L006 (dead store via
//! liveness) and L007 (branch never taken via single-binding constancy).
//! Escaped variables are exempt from all three. [`compute_dce_facts`]
//! derives the span-keyed fact tables the opt-in DCE phase consumes; DCE
//! stays behind a flag because dropping code — however provably dead —
//! changes the artifact in ways a default pipeline must not (byte-stable
//! trees are the contract every equivalence oracle in this repo pins).

use std::collections::{HashMap, HashSet, VecDeque};

use mini_ir::{Constant, NodeKind, Span, SymbolTable, TreeRef};
use miniphase::checker::{Finding, Severity};

use crate::cfg::{build_unit_cfgs, BranchSite, Cfg, CondSource, EventKind, ENTRY, EXIT};
use crate::{RULE_BRANCH_NEVER, RULE_DEAD_STORE, RULE_USE_BEFORE_ASSIGN};

/// A fixed-width bitset over tracked variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    bits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over `bits` variables.
    pub fn empty(bits: usize) -> BitSet {
        BitSet {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The full set over `bits` variables.
    pub fn full(bits: usize) -> BitSet {
        let mut s = BitSet::empty(bits);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let n = s.bits.saturating_sub(lo).min(64);
            *w = if n == 64 { !0 } else { (1u64 << n) - 1 };
        }
        s
    }

    /// Inserts `bit`.
    pub fn insert(&mut self, bit: u32) {
        self.words[bit as usize / 64] |= 1 << (bit % 64);
    }

    /// Removes `bit`.
    pub fn remove(&mut self, bit: u32) {
        self.words[bit as usize / 64] &= !(1 << (bit % 64));
    }

    /// Membership test.
    pub fn contains(&self, bit: u32) -> bool {
        self.words[bit as usize / 64] & (1 << (bit % 64)) != 0
    }

    /// `self ∪= other`; true when `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// `self ∩= other`; true when `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

/// Propagation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit along successor edges.
    Forward,
    /// Facts flow exit → entry along predecessor edges.
    Backward,
}

/// Confluence operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Join {
    /// May analysis: a fact holds on *some* incoming path.
    Union,
    /// Must analysis: a fact holds on *every* incoming path.
    Intersection,
}

/// A dataflow analysis over a CFG's event stream. Implementations are
/// ~30 LoC: a direction, a join, and one transfer function.
pub trait Analysis {
    /// Propagation direction.
    fn direction(&self) -> Direction;
    /// Confluence operator. Only `Forward`+`Intersection` and
    /// `Backward`+`Union` are sound with respect to exceptional edges
    /// (see the module docs); the solver debug-asserts this pairing.
    fn join(&self) -> Join;
    /// Initializes the boundary block's facts (entry for forward, exit
    /// for backward). `facts` arrives as ∅.
    fn boundary(&self, facts: &mut BitSet);
    /// Applies one block's events to `facts`: entry→exit facts for
    /// forward analyses, exit→entry for backward ones (the implementation
    /// iterates events in reverse).
    fn transfer(&self, block: &crate::cfg::Block, facts: &mut BitSet);
}

/// The solved fixpoint: per-block entry and exit facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Facts at each block's entry.
    pub input: Vec<BitSet>,
    /// Facts at each block's exit.
    pub output: Vec<BitSet>,
}

impl Solution {
    /// For backward analyses: the facts that must be considered live at
    /// *every* interior point of `b` because an exception may transfer
    /// control out — the union of the entry facts of `b`'s exceptional
    /// successors.
    pub fn exc_live(&self, cfg: &Cfg, b: usize) -> BitSet {
        let mut acc = BitSet::empty(cfg.vars.len());
        for &h in &cfg.blocks[b].exc_succs {
            acc.union_with(&self.input[h]);
        }
        acc
    }
}

/// Runs `analysis` to its fixpoint over `cfg`. `order` seeds the
/// worklist (any permutation of block ids — the fixpoint is the same;
/// blocks absent from `order` are appended).
pub fn solve(cfg: &Cfg, analysis: &dyn Analysis, order: &[usize]) -> Solution {
    let n = cfg.blocks.len();
    let bits = cfg.vars.len();
    debug_assert!(
        matches!(
            (analysis.direction(), analysis.join()),
            (Direction::Forward, Join::Intersection) | (Direction::Backward, Join::Union)
        ),
        "unsupported direction/join pairing for exceptional edges"
    );
    let top = match analysis.join() {
        Join::Union => BitSet::empty(bits),
        Join::Intersection => BitSet::full(bits),
    };
    let mut input: Vec<BitSet> = vec![top.clone(); n];
    let mut output: Vec<BitSet> = vec![top; n];
    let boundary = match analysis.direction() {
        Direction::Forward => ENTRY,
        Direction::Backward => EXIT,
    };
    {
        let mut b = BitSet::empty(bits);
        analysis.boundary(&mut b);
        match analysis.direction() {
            Direction::Forward => input[boundary] = b,
            Direction::Backward => output[boundary] = b,
        }
    }

    let mut work: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];
    for b in order.iter().copied().chain(0..n) {
        if b < n && !queued[b] {
            queued[b] = true;
            work.push_back(b);
        }
    }

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let changed = match analysis.direction() {
            Direction::Forward => {
                let mut inb = if b == boundary {
                    input[boundary].clone()
                } else {
                    let mut acc: Option<BitSet> = None;
                    // Normal edges contribute predecessor *exit* facts;
                    // exceptional edges contribute predecessor *entry*
                    // facts (control may leave before any event ran).
                    for &p in &cfg.blocks[b].preds {
                        join_into(&mut acc, &output[p], analysis.join());
                    }
                    for &p in &cfg.blocks[b].exc_preds {
                        join_into(&mut acc, &input[p], analysis.join());
                    }
                    acc.unwrap_or_else(|| match analysis.join() {
                        Join::Union => BitSet::empty(bits),
                        Join::Intersection => BitSet::full(bits),
                    })
                };
                if b == boundary {
                    // keep boundary facts
                } else if inb == input[b] {
                    // recomputed the same entry state; still re-derive the
                    // exit state below in case this is the first visit
                } else {
                    input[b] = inb.clone();
                }
                let mut outb = std::mem::replace(&mut inb, BitSet::empty(0));
                analysis.transfer(&cfg.blocks[b], &mut outb);
                if outb != output[b] {
                    output[b] = outb;
                    true
                } else {
                    false
                }
            }
            Direction::Backward => {
                let mut outb = if b == boundary {
                    output[boundary].clone()
                } else {
                    let mut acc: Option<BitSet> = None;
                    for &s in &cfg.blocks[b].succs {
                        join_into(&mut acc, &input[s], analysis.join());
                    }
                    acc.unwrap_or_else(|| BitSet::empty(bits))
                };
                if b != boundary {
                    output[b] = outb.clone();
                }
                analysis.transfer(&cfg.blocks[b], &mut outb);
                // Anything live into a reachable handler is live at every
                // interior point, including the entry.
                for &h in &cfg.blocks[b].exc_succs {
                    let exc = input[h].clone();
                    outb.union_with(&exc);
                }
                if outb != input[b] {
                    input[b] = outb;
                    true
                } else {
                    false
                }
            }
        };
        if changed {
            let deps: Vec<usize> = match analysis.direction() {
                // out[b] feeds normal successors; in[b] feeds exceptional
                // successors, and in[b] only changes when out of date with
                // preds — requeue both kinds.
                Direction::Forward => cfg.blocks[b]
                    .succs
                    .iter()
                    .chain(&cfg.blocks[b].exc_succs)
                    .copied()
                    .collect(),
                Direction::Backward => cfg.blocks[b]
                    .preds
                    .iter()
                    .chain(&cfg.blocks[b].exc_preds)
                    .copied()
                    .collect(),
            };
            for d in deps {
                if !queued[d] {
                    queued[d] = true;
                    work.push_back(d);
                }
            }
        }
    }
    Solution { input, output }
}

fn join_into(acc: &mut Option<BitSet>, x: &BitSet, join: Join) {
    match acc {
        None => *acc = Some(x.clone()),
        Some(a) => {
            match join {
                Join::Union => a.union_with(x),
                Join::Intersection => a.intersect_with(x),
            };
        }
    }
}

/// Forward/must: a variable is *definitely assigned* at a point when
/// every path from entry assigns it first.
pub struct DefiniteAssignment;

impl Analysis for DefiniteAssignment {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn join(&self) -> Join {
        Join::Intersection
    }
    fn boundary(&self, _facts: &mut BitSet) {
        // Nothing is assigned at method entry.
    }
    fn transfer(&self, block: &crate::cfg::Block, facts: &mut BitSet) {
        for e in &block.events {
            match e.kind {
                EventKind::Assign { .. } | EventKind::Decl { init: true, .. } => {
                    facts.insert(e.var)
                }
                EventKind::Decl { init: false, .. } => facts.remove(e.var),
                EventKind::Use => {}
            }
        }
    }
}

/// Backward/may: a variable is *live* at a point when some path from it
/// reaches a use before any redefinition.
pub struct Liveness;

impl Analysis for Liveness {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn join(&self) -> Join {
        Join::Union
    }
    fn boundary(&self, _facts: &mut BitSet) {
        // Nothing is live at method exit (locals die with the frame).
    }
    fn transfer(&self, block: &crate::cfg::Block, facts: &mut BitSet) {
        for e in block.events.iter().rev() {
            match e.kind {
                EventKind::Use => facts.insert(e.var),
                EventKind::Assign { .. } | EventKind::Decl { .. } => facts.remove(e.var),
            }
        }
    }
}

/// All dataflow findings for one unit tree: L004 (path-sensitive definite
/// assignment), L006 (dead store) and L007 (branch never taken). Findings
/// carry no unit stamp (the caller adds it) and are emitted in
/// deterministic CFG/block/event order.
pub fn dataflow_findings(symbols: &SymbolTable, tree: &TreeRef) -> Vec<Finding> {
    let mut out = Vec::new();
    for cfg in build_unit_cfgs(symbols, tree) {
        findings_for_cfg(&cfg, &mut out);
    }
    out
}

/// Solves both unit analyses **once** and derives the lint findings *and*
/// the DCE fact tables from the same fixpoint solutions. This is what the
/// fused pipeline uses when the dataflow lint rule and the DCE phase both
/// run: the findings are exactly [`dataflow_findings`]'s and the facts
/// exactly [`compute_dce_facts`]'s, minus one redundant CFG build + solve
/// per unit. The standalone entry points remain for callers that need only
/// one side (and as the honestly-costed baselines the benches compare to).
pub fn analyze_unit(symbols: &SymbolTable, tree: &TreeRef) -> (Vec<Finding>, DceFacts) {
    let mut out = Vec::new();
    let mut assigns: HashMap<Span, Option<bool>> = HashMap::new();
    let mut branches: HashMap<Span, Option<bool>> = HashMap::new();
    for cfg in build_unit_cfgs(symbols, tree) {
        // Nothing to report and nothing to record without variables or
        // branches (fact events are all var- or branch-keyed), so the
        // solve can be skipped, as `findings_for_cfg` does.
        if cfg.vars.is_empty() && cfg.branches.is_empty() {
            continue;
        }
        let order: Vec<usize> = (0..cfg.blocks.len()).collect();
        let assigned = solve(&cfg, &DefiniteAssignment, &order);
        let live = solve(&cfg, &Liveness, &order);
        findings_from_solutions(&cfg, &assigned, &live, &mut out);
        facts_from_solutions(&cfg, &assigned, &live, &mut assigns, &mut branches);
    }
    (out, seal_facts(assigns, branches))
}

fn findings_for_cfg(cfg: &Cfg, out: &mut Vec<Finding>) {
    if cfg.vars.is_empty() && cfg.branches.is_empty() {
        return;
    }
    let order: Vec<usize> = (0..cfg.blocks.len()).collect();
    let assigned = solve(cfg, &DefiniteAssignment, &order);
    let live = solve(cfg, &Liveness, &order);
    findings_from_solutions(cfg, &assigned, &live, out);
}

fn findings_from_solutions(
    cfg: &Cfg,
    assigned: &Solution,
    live: &Solution,
    out: &mut Vec<Finding>,
) {
    // L004 — use while not definitely assigned, on some reachable path.
    // One report per variable, anchored at the smallest-span offending
    // use (deterministic across block orders).
    let mut worst: HashMap<u32, Span> = HashMap::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[bi] {
            continue;
        }
        let mut facts = assigned.input[bi].clone();
        for e in &block.events {
            match e.kind {
                EventKind::Use => {
                    let v = &cfg.vars[e.var as usize];
                    if !facts.contains(e.var) && v.declared_without_init && !v.escaped {
                        let entry = worst.entry(e.var).or_insert(e.span);
                        if (e.span.start, e.span.end) < (entry.start, entry.end) {
                            *entry = e.span;
                        }
                    }
                }
                EventKind::Assign { .. } | EventKind::Decl { init: true, .. } => {
                    facts.insert(e.var)
                }
                EventKind::Decl { init: false, .. } => facts.remove(e.var),
            }
        }
    }
    let mut l004: Vec<(u32, Span)> = worst.into_iter().collect();
    l004.sort_by_key(|&(v, s)| (s.start, s.end, v));
    for (v, span) in l004 {
        out.push(Finding {
            rule: RULE_USE_BEFORE_ASSIGN,
            severity: Severity::Error,
            unit: String::new(),
            span,
            node_kind: NodeKind::Ident,
            msg: format!(
                "`{}` is possibly used before assignment",
                cfg.vars[v as usize].name
            ),
        });
    }

    // L006 — a store whose value no path reads before redefinition or
    // exit. Zero-use variables are L002's business; exception-reachable
    // and escaped values are exempt.
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[bi] {
            continue;
        }
        let mut facts = live.output[bi].clone();
        let exc = live.exc_live(cfg, bi);
        for e in block.events.iter().rev() {
            match e.kind {
                EventKind::Use => facts.insert(e.var),
                EventKind::Assign { .. } => {
                    let v = &cfg.vars[e.var as usize];
                    if !facts.contains(e.var)
                        && !exc.contains(e.var)
                        && !v.escaped
                        && v.use_count >= 1
                    {
                        out.push(Finding {
                            rule: RULE_DEAD_STORE,
                            severity: Severity::Warning,
                            unit: String::new(),
                            span: e.span,
                            node_kind: NodeKind::Assign,
                            msg: format!("value assigned to `{}` is never read", v.name),
                        });
                    }
                    facts.remove(e.var);
                }
                EventKind::Decl { .. } => facts.remove(e.var),
            }
        }
    }

    // L007 — a branch on a variable bound once to a boolean literal.
    // The definite-assignment fact at the decision point doubles as a
    // dominance check: the single literal binding reaches the branch on
    // every path.
    for br in &cfg.branches {
        if !cfg.reachable[br.block] {
            continue;
        }
        let Some((v, b)) = branch_constant(cfg, assigned, br) else {
            continue;
        };
        let name = &cfg.vars[v as usize].name;
        match br.node_kind {
            NodeKind::If => out.push(Finding {
                rule: RULE_BRANCH_NEVER,
                severity: Severity::Warning,
                unit: String::new(),
                span: br.span,
                node_kind: NodeKind::If,
                msg: format!("`{name}` is bound once to `{b}`: condition is always {b}"),
            }),
            NodeKind::While if !b => out.push(Finding {
                rule: RULE_BRANCH_NEVER,
                severity: Severity::Warning,
                unit: String::new(),
                span: br.span,
                node_kind: NodeKind::While,
                msg: format!("`{name}` is bound once to `false`: loop body never runs"),
            }),
            // `while (true)` on a named constant is the same intentional
            // idiom L005 exempts.
            _ => {}
        }
    }
}

/// `Some((var, value))` when `br`'s condition reads a variable bound once
/// to a boolean literal whose binding definitely reaches the decision.
fn branch_constant(cfg: &Cfg, assigned: &Solution, br: &BranchSite) -> Option<(u32, bool)> {
    let CondSource::Var(v) = br.cond else {
        return None;
    };
    let b = cfg.vars[v as usize]
        .bound_once
        .and_then(Constant::as_bool)?;
    // The decision sits at the end of its block: require the binding to be
    // definitely assigned there (guards hand-built trees where the
    // declaration does not dominate the branch).
    if !assigned.output[br.block].contains(v) {
        return None;
    }
    Some((v, b))
}

/// Span-keyed facts the DCE phase consumes: assignments provably dead
/// (over-approximating liveness, so never falsely dead) and branch
/// decisions provably constant. Spans duplicated across distinct facts
/// are dropped — a rewrite keyed on an ambiguous span could fire twice.
#[derive(Debug, Default)]
pub struct DceFacts {
    /// Spans of `Assign` statements whose stored value is never read.
    /// (Purity of the right-hand side is the rewriter's check.)
    pub dead_assigns: HashSet<Span>,
    /// Branch spans (`If`/`While`) with their statically-known condition.
    pub const_branches: HashMap<Span, bool>,
}

/// Computes [`DceFacts`] for one unit tree. A span only enters a fact
/// table when **every** verdict recorded for it agrees (and it is not the
/// synthetic span): a rewrite keyed on an ambiguous span — possible in
/// hand-built trees that duplicate spans — could otherwise fire on a live
/// occurrence.
pub fn compute_dce_facts(symbols: &SymbolTable, tree: &TreeRef) -> DceFacts {
    // Verdict per span: `None` once any disagreement is seen.
    let mut assigns: HashMap<Span, Option<bool>> = HashMap::new();
    let mut branches: HashMap<Span, Option<bool>> = HashMap::new();
    for cfg in build_unit_cfgs(symbols, tree) {
        let order: Vec<usize> = (0..cfg.blocks.len()).collect();
        let assigned = solve(&cfg, &DefiniteAssignment, &order);
        let live = solve(&cfg, &Liveness, &order);
        facts_from_solutions(&cfg, &assigned, &live, &mut assigns, &mut branches);
    }
    seal_facts(assigns, branches)
}

/// Records span verdicts for one CFG into the accumulating verdict maps.
fn facts_from_solutions(
    cfg: &Cfg,
    assigned: &Solution,
    live: &Solution,
    assigns: &mut HashMap<Span, Option<bool>>,
    branches: &mut HashMap<Span, Option<bool>>,
) {
    fn record(map: &mut HashMap<Span, Option<bool>>, span: Span, v: bool) {
        if span == Span::SYNTHETIC {
            return;
        }
        map.entry(span)
            .and_modify(|cur| {
                if *cur != Some(v) {
                    *cur = None;
                }
            })
            .or_insert(Some(v));
    }
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[bi] {
            continue;
        }
        let mut f = live.output[bi].clone();
        let exc = live.exc_live(cfg, bi);
        for e in block.events.iter().rev() {
            match e.kind {
                EventKind::Use => f.insert(e.var),
                EventKind::Assign { .. } => {
                    let v = &cfg.vars[e.var as usize];
                    // Unlike L006, zero-use variables qualify: their
                    // stores are equally unobservable.
                    let dead = !f.contains(e.var) && !exc.contains(e.var) && !v.escaped;
                    record(assigns, e.span, dead);
                    f.remove(e.var);
                }
                EventKind::Decl { .. } => f.remove(e.var),
            }
        }
    }
    for br in &cfg.branches {
        if !cfg.reachable[br.block] {
            continue;
        }
        match branch_constant(cfg, assigned, br) {
            Some((_, b)) => record(branches, br.span, b),
            // A non-constant verdict for a span poisons any constant
            // one recorded for the same span, before or after.
            None => {
                if br.span != Span::SYNTHETIC {
                    *branches.entry(br.span).or_insert(None) = None;
                }
            }
        }
    }
}

/// Keeps only the unanimous verdicts.
fn seal_facts(
    assigns: HashMap<Span, Option<bool>>,
    branches: HashMap<Span, Option<bool>>,
) -> DceFacts {
    let mut facts = DceFacts::default();
    for (span, v) in assigns {
        if v == Some(true) {
            facts.dead_assigns.insert(span);
        }
    }
    for (span, v) in branches {
        if let Some(b) = v {
            facts.const_branches.insert(span, b);
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_region_cfg;
    use mini_ir::{Ctx, Flags, Kids, Name, SymbolId, TreeKind, Type};

    fn sp(a: u32, b: u32) -> Span {
        Span { start: a, end: b }
    }

    fn method(ctx: &mut Ctx, name: &str) -> SymbolId {
        let root = ctx.symbols.builtins().root_pkg;
        ctx.symbols
            .new_term(root, Name::intern(name), Flags::METHOD, Type::Int)
    }

    fn local(ctx: &mut Ctx, owner: SymbolId, name: &str) -> SymbolId {
        ctx.symbols
            .new_term(owner, Name::intern(name), Flags::EMPTY, Type::Int)
    }

    /// `val x` (no init); if (c) x = 1 else x = 2; x` — both branches
    /// assign, so the join sees x definitely assigned: no L004.
    fn both_branches_assign(ctx: &mut Ctx) -> TreeRef {
        let m = method(ctx, "m");
        let x = local(ctx, m, "x");
        let c = local(ctx, m, "c");
        let empty = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let xdecl = ctx.mk(
            TreeKind::ValDef { sym: x, rhs: empty },
            Type::Unit,
            sp(0, 8),
        );
        let t_lit = ctx.lit(Constant::Bool(true), sp(9, 13));
        let cdecl = ctx.mk(
            TreeKind::ValDef { sym: c, rhs: t_lit },
            Type::Unit,
            sp(9, 14),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: c }, Type::Boolean, sp(18, 19));
        let lhs1 = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(21, 22));
        let one = ctx.lit_int(1);
        let a1 = ctx.mk(
            TreeKind::Assign {
                lhs: lhs1,
                rhs: one,
            },
            Type::Unit,
            sp(21, 26),
        );
        let lhs2 = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(32, 33));
        let two = ctx.lit_int(2);
        let a2 = ctx.mk(
            TreeKind::Assign {
                lhs: lhs2,
                rhs: two,
            },
            Type::Unit,
            sp(32, 37),
        );
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: a1,
                else_branch: a2,
            },
            Type::Unit,
            sp(15, 38),
        );
        let read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(39, 40));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![xdecl, cdecl, iff]),
                expr: read,
            },
            Type::Int,
            sp(0, 41),
        );
        ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 42),
        )
    }

    #[test]
    fn join_of_assigning_branches_is_not_reported() {
        let mut ctx = Ctx::new();
        let tree = both_branches_assign(&mut ctx);
        let found = dataflow_findings(&ctx.symbols, &tree);
        assert!(
            !found.iter().any(|f| f.rule == RULE_USE_BEFORE_ASSIGN),
            "both-branches-assign join must not be flagged: {found:?}"
        );
    }

    #[test]
    fn one_branch_assigning_is_reported_span_exact() {
        // val x; if (c) x = 1; x — the else path reaches the read
        // unassigned.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let empty = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let xdecl = ctx.mk(
            TreeKind::ValDef { sym: x, rhs: empty },
            Type::Unit,
            sp(0, 8),
        );
        let cond = ctx.lit(Constant::Bool(true), sp(12, 16));
        let lhs = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(18, 19));
        let one = ctx.lit_int(1);
        let a1 = ctx.mk(TreeKind::Assign { lhs, rhs: one }, Type::Unit, sp(18, 23));
        let none = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: a1,
                else_branch: none,
            },
            Type::Unit,
            sp(9, 24),
        );
        let read = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(25, 26));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![xdecl, iff]),
                expr: read,
            },
            Type::Int,
            sp(0, 27),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 28),
        );
        let found = dataflow_findings(&ctx.symbols, &mdef);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_USE_BEFORE_ASSIGN)
            .collect();
        assert_eq!(hits.len(), 1, "found: {found:?}");
        assert_eq!(hits[0].span, sp(25, 26));
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn dead_store_reported_and_final_store_is_not() {
        // var d = n; d = 1; d = n + 1; d — the middle store dies.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let d = local(&mut ctx, m, "d");
        let n = local(&mut ctx, m, "n");
        let zero = ctx.lit_int(0);
        let ndecl = ctx.mk(TreeKind::ValDef { sym: n, rhs: zero }, Type::Unit, sp(0, 5));
        let n_read = ctx.mk(TreeKind::Ident { sym: n }, Type::Int, sp(14, 15));
        let ddecl = ctx.mk(
            TreeKind::ValDef {
                sym: d,
                rhs: n_read,
            },
            Type::Unit,
            sp(6, 16),
        );
        let lhs1 = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(17, 18));
        let one = ctx.lit_int(1);
        let dead = ctx.mk(
            TreeKind::Assign {
                lhs: lhs1,
                rhs: one,
            },
            Type::Unit,
            sp(17, 22),
        );
        let lhs2 = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(23, 24));
        let n_read2 = ctx.mk(TreeKind::Ident { sym: n }, Type::Int, sp(27, 28));
        let live_store = ctx.mk(
            TreeKind::Assign {
                lhs: lhs2,
                rhs: n_read2,
            },
            Type::Unit,
            sp(23, 29),
        );
        let d_read = ctx.mk(TreeKind::Ident { sym: d }, Type::Int, sp(30, 31));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![ndecl, ddecl, dead, live_store]),
                expr: d_read,
            },
            Type::Int,
            sp(0, 32),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 33),
        );
        let found = dataflow_findings(&ctx.symbols, &mdef);
        let hits: Vec<_> = found.iter().filter(|f| f.rule == RULE_DEAD_STORE).collect();
        assert_eq!(hits.len(), 1, "found: {found:?}");
        assert_eq!(hits[0].span, sp(17, 22));
        assert_eq!(hits[0].node_kind, NodeKind::Assign);
        assert!(hits[0].msg.contains("`d`"));

        let facts = compute_dce_facts(&ctx.symbols, &mdef);
        assert!(facts.dead_assigns.contains(&sp(17, 22)));
        assert!(!facts.dead_assigns.contains(&sp(23, 29)));
    }

    #[test]
    fn store_live_across_loop_back_edge_is_not_dead() {
        // var a = 0; while (c) { a = a + 1 }; a — the loop store feeds the
        // next iteration's read and the final read.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let a = local(&mut ctx, m, "a");
        let c = local(&mut ctx, m, "c");
        let zero = ctx.lit_int(0);
        let adecl = ctx.mk(TreeKind::ValDef { sym: a, rhs: zero }, Type::Unit, sp(0, 9));
        let t_lit = ctx.lit(Constant::Bool(true), sp(10, 11));
        let cdecl = ctx.mk(
            TreeKind::ValDef { sym: c, rhs: t_lit },
            Type::Unit,
            sp(10, 12),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: c }, Type::Boolean, sp(20, 21));
        let a_read = ctx.mk(TreeKind::Ident { sym: a }, Type::Int, sp(29, 30));
        let lhs = ctx.mk(TreeKind::Ident { sym: a }, Type::Int, sp(25, 26));
        let store = ctx.mk(
            TreeKind::Assign { lhs, rhs: a_read },
            Type::Unit,
            sp(25, 31),
        );
        let wh = ctx.mk(
            TreeKind::While { cond, body: store },
            Type::Unit,
            sp(13, 32),
        );
        let final_read = ctx.mk(TreeKind::Ident { sym: a }, Type::Int, sp(33, 34));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![adecl, cdecl, wh]),
                expr: final_read,
            },
            Type::Int,
            sp(0, 35),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 36),
        );
        let found = dataflow_findings(&ctx.symbols, &mdef);
        assert!(
            !found.iter().any(|f| f.rule == RULE_DEAD_STORE),
            "loop-carried store is live: {found:?}"
        );
    }

    #[test]
    fn branch_on_once_bound_literal_reported() {
        // val g = false; if (g) 1 else 2 — L007, and a DCE const branch.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let g = local(&mut ctx, m, "g");
        let f_lit = ctx.lit(Constant::Bool(false), sp(10, 15));
        let gdecl = ctx.mk(
            TreeKind::ValDef { sym: g, rhs: f_lit },
            Type::Unit,
            sp(0, 16),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: g }, Type::Boolean, sp(21, 22));
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: one,
                else_branch: two,
            },
            Type::Int,
            sp(17, 30),
        );
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![gdecl]),
                expr: iff,
            },
            Type::Int,
            sp(0, 31),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 32),
        );
        let found = dataflow_findings(&ctx.symbols, &mdef);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_BRANCH_NEVER)
            .collect();
        assert_eq!(hits.len(), 1, "found: {found:?}");
        assert_eq!(hits[0].span, sp(17, 30));
        assert_eq!(hits[0].node_kind, NodeKind::If);
        assert!(hits[0].msg.contains("`g`"), "{}", hits[0].msg);
        assert!(hits[0].msg.contains("always false"), "{}", hits[0].msg);

        let facts = compute_dce_facts(&ctx.symbols, &mdef);
        assert_eq!(facts.const_branches.get(&sp(17, 30)), Some(&false));
    }

    #[test]
    fn reassigned_variable_is_not_const() {
        // var g = false; g = true; if (g) — two defs, no L007.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let g = local(&mut ctx, m, "g");
        let f_lit = ctx.lit(Constant::Bool(false), sp(5, 10));
        let gdecl = ctx.mk(
            TreeKind::ValDef { sym: g, rhs: f_lit },
            Type::Unit,
            sp(0, 11),
        );
        let lhs = ctx.mk(TreeKind::Ident { sym: g }, Type::Boolean, sp(12, 13));
        let t_lit = ctx.lit(Constant::Bool(true), sp(16, 20));
        let re = ctx.mk(TreeKind::Assign { lhs, rhs: t_lit }, Type::Unit, sp(12, 21));
        let cond = ctx.mk(TreeKind::Ident { sym: g }, Type::Boolean, sp(26, 27));
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: one,
                else_branch: two,
            },
            Type::Int,
            sp(22, 33),
        );
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![gdecl, re]),
                expr: iff,
            },
            Type::Int,
            sp(0, 34),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 35),
        );
        let found = dataflow_findings(&ctx.symbols, &mdef);
        assert!(
            !found.iter().any(|f| f.rule == RULE_BRANCH_NEVER),
            "reassigned var must not fold: {found:?}"
        );
        let facts = compute_dce_facts(&ctx.symbols, &mdef);
        assert!(facts.const_branches.is_empty());
    }

    #[test]
    fn solver_fixpoint_is_order_independent_on_a_loop() {
        let mut ctx = Ctx::new();
        let tree = both_branches_assign(&mut ctx);
        let TreeKind::DefDef { sym, rhs, .. } = tree.kind() else {
            panic!("defdef")
        };
        let cfg = build_region_cfg(&ctx.symbols, *sym, "m", rhs);
        cfg.validate().expect("well-formed");
        let n = cfg.blocks.len();
        let forward: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + n / 2) % n).collect();
        for analysis in [&DefiniteAssignment as &dyn Analysis, &Liveness] {
            let a = solve(&cfg, analysis, &forward);
            let b = solve(&cfg, analysis, &reverse);
            let c = solve(&cfg, analysis, &rotated);
            assert_eq!(a, b, "forward vs reverse seed order");
            assert_eq!(a, c, "forward vs rotated seed order");
        }
    }
}
