//! # mini_analysis — static-analysis passes as prepare-only miniphases
//!
//! A lint/dataflow suite that rides the same fused traversal as the
//! transformation pipeline. Every pass here is a **prepare-only miniphase**:
//! it declares an empty [`MiniPhase::transforms`] mask and a sparse
//! [`MiniPhase::prepares`] mask, observes nodes through `prepare_*` hooks on
//! the way *down* the tree, and never rewrites anything.
//!
//! ## Why prepare-only miniphases?
//!
//! The paper's fusion argument (§4.1) is usually read as a story about
//! *transformations*, but the prepare machinery is exactly an analysis
//! visitor: hooks fire pre-order on node arrival, in deterministic traversal
//! order, under the same identity-skip and subtree-pruning machinery as
//! transforms. Expressing lints this way buys three things for free:
//!
//! 1. **Fusion** — adding the whole lint suite to a run costs one extra
//!    *group prefix* in the plan, not one extra tree traversal per rule.
//!    The fused walk dispatches a lint hook only at nodes whose kind is in
//!    the rule's declared mask; every other node costs a bitmask test.
//! 2. **Pruning soundness by construction** — the executors' subtree
//!    kind-summary pruning masks are the union of transforms *and*
//!    effective prepares, so a subtree is only skipped when it contains no
//!    kind any lint rule observes. The union mask of this suite covers 8 of
//!    the 33 node kinds, sparse enough that pruning pays on real corpora.
//! 3. **Every executor, one implementation** — the same phase objects run
//!    under the fused walk, the megaphase loop, the recursive reference
//!    executor and the parallel chunk scheduler, and the equivalence
//!    property tests pin all of them against the standalone walker
//!    ([`lint_unit`]) byte-for-byte.
//!
//! ## Finding ordering under parallelism
//!
//! Within one unit × group traversal, a rule reports findings in traversal
//! (pre-order) encounter order; deferred rules (unused-def) report in
//! definition encounter order at [`MiniPhase::take_findings`] time. Across
//! units and groups, executors harvest findings the same way they harvest
//! checker failures — per `(group, unit)`, re-sequenced group-major then
//! unit order at the parallel fan-in — so the raw stream is already
//! deterministic for a fixed plan shape. Because plan shape *does* differ
//! across fused/mega modes (one lint group vs. per-phase groups), every
//! client-facing surface additionally sorts findings by the canonical key
//! `(unit, span.start, span.end, rule, node_kind, msg)`
//! ([`miniphase::sort_findings`]); the property tests compare
//! canonically-sorted streams.
//!
//! ## The rules
//!
//! | code | rule | severity | observes |
//! |------|------|----------|----------|
//! | L001 | `unused-def` | warning | `ValDef` `DefDef` `Ident` `Select` |
//! | L002 | `unused-local` | warning | (same phase as L001) |
//! | L003 | `unreachable` | warning | `Block` |
//! | L004 | `use-before-assign` | error | CFG + dataflow (see below) |
//! | L005 | `const-cond` | warning | `If` `While` |
//! | L006 | `dead-store` | warning | CFG + dataflow |
//! | L007 | `branch-never-taken` | warning | CFG + dataflow |
//!
//! Unused detection is **per unit**: a definition is flagged when nothing in
//! its *defining unit* references it, which keeps findings cacheable in
//! per-unit artifacts (the message says so honestly).
//!
//! ## The dataflow layer
//!
//! L004, L006 and L007 are *path-sensitive*: the [`Dataflow`] phase lowers
//! each method body (and the unit's top level) into a CFG ([`cfg`]) and
//! runs a monotone-framework fixpoint solver ([`dataflow`]) over it —
//! forward/must definite assignment, backward/may liveness, and a sparse
//! single-binding constancy summary. The phase is still prepare-only, but
//! it declares an *empty* prepare mask and does its whole-unit walk in
//! [`MiniPhase::prepare_unit`] instead of per-node hooks: a fixpoint over
//! joins and back-edges fundamentally cannot be computed from one
//! pre-order arrival per node, and doing it per unit keeps findings
//! independent of executor mode, pruning and parallelism (pinned by the
//! equivalence property tests). L004's historical syntactic core is kept
//! as [`syntactic_use_before_assign`] so the dominance tests can pin that
//! the path-sensitive verdicts are strictly better on both sides
//! (suppressed false positive, caught false negative).
//!
//! The same facts drive the opt-in dead-code-elimination transform
//! ([`dce::Dce`], enabled by the driver's `with_dce`), which is pinned
//! output-neutral: identical VM output and identical findings with DCE on
//! and off.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod dce;

use std::collections::HashSet;

use mini_ir::{Ctx, Flags, NodeKind, NodeKindSet, Span, SymbolId, SymbolTable, TreeKind, TreeRef};
use miniphase::checker::{Finding, Severity};
use miniphase::{sort_findings, MiniPhase, PhaseInfo};

/// Rule name for unused non-local definitions (L001).
pub const RULE_UNUSED_DEF: &str = "unused-def";
/// Rule name for unused method-local definitions (L002).
pub const RULE_UNUSED_LOCAL: &str = "unused-local";
/// Rule name for statements after a terminator (L003).
pub const RULE_UNREACHABLE: &str = "unreachable";
/// Rule name for reads of locals before any assignment (L004).
pub const RULE_USE_BEFORE_ASSIGN: &str = "use-before-assign";
/// Rule name for constant conditions (L005).
pub const RULE_CONST_COND: &str = "const-cond";
/// Rule name for stores whose value is never read (L006).
pub const RULE_DEAD_STORE: &str = "dead-store";
/// Rule name for branches on locals bound once to a literal (L007).
pub const RULE_BRANCH_NEVER: &str = "branch-never-taken";

/// Maps a rule name to its stable diagnostic code (rendered by clients as
/// e.g. `warning[L003]`). Unknown rules map to `L000`.
pub fn rule_code(rule: &str) -> &'static str {
    match rule {
        RULE_UNUSED_DEF => "L001",
        RULE_UNUSED_LOCAL => "L002",
        RULE_UNREACHABLE => "L003",
        RULE_USE_BEFORE_ASSIGN => "L004",
        RULE_CONST_COND => "L005",
        RULE_DEAD_STORE => "L006",
        RULE_BRANCH_NEVER => "L007",
        _ => "L000",
    }
}

/// True when `sym` is owned (directly) by a method — the suite's notion of
/// "local", which separates L002 from L001.
fn is_local(symbols: &SymbolTable, sym: SymbolId) -> bool {
    if !sym.exists() {
        return false;
    }
    let owner = symbols.sym(sym).owner;
    owner.exists() && symbols.sym(owner).flags.is(Flags::METHOD)
}

/// One recorded definition site for the unused-def rule.
struct DefSite {
    sym: SymbolId,
    span: Span,
    node_kind: NodeKind,
    local: bool,
    name: String,
}

/// Shared visitor for L001/L002: collects definition sites and referenced
/// symbols, and reports `defined − used` when flushed.
#[derive(Default)]
struct UnusedVisitor {
    defined: Vec<DefSite>,
    used: HashSet<SymbolId>,
}

impl UnusedVisitor {
    fn visit(&mut self, symbols: &SymbolTable, t: &TreeRef) {
        match t.kind() {
            TreeKind::ValDef { sym, .. } if sym.exists() => {
                let flags = symbols.sym(*sym).flags;
                if flags.is_any(Flags::PARAM | Flags::SYNTHETIC | Flags::SELF | Flags::FIELD) {
                    return;
                }
                self.defined.push(DefSite {
                    sym: *sym,
                    span: t.span(),
                    node_kind: NodeKind::ValDef,
                    local: is_local(symbols, *sym),
                    name: symbols.sym(*sym).name.to_string(),
                });
            }
            TreeKind::DefDef { sym, .. } if sym.exists() => {
                let flags = symbols.sym(*sym).flags;
                if flags.is_any(
                    Flags::ENTRY_POINT
                        | Flags::SYNTHETIC
                        | Flags::CONSTRUCTOR
                        | Flags::ACCESSOR
                        | Flags::LABEL
                        | Flags::OVERRIDE,
                ) {
                    return;
                }
                self.defined.push(DefSite {
                    sym: *sym,
                    span: t.span(),
                    node_kind: NodeKind::DefDef,
                    local: is_local(symbols, *sym),
                    name: symbols.sym(*sym).name.to_string(),
                });
            }
            TreeKind::Ident { sym } | TreeKind::Select { sym, .. } if sym.exists() => {
                self.used.insert(*sym);
            }
            _ => {}
        }
    }

    fn flush(&mut self) -> Vec<Finding> {
        let used = std::mem::take(&mut self.used);
        self.defined
            .drain(..)
            .filter(|d| !used.contains(&d.sym))
            .map(|d| Finding {
                rule: if d.local {
                    RULE_UNUSED_LOCAL
                } else {
                    RULE_UNUSED_DEF
                },
                severity: Severity::Warning,
                unit: String::new(),
                span: d.span,
                node_kind: d.node_kind,
                msg: format!("`{}` is never referenced in its defining unit", d.name),
            })
            .collect()
    }
}

/// True for statement kinds after which control cannot fall through.
fn is_terminator(k: NodeKind) -> bool {
    matches!(k, NodeKind::Return | NodeKind::Throw | NodeKind::JumpTo)
}

fn terminator_word(k: NodeKind) -> &'static str {
    match k {
        NodeKind::Return => "return",
        NodeKind::Throw => "throw",
        _ => "jump",
    }
}

/// Stateless visitor for L003: inside a `Block`, anything after the first
/// terminator statement is unreachable. One finding per block, anchored at
/// the first unreachable statement (or the block's result expression).
#[derive(Default)]
struct UnreachableVisitor {
    findings: Vec<Finding>,
}

impl UnreachableVisitor {
    fn visit(&mut self, t: &TreeRef) {
        let TreeKind::Block { stats, expr } = t.kind() else {
            return;
        };
        for (i, s) in stats.iter().enumerate() {
            if !is_terminator(s.node_kind()) {
                continue;
            }
            let next = stats.get(i + 1).or({
                if expr.is_empty_tree() {
                    None
                } else {
                    Some(expr)
                }
            });
            if let Some(n) = next {
                self.findings.push(Finding {
                    rule: RULE_UNREACHABLE,
                    severity: Severity::Warning,
                    unit: String::new(),
                    span: n.span(),
                    node_kind: n.node_kind(),
                    msg: format!(
                        "unreachable statement after `{}`",
                        terminator_word(s.node_kind())
                    ),
                });
            }
            break;
        }
    }

    fn flush(&mut self) -> Vec<Finding> {
        std::mem::take(&mut self.findings)
    }
}

/// The retired syntactic core of L004 — a linear pre-order approximation of
/// definite assignment: a local declared without an initializer is
/// "unassigned" until an `Assign` to it is *encountered* (in pre-order); a
/// read while unassigned is reported once per symbol. No branch merging, no
/// escape analysis — kept (not shipped in [`lint_phases`]) so the dominance
/// tests can pin the path-sensitive replacement strictly better: this
/// visitor falsely flags lambda captures (the capture's `Ident` arrives
/// before the later `Assign`) and misses self-referential first assignments
/// like `x = x + 1` (the `Assign` node arrives pre-order *before* its rhs
/// read and clears the tracking).
#[derive(Default)]
struct DefAssignVisitor {
    unassigned: HashSet<SymbolId>,
    findings: Vec<Finding>,
}

impl DefAssignVisitor {
    fn visit(&mut self, symbols: &SymbolTable, t: &TreeRef) {
        match t.kind() {
            TreeKind::ValDef { sym, rhs } if sym.exists() && rhs.is_empty_tree() => {
                let flags = symbols.sym(*sym).flags;
                if !flags.is_any(Flags::PARAM | Flags::SYNTHETIC | Flags::SELF)
                    && is_local(symbols, *sym)
                {
                    self.unassigned.insert(*sym);
                }
            }
            // The Assign node arrives before its lhs Ident (pre-order), so
            // clearing here also keeps the lhs read from being flagged.
            TreeKind::Assign { lhs, .. } => {
                if let TreeKind::Ident { sym } = lhs.kind() {
                    self.unassigned.remove(sym);
                }
            }
            TreeKind::Ident { sym } if self.unassigned.remove(sym) => {
                self.findings.push(Finding {
                    rule: RULE_USE_BEFORE_ASSIGN,
                    severity: Severity::Error,
                    unit: String::new(),
                    span: t.span(),
                    node_kind: NodeKind::Ident,
                    msg: format!(
                        "`{}` is possibly used before assignment",
                        symbols.sym(*sym).name
                    ),
                });
            }
            _ => {}
        }
    }

    fn flush(&mut self) -> Vec<Finding> {
        self.unassigned.clear();
        std::mem::take(&mut self.findings)
    }
}

/// Visitor for L005: `if` conditions that are boolean literals, and `while`
/// loops whose condition is literally `false`. `while (true)` is the
/// intentional-infinite-loop idiom and is not reported.
#[derive(Default)]
struct ConstCondVisitor {
    findings: Vec<Finding>,
}

impl ConstCondVisitor {
    fn visit(&mut self, t: &TreeRef) {
        match t.kind() {
            TreeKind::If { cond, .. } => {
                if let TreeKind::Literal { value } = cond.kind() {
                    if let Some(b) = value.as_bool() {
                        self.findings.push(Finding {
                            rule: RULE_CONST_COND,
                            severity: Severity::Warning,
                            unit: String::new(),
                            span: t.span(),
                            node_kind: NodeKind::If,
                            msg: format!("condition is always {b}"),
                        });
                    }
                }
            }
            TreeKind::While { cond, .. } => {
                if let TreeKind::Literal { value } = cond.kind() {
                    if value.as_bool() == Some(false) {
                        self.findings.push(Finding {
                            rule: RULE_CONST_COND,
                            severity: Severity::Warning,
                            unit: String::new(),
                            span: t.span(),
                            node_kind: NodeKind::While,
                            msg: "loop body never runs".to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn flush(&mut self) -> Vec<Finding> {
        std::mem::take(&mut self.findings)
    }
}

macro_rules! lint_phase {
    (
        $(#[$doc:meta])*
        $phase:ident, $name:literal, $desc:literal, $visitor:ty,
        needs_symbols: $needs_symbols:tt,
        prepares: [$($kind:ident => $hook:ident),+ $(,)?]
    ) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $phase {
            v: $visitor,
        }

        impl PhaseInfo for $phase {
            fn name(&self) -> &str {
                $name
            }
            fn description(&self) -> &str {
                $desc
            }
        }

        impl MiniPhase for $phase {
            fn transforms(&self) -> NodeKindSet {
                NodeKindSet::EMPTY
            }
            fn prepares(&self) -> NodeKindSet {
                NodeKindSet::EMPTY$(.with(NodeKind::$kind))+
            }
            fn prepare_unit(&mut self, _ctx: &mut Ctx, _unit_tree: &TreeRef) {
                self.v = Default::default();
            }
            fn take_findings(&mut self) -> Vec<Finding> {
                self.v.flush()
            }
            $(
                fn $hook(&mut self, ctx: &mut Ctx, tree: &TreeRef) -> bool {
                    let _ = &ctx;
                    lint_phase!(@call $needs_symbols, self, ctx, tree);
                    false
                }
            )+
        }
    };
    (@call true, $self:ident, $ctx:ident, $tree:ident) => {
        $self.v.visit(&$ctx.symbols, $tree)
    };
    (@call false, $self:ident, $ctx:ident, $tree:ident) => {
        $self.v.visit($tree)
    };
}

lint_phase!(
    /// L001/L002 — definitions never referenced in their defining unit.
    UnusedDefs, "lintUnused", "unused definitions and locals (L001/L002)",
    UnusedVisitor,
    needs_symbols: true,
    prepares: [
        ValDef => prepare_val_def,
        DefDef => prepare_def_def,
        Ident => prepare_ident,
        Select => prepare_select,
    ]
);

lint_phase!(
    /// L003 — statements after `return`/`throw`/jump terminators.
    Unreachable, "lintUnreachable", "unreachable statements (L003)",
    UnreachableVisitor,
    needs_symbols: false,
    prepares: [Block => prepare_block]
);

/// Runs the retired syntactic L004 core over one unit tree (standalone
/// pre-order walk). Exists solely as the comparison baseline for the
/// dominance tests; the shipped rule is [`dataflow::dataflow_findings`].
pub fn syntactic_use_before_assign(
    symbols: &SymbolTable,
    unit: &str,
    tree: &TreeRef,
) -> Vec<Finding> {
    let mut v = DefAssignVisitor::default();
    let mut stack: Vec<TreeRef> = vec![tree.clone()];
    while let Some(t) = stack.pop() {
        v.visit(symbols, &t);
        let mut kids: Vec<TreeRef> = Vec::new();
        t.for_each_child(&mut |c| kids.push(c.clone()));
        stack.extend(kids.into_iter().rev());
    }
    let mut out = v.flush();
    for f in &mut out {
        f.unit = unit.to_owned();
    }
    sort_findings(&mut out);
    out
}

/// Identity-keyed hand-off of [`dataflow::DceFacts`] from the dataflow
/// lint rule to the DCE phase within one phase list.
///
/// When both run in a pipeline, each solves the same two fixpoints over the
/// same unit CFGs; sharing the solved facts halves that cost. The cache is
/// keyed on **tree identity** (`Rc::ptr_eq`): lint rules are prepare-only,
/// so the tree `Dce::transform_unit` receives is the very node
/// `Dataflow::prepare_unit` analyzed — and if any executor mode ever hands
/// DCE a *different* tree, the lookup simply misses and DCE recomputes from
/// scratch, trading the speedup back for unconditional correctness.
/// Entries are consumed by [`FactCache::take`], so the cache never outlives
/// a unit's trip through the prefix group.
///
/// Clones share one store (`Rc`), which also makes the cache `!Send`: each
/// parallel worker builds its own phase list and its own cache.
#[derive(Clone, Default)]
pub struct FactCache {
    entries: std::rc::Rc<std::cell::RefCell<Vec<FactEntry>>>,
}

type FactEntry = (TreeRef, std::rc::Rc<dataflow::DceFacts>);

impl FactCache {
    /// A new, empty cache.
    pub fn new() -> FactCache {
        FactCache::default()
    }

    /// Stores `facts` for `tree` (identity-keyed).
    pub fn store(&self, tree: &TreeRef, facts: std::rc::Rc<dataflow::DceFacts>) {
        self.entries.borrow_mut().push((tree.clone(), facts));
    }

    /// Removes and returns the facts stored for exactly this tree node.
    pub fn take(&self, tree: &TreeRef) -> Option<std::rc::Rc<dataflow::DceFacts>> {
        let mut entries = self.entries.borrow_mut();
        let i = entries
            .iter()
            .position(|(t, _)| std::rc::Rc::ptr_eq(t, tree))?;
        Some(entries.swap_remove(i).1)
    }
}

/// L004/L006/L007 — the path-sensitive rules, packaged as a prepare-only
/// miniphase with an **empty** prepare mask: the whole-unit CFG + fixpoint
/// pass runs once per unit in [`MiniPhase::prepare_unit`] (before any
/// group member transforms the tree), so its findings are identical across
/// executors, pruning settings and fusion modes by construction.
#[derive(Default)]
pub struct Dataflow {
    findings: Vec<Finding>,
    cache: Option<FactCache>,
}

impl Dataflow {
    /// A dataflow rule that additionally publishes each unit's
    /// [`dataflow::DceFacts`] into `cache` for the DCE phase to consume,
    /// deriving findings and facts from one fixpoint solve
    /// ([`dataflow::analyze_unit`]).
    pub fn sharing_facts(cache: FactCache) -> Dataflow {
        Dataflow {
            findings: Vec::new(),
            cache: Some(cache),
        }
    }
}

impl PhaseInfo for Dataflow {
    fn name(&self) -> &str {
        "lintDataflow"
    }
    fn description(&self) -> &str {
        "CFG + fixpoint dataflow rules (L004/L006/L007)"
    }
}

impl MiniPhase for Dataflow {
    fn transforms(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn prepares(&self) -> NodeKindSet {
        NodeKindSet::EMPTY
    }
    fn prepare_unit(&mut self, ctx: &mut Ctx, unit_tree: &TreeRef) {
        match &self.cache {
            Some(cache) => {
                let (findings, facts) = dataflow::analyze_unit(&ctx.symbols, unit_tree);
                self.findings = findings;
                cache.store(unit_tree, std::rc::Rc::new(facts));
            }
            None => self.findings = dataflow::dataflow_findings(&ctx.symbols, unit_tree),
        }
    }
    fn take_findings(&mut self) -> Vec<Finding> {
        std::mem::take(&mut self.findings)
    }
}

lint_phase!(
    /// L005 — constant `if`/`while` conditions.
    ConstCond, "lintConstCond", "constant conditions (L005)",
    ConstCondVisitor,
    needs_symbols: false,
    prepares: [
        If => prepare_if,
        While => prepare_while,
    ]
);

/// Builds the full lint suite, in its canonical order. All four phases are
/// prepare-only and unconstrained, so a fusing plan folds them into a single
/// group (the driver prepends them to the standard pipeline via
/// [`miniphase::PhasePlan::with_prefix`]).
pub fn lint_phases() -> Vec<Box<dyn MiniPhase>> {
    vec![
        Box::new(UnusedDefs::default()),
        Box::new(Unreachable::default()),
        Box::new(Dataflow::default()),
        Box::new(ConstCond::default()),
    ]
}

/// [`lint_phases`] with the dataflow rule publishing per-unit
/// [`dataflow::DceFacts`] into `cache` — for pipelines that also run
/// [`dce::Dce::consuming_facts`] so the unit's fixpoints are solved once.
pub fn lint_phases_sharing(cache: FactCache) -> Vec<Box<dyn MiniPhase>> {
    vec![
        Box::new(UnusedDefs::default()),
        Box::new(Unreachable::default()),
        Box::new(Dataflow::sharing_facts(cache)),
        Box::new(ConstCond::default()),
    ]
}

/// Number of phases [`lint_phases`] builds.
pub const LINT_PHASE_COUNT: usize = 4;

/// The union of every lint rule's prepare mask — what the suite adds to a
/// fusion group's subtree-pruning mask. The dataflow phase contributes
/// nothing here: its whole-unit walk runs in `prepare_unit`, outside the
/// pruned traversal.
pub fn lint_mask() -> NodeKindSet {
    NodeKindSet::EMPTY
        .with(NodeKind::ValDef)
        .with(NodeKind::DefDef)
        .with(NodeKind::Ident)
        .with(NodeKind::Select)
        .with(NodeKind::Block)
        .with(NodeKind::If)
        .with(NodeKind::While)
}

/// Runs the whole lint suite over one unit tree with a plain standalone
/// pre-order walk — no miniphase machinery at all. This is both the
/// reference implementation the equivalence property tests pin the fused
/// executors against, and the baseline the `ab` bench compares the fused
/// marginal cost to. Findings are stamped with `unit` and canonically
/// sorted.
pub fn lint_unit(symbols: &SymbolTable, unit: &str, tree: &TreeRef) -> Vec<Finding> {
    let mut unused = UnusedVisitor::default();
    let mut unreachable = UnreachableVisitor::default();
    let mut constcond = ConstCondVisitor::default();

    // Explicit-stack pre-order DFS, same arrival order as the executors'
    // prepare dispatch (children in `for_each_child` order).
    let mut stack: Vec<TreeRef> = vec![tree.clone()];
    while let Some(t) = stack.pop() {
        unused.visit(symbols, &t);
        unreachable.visit(&t);
        constcond.visit(&t);
        let mut kids: Vec<TreeRef> = Vec::new();
        t.for_each_child(&mut |c| kids.push(c.clone()));
        stack.extend(kids.into_iter().rev());
    }

    let mut out = unused.flush();
    out.extend(unreachable.flush());
    out.extend(dataflow::dataflow_findings(symbols, tree));
    out.extend(constcond.flush());
    for f in &mut out {
        f.unit = unit.to_owned();
    }
    sort_findings(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_ir::{Constant, Type};
    use miniphase::{build_plan, CompilationUnit, FusionOptions, Pipeline, PlanOptions};

    fn sp(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// Builds a method symbol under root and returns it.
    fn method(ctx: &mut Ctx, name: &str) -> SymbolId {
        let root = ctx.symbols.builtins().root_pkg;
        ctx.symbols
            .new_term(root, mini_ir::Name::intern(name), Flags::METHOD, Type::Int)
    }

    fn local(ctx: &mut Ctx, owner: SymbolId, name: &str) -> SymbolId {
        ctx.symbols
            .new_term(owner, mini_ir::Name::intern(name), Flags::EMPTY, Type::Int)
    }

    #[test]
    fn unused_def_and_local_span_exact() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let dead = local(&mut ctx, m, "dead");
        let live = local(&mut ctx, m, "live");
        let root = ctx.symbols.builtins().root_pkg;
        let top = ctx.symbols.new_term(
            root,
            mini_ir::Name::intern("topDead"),
            Flags::EMPTY,
            Type::Int,
        );

        let one = ctx.lit_int(1);
        let dead_def = ctx.mk(
            TreeKind::ValDef {
                sym: dead,
                rhs: one,
            },
            Type::Nothing,
            sp(10, 20),
        );
        let two = ctx.lit_int(2);
        let live_def = ctx.mk(
            TreeKind::ValDef {
                sym: live,
                rhs: two,
            },
            Type::Nothing,
            sp(21, 30),
        );
        let live_use = ctx.mk(TreeKind::Ident { sym: live }, Type::Int, sp(31, 35));
        let body = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![dead_def, live_def]),
                expr: live_use,
            },
            Type::Int,
            sp(9, 36),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 40),
        );
        let five = ctx.lit_int(5);
        let top_def = ctx.mk(
            TreeKind::ValDef {
                sym: top,
                rhs: five,
            },
            Type::Nothing,
            sp(41, 50),
        );
        let m_use = ctx.mk(TreeKind::Ident { sym: m }, Type::Int, sp(51, 52));
        let tree = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![mdef, top_def]),
                expr: m_use,
            },
            Type::Int,
            sp(0, 53),
        );

        let found = lint_unit(&ctx.symbols, "t.ms", &tree);
        let unused: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_UNUSED_LOCAL || f.rule == RULE_UNUSED_DEF)
            .collect();
        assert_eq!(unused.len(), 2, "found: {found:?}");
        assert_eq!(unused[0].rule, RULE_UNUSED_LOCAL);
        assert_eq!(unused[0].span, sp(10, 20));
        assert_eq!(unused[0].node_kind, NodeKind::ValDef);
        assert!(unused[0].msg.contains("`dead`"));
        assert_eq!(unused[1].rule, RULE_UNUSED_DEF);
        assert_eq!(unused[1].span, sp(41, 50));
        assert!(unused[1].msg.contains("`topDead`"));
    }

    #[test]
    fn unreachable_after_return_span_exact() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let one = ctx.lit_int(1);
        let ret = ctx.mk(
            TreeKind::Return { expr: one, from: m },
            Type::Nothing,
            sp(5, 14),
        );
        let dead = ctx.mk(
            TreeKind::Literal {
                value: Constant::Int(9),
            },
            Type::Int,
            sp(15, 16),
        );
        let unit_lit = ctx.lit_unit();
        let blk = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![ret, dead]),
                expr: unit_lit,
            },
            Type::Int,
            sp(0, 20),
        );
        let found = lint_unit(&ctx.symbols, "t.ms", &blk);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_UNREACHABLE)
            .collect();
        assert_eq!(hits.len(), 1, "found: {found:?}");
        assert_eq!(hits[0].span, sp(15, 16));
        assert_eq!(hits[0].node_kind, NodeKind::Literal);
        assert!(hits[0].msg.contains("`return`"));
        assert_eq!(hits[0].severity, Severity::Warning);
    }

    #[test]
    fn unreachable_anchors_on_result_expr_when_no_trailing_stat() {
        let mut ctx = Ctx::new();
        let e = ctx.lit_unit();
        let thrown = ctx.mk(TreeKind::Throw { expr: e }, Type::Nothing, sp(0, 9));
        let result = ctx.mk(
            TreeKind::Literal {
                value: Constant::Int(3),
            },
            Type::Int,
            sp(10, 11),
        );
        let blk = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![thrown]),
                expr: result,
            },
            Type::Int,
            sp(0, 12),
        );
        let found = lint_unit(&ctx.symbols, "t.ms", &blk);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_UNREACHABLE)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].span, sp(10, 11));
        assert!(hits[0].msg.contains("`throw`"));
    }

    #[test]
    fn use_before_assign_span_exact() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let empty = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let decl = ctx.mk(
            TreeKind::ValDef { sym: x, rhs: empty },
            Type::Nothing,
            sp(0, 8),
        );
        let bad_use = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(9, 10));
        let assigned = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(11, 12));
        let seven = ctx.lit_int(7);
        let assign = ctx.mk(
            TreeKind::Assign {
                lhs: assigned,
                rhs: seven,
            },
            Type::Nothing,
            sp(11, 16),
        );
        let ok_use = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(17, 18));
        let body = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![decl, bad_use, assign]),
                expr: ok_use,
            },
            Type::Int,
            sp(0, 19),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 20),
        );
        let found = lint_unit(&ctx.symbols, "t.ms", &mdef);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == RULE_USE_BEFORE_ASSIGN)
            .collect();
        assert_eq!(hits.len(), 1, "found: {found:?}");
        assert_eq!(hits[0].span, sp(9, 10));
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].msg.contains("`x`"));
    }

    #[test]
    fn const_cond_if_and_while() {
        let mut ctx = Ctx::new();
        let t_lit = ctx.lit(Constant::Bool(true), sp(3, 7));
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let iff = ctx.mk(
            TreeKind::If {
                cond: t_lit,
                then_branch: one,
                else_branch: two,
            },
            Type::Int,
            sp(0, 12),
        );
        let f_lit = ctx.lit(Constant::Bool(false), sp(19, 24));
        let unit_lit = ctx.lit_unit();
        let wh = ctx.mk(
            TreeKind::While {
                cond: f_lit,
                body: unit_lit,
            },
            Type::Nothing,
            sp(13, 30),
        );
        // `while (true)` is idiom — not reported.
        let t_lit2 = ctx.lit(Constant::Bool(true), sp(35, 39));
        let unit_lit2 = ctx.lit_unit();
        let wh_true = ctx.mk(
            TreeKind::While {
                cond: t_lit2,
                body: unit_lit2,
            },
            Type::Nothing,
            sp(31, 45),
        );
        let unit_lit3 = ctx.lit_unit();
        let blk = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![iff, wh, wh_true]),
                expr: unit_lit3,
            },
            Type::Int,
            sp(0, 46),
        );
        let found = lint_unit(&ctx.symbols, "t.ms", &blk);
        let hits: Vec<_> = found.iter().filter(|f| f.rule == RULE_CONST_COND).collect();
        assert_eq!(hits.len(), 2, "found: {found:?}");
        assert_eq!(hits[0].span, sp(0, 12));
        assert_eq!(hits[0].node_kind, NodeKind::If);
        assert!(hits[0].msg.contains("always true"));
        assert_eq!(hits[1].span, sp(13, 30));
        assert_eq!(hits[1].node_kind, NodeKind::While);
        assert_eq!(hits[1].msg, "loop body never runs");
    }

    #[test]
    fn fused_pipeline_matches_standalone_walk() {
        // One tree exercising every rule, run through the real fused
        // executor as a prepare-only group; harvested findings must match
        // the standalone walker's canonically-sorted stream.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let dead = local(&mut ctx, m, "dead");
        let one = ctx.lit_int(1);
        let dead_def = ctx.mk(
            TreeKind::ValDef {
                sym: dead,
                rhs: one,
            },
            Type::Nothing,
            sp(10, 20),
        );
        let t_lit = ctx.lit(Constant::Bool(false), sp(25, 30));
        let two = ctx.lit_int(2);
        let three = ctx.lit_int(3);
        let iff = ctx.mk(
            TreeKind::If {
                cond: t_lit,
                then_branch: two,
                else_branch: three,
            },
            Type::Int,
            sp(21, 35),
        );
        let four = ctx.lit_int(4);
        let ret = ctx.mk(
            TreeKind::Return {
                expr: four,
                from: m,
            },
            Type::Nothing,
            sp(36, 45),
        );
        let dead_stat = ctx.lit_int(5);
        let unit_lit = ctx.lit_unit();
        let body = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![dead_def, iff, ret, dead_stat]),
                expr: unit_lit,
            },
            Type::Int,
            sp(9, 50),
        );
        let mdef = ctx.mk(
            TreeKind::DefDef {
                sym: m,
                paramss: vec![],
                rhs: body,
            },
            Type::Nothing,
            sp(0, 55),
        );
        let m_use = ctx.mk(TreeKind::Ident { sym: m }, Type::Int, sp(56, 57));
        let tree = ctx.mk(
            TreeKind::Block {
                stats: mini_ir::Kids::from(vec![mdef]),
                expr: m_use,
            },
            Type::Int,
            sp(0, 58),
        );

        let expected = lint_unit(&ctx.symbols, "t.ms", &tree);
        assert!(
            expected.iter().any(|f| f.rule == RULE_UNUSED_LOCAL)
                && expected.iter().any(|f| f.rule == RULE_CONST_COND)
                && expected.iter().any(|f| f.rule == RULE_UNREACHABLE),
            "fixture covers multiple rules: {expected:?}"
        );

        let phases = lint_phases();
        let plan = build_plan(&phases, &PlanOptions::default()).expect("lint plan");
        assert_eq!(plan.group_count(), 1, "suite fuses into one group");
        let mut pipe = Pipeline::new(phases, &plan, FusionOptions::default());
        let _ = pipe.run_unit(&mut ctx, CompilationUnit::new("t.ms", tree));
        let mut fused = std::mem::take(&mut pipe.findings);
        sort_findings(&mut fused);
        assert_eq!(fused, expected);
    }
}
