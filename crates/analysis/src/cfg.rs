//! Control-flow graph construction for the dataflow suite.
//!
//! Each `DefDef` body in a unit (and the unit's top-level statement region)
//! is lowered into a small CFG of [`Block`]s holding **linearized events**
//! in evaluation order — reads ([`EventKind::Use`]), writes
//! ([`EventKind::Assign`]) and declarations ([`EventKind::Decl`]) of
//! *method-local* variables — with explicit edges for `If`/`Match` arms,
//! `While` back-edges, `Try`/`Throw` exceptional flow, `Return` and
//! `Labeled`/`JumpTo` loops. Every graph has one entry ([`ENTRY`], no
//! events) and exactly one exit ([`EXIT`], no successors); spans are
//! retained per event so rule reports stay span-exact.
//!
//! ## What is tracked
//!
//! Only *locals* — term symbols owned directly by a method, excluding
//! parameters, synthetics and `self` — get events, and only when their
//! `ValDef` appears inside the region being lowered. Anything referenced
//! from a nested `Lambda`, `DefDef` or `ClassDef` subtree is recorded as
//! **escaped** ([`VarInfo::escaped`]): its lifetime is no longer described
//! by this graph (the closure may run at any time), so every client
//! analysis treats escaped variables conservatively (no reports, no
//! elimination). Nested `DefDef` bodies get their own CFGs from
//! [`build_unit_cfgs`].
//!
//! ## Exceptional edges
//!
//! Blocks created inside a `try` region carry the region's handler (and
//! finalizer) entries in [`Block::exc_succs`]: control may leave the block
//! from *any* event point, not just its end. The solver and its clients
//! honor that by propagating block-**entry** facts (not exit facts) along
//! exceptional edges — see [`crate::dataflow`] for the precise semantics.
//! Explicit `throw` statements get a precise *normal* edge to the
//! innermost handler entries (every prior event has executed by then).

use std::collections::HashMap;

use mini_ir::{Constant, Flags, NodeKind, Span, SymbolId, SymbolTable, TreeKind, TreeRef};

/// Index of a block within [`Cfg::blocks`].
pub type BlockId = usize;

/// The entry block: always index 0, no events, no predecessors.
pub const ENTRY: BlockId = 0;
/// The single exit block: always index 1, no events, no successors.
pub const EXIT: BlockId = 1;

/// One linearized occurrence of a tracked variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The variable is read.
    Use,
    /// The variable is written by an `Assign` statement.
    Assign {
        /// `Some` when the right-hand side is a literal constant.
        literal: Option<Constant>,
    },
    /// The variable's `ValDef` executes.
    Decl {
        /// False for `val x: T` declared without an initializer (the shape
        /// L004 exists for); re-executing such a declaration — e.g. on a
        /// loop back-edge — *un*-assigns the variable.
        init: bool,
        /// `Some` when the initializer is a literal constant.
        literal: Option<Constant>,
    },
}

/// One event: what happened, to which variable, where.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Kind of occurrence.
    pub kind: EventKind,
    /// Index into [`Cfg::vars`].
    pub var: u32,
    /// Source span of the occurrence (the whole `Assign` for writes).
    pub span: Span,
}

/// A basic block: straight-line events plus outgoing edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Events in evaluation order.
    pub events: Vec<Event>,
    /// Normal successors (fall-through, branch targets, back-edges).
    pub succs: Vec<BlockId>,
    /// Exceptional successors — handler/finalizer entries of every
    /// enclosing `try` region. Control may take these edges from *any*
    /// point in the block.
    pub exc_succs: Vec<BlockId>,
    /// Normal predecessors (computed when the graph is sealed).
    pub preds: Vec<BlockId>,
    /// Exceptional predecessors (computed when the graph is sealed).
    pub exc_preds: Vec<BlockId>,
}

/// Where a branch condition's value comes from, for the
/// constant-propagation rule (L007) and the DCE transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondSource {
    /// A literal boolean — L005's business, recorded for completeness.
    Lit(bool),
    /// A read of a tracked variable (index into [`Cfg::vars`]).
    Var(u32),
    /// Anything else.
    Opaque,
}

/// One `If`/`While` decision point, recorded at lowering time.
#[derive(Clone, Copy, Debug)]
pub struct BranchSite {
    /// The block whose terminator this branch is.
    pub block: BlockId,
    /// `NodeKind::If` or `NodeKind::While`.
    pub node_kind: NodeKind,
    /// Span of the whole `If`/`While` node.
    pub span: Span,
    /// Condition source.
    pub cond: CondSource,
}

/// One tracked variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// The variable's symbol.
    pub sym: SymbolId,
    /// Its name (for report messages).
    pub name: String,
    /// True when the variable is referenced from a nested
    /// `Lambda`/`DefDef`/`ClassDef` subtree: excluded from every report
    /// and from elimination.
    pub escaped: bool,
    /// True when some `Decl` event for it has `init: false`.
    pub declared_without_init: bool,
    /// Number of `Use` events across the graph.
    pub use_count: u32,
    /// Number of defs (`Assign` + initialized `Decl`) across the graph.
    pub def_count: u32,
    /// `Some(c)` when the variable is *bound once to a literal*: its only
    /// def is an initialized `Decl` with literal `c`, and it never
    /// escapes. Such a variable reads as `c` at every use.
    pub bound_once: Option<Constant>,
}

/// A control-flow graph for one method body or the unit's top level.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The owning method's name, or `"<top>"` for the unit region.
    pub name: String,
    /// The owning method symbol ([`SymbolId::NONE`] for the top region).
    pub method: SymbolId,
    /// Blocks; `[ENTRY]` and `[EXIT]` are always present.
    pub blocks: Vec<Block>,
    /// Tracked variables.
    pub vars: Vec<VarInfo>,
    /// `If`/`While` decision points, in lowering order.
    pub branches: Vec<BranchSite>,
    /// Per block: reachable from [`ENTRY`] along any edge kind. Blocks
    /// after a `return`/`throw`/jump terminator are legitimately
    /// unreachable; analyses skip reporting inside them.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Indices of blocks not reachable from [`ENTRY`].
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .filter(|&b| !self.reachable[b])
            .collect()
    }

    /// Structural well-formedness: every edge target in range, edge lists
    /// deduplicated, `EXIT` has no successors and no events, `ENTRY` has
    /// no predecessors, and pred/succ lists are mutually consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant. The shipped
    /// builder never produces one; the property tests call this on every
    /// generated corpus.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.blocks.len();
        if n < 2 {
            return Err("graph must contain entry and exit".into());
        }
        if !self.blocks[EXIT].succs.is_empty() || !self.blocks[EXIT].exc_succs.is_empty() {
            return Err("exit block has successors".into());
        }
        if !self.blocks[EXIT].events.is_empty() {
            return Err("exit block has events".into());
        }
        if !self.blocks[ENTRY].preds.is_empty() || !self.blocks[ENTRY].exc_preds.is_empty() {
            return Err("entry block has predecessors".into());
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            for lists in [
                (&b.succs, "succ"),
                (&b.exc_succs, "exc_succ"),
                (&b.preds, "pred"),
                (&b.exc_preds, "exc_pred"),
            ] {
                let (list, what) = lists;
                for &t in list.iter() {
                    if t >= n {
                        return Err(format!("block {bi}: {what} {t} out of range"));
                    }
                }
                let mut seen = list.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != list.len() {
                    return Err(format!("block {bi}: duplicate {what} edge"));
                }
            }
            for e in &b.events {
                if e.var as usize >= self.vars.len() {
                    return Err(format!("block {bi}: event var {} out of range", e.var));
                }
            }
            for &s in &b.succs {
                if !self.blocks[s].preds.contains(&bi) {
                    return Err(format!("block {bi} -> {s}: missing back pred"));
                }
            }
            for &s in &b.exc_succs {
                if !self.blocks[s].exc_preds.contains(&bi) {
                    return Err(format!("block {bi} -> {s}: missing back exc pred"));
                }
            }
        }
        Ok(())
    }
}

/// True when `sym` is a trackable local: a non-parameter, non-synthetic
/// term owned directly by a method.
fn trackable(symbols: &SymbolTable, sym: SymbolId) -> bool {
    if !sym.exists() {
        return false;
    }
    let info = symbols.sym(sym);
    if info
        .flags
        .is_any(Flags::PARAM | Flags::SYNTHETIC | Flags::SELF)
    {
        return false;
    }
    let owner = info.owner;
    owner.exists() && symbols.sym(owner).flags.is(Flags::METHOD)
}

/// Lowers every `DefDef` body in `tree` (plus the top-level statement
/// region) into CFGs, in pre-order encounter order with the `<top>` region
/// first. Abstract methods (empty rhs) are skipped.
pub fn build_unit_cfgs(symbols: &SymbolTable, tree: &TreeRef) -> Vec<Cfg> {
    let mut out = vec![build_region_cfg(symbols, SymbolId::NONE, "<top>", tree)];
    // Explicit-stack pre-order walk collecting every DefDef body.
    let mut stack: Vec<TreeRef> = vec![tree.clone()];
    while let Some(t) = stack.pop() {
        if let TreeKind::DefDef { sym, rhs, .. } = t.kind() {
            if !rhs.is_empty_tree() {
                let name = if sym.exists() {
                    symbols.sym(*sym).name.to_string()
                } else {
                    "<anon>".to_string()
                };
                out.push(build_region_cfg(symbols, *sym, &name, rhs));
            }
        }
        let mut kids: Vec<TreeRef> = Vec::new();
        t.for_each_child(&mut |c| kids.push(c.clone()));
        stack.extend(kids.into_iter().rev());
    }
    out
}

/// Lowers one region (a method body, or a whole unit tree treated as the
/// top-level statement region) into a CFG.
pub fn build_region_cfg(
    symbols: &SymbolTable,
    method: SymbolId,
    name: &str,
    root: &TreeRef,
) -> Cfg {
    let mut b = Builder {
        symbols,
        blocks: vec![Block::default(), Block::default()],
        cur: ENTRY,
        vars: Vec::new(),
        var_ix: HashMap::new(),
        handlers: Vec::new(),
        labels: Vec::new(),
        branches: Vec::new(),
    };
    b.lower(root);
    let end = b.cur;
    b.edge(end, EXIT);
    b.seal(name, method)
}

struct Builder<'a> {
    symbols: &'a SymbolTable,
    blocks: Vec<Block>,
    cur: BlockId,
    vars: Vec<VarInfo>,
    var_ix: HashMap<SymbolId, u32>,
    /// Stack of enclosing `try` regions; each entry is the region's
    /// exceptional targets (handler entries, then the finalizer entry).
    handlers: Vec<Vec<BlockId>>,
    /// Enclosing `Labeled` targets, innermost last.
    labels: Vec<(SymbolId, BlockId)>,
    branches: Vec<BranchSite>,
}

impl Builder<'_> {
    /// Creates a block stamped with the current exceptional targets.
    fn new_block(&mut self) -> BlockId {
        let id = self.blocks.len();
        let mut exc: Vec<BlockId> = Vec::new();
        for region in &self.handlers {
            for &h in region {
                if !exc.contains(&h) {
                    exc.push(h);
                }
            }
        }
        self.blocks.push(Block {
            exc_succs: exc,
            ..Block::default()
        });
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn var_of(&mut self, sym: SymbolId) -> Option<u32> {
        self.var_ix.get(&sym).copied()
    }

    fn declare(&mut self, sym: SymbolId) -> u32 {
        if let Some(v) = self.var_ix.get(&sym) {
            return *v;
        }
        let v = self.vars.len() as u32;
        self.vars.push(VarInfo {
            sym,
            name: self.symbols.sym(sym).name.to_string(),
            escaped: false,
            declared_without_init: false,
            use_count: 0,
            def_count: 0,
            bound_once: None,
        });
        self.var_ix.insert(sym, v);
        v
    }

    fn emit(&mut self, kind: EventKind, var: u32, span: Span) {
        self.blocks[self.cur].events.push(Event { kind, var, span });
    }

    fn literal_of(t: &TreeRef) -> Option<Constant> {
        match t.kind() {
            TreeKind::Literal { value } => Some(*value),
            _ => None,
        }
    }

    /// Marks every tracked variable referenced anywhere under `t` (a
    /// nested `Lambda`/`DefDef`/`ClassDef` subtree) as escaped.
    fn mark_escapes(&mut self, t: &TreeRef) {
        let mut stack: Vec<TreeRef> = vec![t.clone()];
        while let Some(n) = stack.pop() {
            let sym = match n.kind() {
                TreeKind::Ident { sym } => *sym,
                TreeKind::ValDef { sym, .. } => *sym,
                _ => SymbolId::NONE,
            };
            if sym.exists() {
                if let Some(v) = self.var_ix.get(&sym) {
                    self.vars[*v as usize].escaped = true;
                }
            }
            let mut kids: Vec<TreeRef> = Vec::new();
            n.for_each_child(&mut |c| kids.push(c.clone()));
            stack.extend(kids);
        }
    }

    /// Appends `t`'s events to the current block in evaluation order,
    /// splitting blocks at control flow. `self.cur` ends at the block
    /// where control continues after `t`.
    fn lower(&mut self, t: &TreeRef) {
        match t.kind() {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => {}
            TreeKind::Ident { sym } => {
                if let Some(v) = self.var_of(*sym) {
                    self.emit(EventKind::Use, v, t.span());
                }
            }
            TreeKind::Select { qual, .. } => self.lower(qual),
            TreeKind::Apply { fun, args } => {
                self.lower(fun);
                for a in args.iter() {
                    self.lower(a);
                }
            }
            TreeKind::TypeApply { fun, .. } => self.lower(fun),
            TreeKind::Typed { expr, .. }
            | TreeKind::Cast { expr, .. }
            | TreeKind::IsInstance { expr, .. } => self.lower(expr),
            TreeKind::SeqLiteral { elems, .. } => {
                for e in elems.iter() {
                    self.lower(e);
                }
            }
            TreeKind::Assign { lhs, rhs } => {
                // Evaluation order: the rhs value is computed, then stored.
                self.lower(rhs);
                if let TreeKind::Ident { sym } = lhs.kind() {
                    if let Some(v) = self.var_of(*sym) {
                        self.emit(
                            EventKind::Assign {
                                literal: Self::literal_of(rhs),
                            },
                            v,
                            t.span(),
                        );
                    }
                } else {
                    // Field stores: the receiver is evaluated (a read).
                    self.lower(lhs);
                }
            }
            TreeKind::Block { stats, expr } => {
                for s in stats.iter() {
                    self.lower(s);
                }
                self.lower(expr);
            }
            TreeKind::ValDef { sym, rhs } => {
                self.lower(rhs);
                if trackable(self.symbols, *sym) {
                    let v = self.declare(*sym);
                    let init = !rhs.is_empty_tree();
                    if !init {
                        self.vars[v as usize].declared_without_init = true;
                    }
                    self.emit(
                        EventKind::Decl {
                            init,
                            literal: Self::literal_of(rhs),
                        },
                        v,
                        t.span(),
                    );
                }
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.lower(cond);
                self.branches.push(BranchSite {
                    block: self.cur,
                    node_kind: NodeKind::If,
                    span: t.span(),
                    cond: self.cond_source(cond),
                });
                let from = self.cur;
                let join = self.new_block();
                let then_entry = self.new_block();
                self.edge(from, then_entry);
                self.cur = then_entry;
                self.lower(then_branch);
                let then_end = self.cur;
                self.edge(then_end, join);
                if else_branch.is_empty_tree() {
                    self.edge(from, join);
                } else {
                    let else_entry = self.new_block();
                    self.edge(from, else_entry);
                    self.cur = else_entry;
                    self.lower(else_branch);
                    let else_end = self.cur;
                    self.edge(else_end, join);
                }
                self.cur = join;
            }
            TreeKind::While { cond, body } => {
                let header = self.new_block();
                let from = self.cur;
                self.edge(from, header);
                self.cur = header;
                self.lower(cond);
                // Cond events may split blocks; the branch decision sits at
                // whatever block the condition ended in.
                let decide = self.cur;
                self.branches.push(BranchSite {
                    block: decide,
                    node_kind: NodeKind::While,
                    span: t.span(),
                    cond: self.cond_source(cond),
                });
                let after = self.new_block();
                let body_entry = self.new_block();
                self.edge(decide, body_entry);
                self.edge(decide, after);
                self.cur = body_entry;
                self.lower(body);
                let body_end = self.cur;
                self.edge(body_end, header); // back-edge
                self.cur = after;
            }
            TreeKind::Match { selector, cases } => {
                self.lower(selector);
                let from = self.cur;
                let join = self.new_block();
                for c in cases.iter() {
                    let entry = self.new_block();
                    self.edge(from, entry);
                    self.cur = entry;
                    if let TreeKind::CaseDef { pat, guard, body } = c.kind() {
                        self.lower_pattern(pat);
                        self.lower(guard);
                        self.lower(body);
                    }
                    let end = self.cur;
                    self.edge(end, join);
                }
                // No direct selector -> join edge: a non-matching scrutinee
                // throws (exceptional path), it does not fall through.
                self.cur = join;
            }
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => {
                let has_fin = !finalizer.is_empty_tree();
                // Targets created *outside* the new region: they are
                // protected by enclosing regions only.
                let handler_entries: Vec<BlockId> =
                    cases.iter().map(|_| self.new_block()).collect();
                let fin_entry = if has_fin {
                    Some(self.new_block())
                } else {
                    None
                };
                let join = self.new_block();
                let after_body = fin_entry.unwrap_or(join);

                let mut region = handler_entries.clone();
                if let Some(f) = fin_entry {
                    region.push(f);
                }
                self.handlers.push(region);
                let body_entry = self.new_block();
                let from = self.cur;
                self.edge(from, body_entry);
                self.cur = body_entry;
                self.lower(block);
                let body_end = self.cur;
                self.edge(body_end, after_body);
                self.handlers.pop();

                // Handlers run outside the region; if one throws while a
                // finalizer exists, the finalizer still runs.
                if let Some(f) = fin_entry {
                    self.handlers.push(vec![f]);
                }
                for (hi, c) in cases.iter().enumerate() {
                    self.cur = handler_entries[hi];
                    if let TreeKind::CaseDef { pat, guard, body } = c.kind() {
                        self.lower_pattern(pat);
                        self.lower(guard);
                        self.lower(body);
                    }
                    let end = self.cur;
                    self.edge(end, after_body);
                }
                if fin_entry.is_some() {
                    self.handlers.pop();
                }
                if let Some(f) = fin_entry {
                    self.cur = f;
                    self.lower(finalizer);
                    let end = self.cur;
                    self.edge(end, join);
                    // The rethrow path after an uncaught exception: the
                    // finalizer completes and control leaves the method.
                    self.edge(end, EXIT);
                }
                self.cur = join;
            }
            TreeKind::Throw { expr } => {
                self.lower(expr);
                let from = self.cur;
                // Precise normal edges: every event before the throw has
                // executed, so the handler sees the block's full effects.
                match self.handlers.last() {
                    Some(region) => {
                        for h in region.clone() {
                            self.edge(from, h);
                        }
                    }
                    None => self.edge(from, EXIT),
                }
                self.cur = self.new_block(); // unreachable continuation
            }
            TreeKind::Return { expr, .. } => {
                self.lower(expr);
                let from = self.cur;
                self.edge(from, EXIT);
                self.cur = self.new_block();
            }
            TreeKind::Labeled { label, body } => {
                let entry = self.new_block();
                let from = self.cur;
                self.edge(from, entry);
                self.labels.push((*label, entry));
                self.cur = entry;
                self.lower(body);
                self.labels.pop();
            }
            TreeKind::JumpTo { label, args } => {
                for a in args.iter() {
                    self.lower(a);
                }
                let target = self
                    .labels
                    .iter()
                    .rev()
                    .find(|(l, _)| l == label)
                    .map(|(_, b)| *b);
                let from = self.cur;
                match target {
                    Some(b) => self.edge(from, b), // loop back-edge
                    None => self.edge(from, EXIT), // non-local jump
                }
                self.cur = self.new_block();
            }
            // Nested code: not part of this region's control flow. Its
            // references to our locals outlive this graph's edges.
            TreeKind::Lambda { .. } | TreeKind::DefDef { .. } | TreeKind::ClassDef { .. } => {
                self.mark_escapes(t)
            }
            TreeKind::PackageDef { stats, .. } => {
                for s in stats.iter() {
                    self.lower(s);
                }
            }
            // Pattern-only kinds reached outside a pattern context (should
            // not happen on typed trees): treat conservatively as opaque.
            TreeKind::CaseDef { .. } | TreeKind::Bind { .. } | TreeKind::Alternative { .. } => {
                self.mark_escapes(t)
            }
        }
    }

    /// Lowers a pattern: binders are initialized declarations (the match
    /// machinery assigns them), stable identifiers are reads.
    fn lower_pattern(&mut self, pat: &TreeRef) {
        match pat.kind() {
            TreeKind::Bind { sym, pat } => {
                if trackable(self.symbols, *sym) {
                    let v = self.declare(*sym);
                    self.emit(
                        EventKind::Decl {
                            init: true,
                            literal: None,
                        },
                        v,
                        pat.span(),
                    );
                }
                self.lower_pattern(pat);
            }
            TreeKind::Alternative { pats } => {
                for p in pats.iter() {
                    self.lower_pattern(p);
                }
            }
            TreeKind::Typed { expr, .. } => self.lower_pattern(expr),
            TreeKind::Ident { sym } => {
                if let Some(v) = self.var_of(*sym) {
                    self.emit(EventKind::Use, v, pat.span());
                }
            }
            _ => self.lower(pat),
        }
    }

    fn cond_source(&self, cond: &TreeRef) -> CondSource {
        match cond.kind() {
            TreeKind::Literal { value } => match value.as_bool() {
                Some(b) => CondSource::Lit(b),
                None => CondSource::Opaque,
            },
            TreeKind::Ident { sym } => match self.var_ix.get(sym) {
                Some(&v) => CondSource::Var(v),
                None => CondSource::Opaque,
            },
            _ => CondSource::Opaque,
        }
    }

    fn seal(mut self, name: &str, method: SymbolId) -> Cfg {
        let n = self.blocks.len();
        // Drop exceptional edges whose region stamp outlived sealing (none
        // today — new_block snapshots the live stack), then back-fill preds.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut exc_preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for bi in 0..n {
            self.blocks[bi].succs.retain(|&t| t < n);
            self.blocks[bi].exc_succs.retain(|&t| t < n);
            for &s in &self.blocks[bi].succs {
                if !preds[s].contains(&bi) {
                    preds[s].push(bi);
                }
            }
            for &s in &self.blocks[bi].exc_succs {
                if !exc_preds[s].contains(&bi) {
                    exc_preds[s].push(bi);
                }
            }
        }
        for (bi, (p, ep)) in preds.into_iter().zip(exc_preds).enumerate() {
            self.blocks[bi].preds = p;
            self.blocks[bi].exc_preds = ep;
        }
        // Reachability over both edge kinds.
        let mut reachable = vec![false; n];
        let mut work = vec![ENTRY];
        reachable[ENTRY] = true;
        while let Some(b) = work.pop() {
            for &s in self.blocks[b].succs.iter().chain(&self.blocks[b].exc_succs) {
                if !reachable[s] {
                    reachable[s] = true;
                    work.push(s);
                }
            }
        }
        // Per-var summaries.
        for b in &self.blocks {
            for e in &b.events {
                let v = &mut self.vars[e.var as usize];
                match e.kind {
                    EventKind::Use => v.use_count += 1,
                    EventKind::Assign { .. } => v.def_count += 1,
                    EventKind::Decl { init: true, .. } => v.def_count += 1,
                    EventKind::Decl { init: false, .. } => {}
                }
            }
        }
        for b in &self.blocks {
            for e in &b.events {
                let v = &mut self.vars[e.var as usize];
                if let EventKind::Decl {
                    init: true,
                    literal: Some(c),
                } = e.kind
                {
                    if v.def_count == 1 && !v.escaped {
                        v.bound_once = Some(c);
                    }
                }
            }
        }
        for v in &mut self.vars {
            if v.escaped {
                v.bound_once = None;
            }
        }
        Cfg {
            name: name.to_string(),
            method,
            blocks: self.blocks,
            vars: self.vars,
            branches: self.branches,
            reachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_ir::{Ctx, Kids, Name, Type};

    fn sp(a: u32, b: u32) -> Span {
        Span { start: a, end: b }
    }

    fn method(ctx: &mut Ctx, name: &str) -> SymbolId {
        let root = ctx.symbols.builtins().root_pkg;
        ctx.symbols
            .new_term(root, Name::intern(name), Flags::METHOD, Type::Int)
    }

    fn local(ctx: &mut Ctx, owner: SymbolId, name: &str) -> SymbolId {
        ctx.symbols
            .new_term(owner, Name::intern(name), Flags::EMPTY, Type::Int)
    }

    #[test]
    fn straight_line_body_is_three_blocks() {
        // entry -> exit with one declaration and one use.
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let one = ctx.lit_int(1);
        let decl = ctx.mk(TreeKind::ValDef { sym: x, rhs: one }, Type::Unit, sp(0, 8));
        let use_x = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(9, 10));
        let body = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![decl]),
                expr: use_x,
            },
            Type::Int,
            sp(0, 11),
        );
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &body);
        cfg.validate().expect("well-formed");
        assert_eq!(cfg.vars.len(), 1);
        assert_eq!(cfg.vars[0].use_count, 1);
        assert_eq!(cfg.vars[0].def_count, 1);
        let events: usize = cfg.blocks.iter().map(|b| b.events.len()).sum();
        assert_eq!(events, 2);
        assert!(cfg.blocks[ENTRY].succs.contains(&EXIT));
    }

    #[test]
    fn if_produces_diamond_and_branch_site() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let c = local(&mut ctx, m, "c");
        let f_lit = ctx.lit(Constant::Bool(false), sp(0, 5));
        let cdecl = ctx.mk(
            TreeKind::ValDef { sym: c, rhs: f_lit },
            Type::Boolean,
            sp(0, 6),
        );
        let cond = ctx.mk(TreeKind::Ident { sym: c }, Type::Boolean, sp(10, 11));
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let iff = ctx.mk(
            TreeKind::If {
                cond,
                then_branch: one,
                else_branch: two,
            },
            Type::Int,
            sp(7, 20),
        );
        let blk = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![cdecl]),
                expr: iff,
            },
            Type::Int,
            sp(0, 21),
        );
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &blk);
        cfg.validate().expect("well-formed");
        assert_eq!(cfg.branches.len(), 1);
        assert_eq!(cfg.branches[0].node_kind, NodeKind::If);
        assert_eq!(cfg.branches[0].cond, CondSource::Var(0));
        assert_eq!(cfg.vars[0].bound_once, Some(Constant::Bool(false)));
        // The branch block has two successors (then entry and else entry).
        assert_eq!(cfg.blocks[cfg.branches[0].block].succs.len(), 2);
    }

    #[test]
    fn while_has_back_edge() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let cond = ctx.lit(Constant::Bool(true), sp(0, 4));
        let body = ctx.lit_unit();
        let wh = ctx.mk(TreeKind::While { cond, body }, Type::Unit, sp(0, 10));
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &wh);
        cfg.validate().expect("well-formed");
        // Some block's successor list points at an earlier block (the
        // loop header) — a back-edge.
        let has_back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| b.succs.iter().any(|&s| s <= bi && s != EXIT));
        assert!(has_back, "while produces a back-edge: {cfg:?}");
    }

    #[test]
    fn throw_targets_handler_and_continuation_is_unreachable() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let thrown = ctx.lit_int(1);
        let thr = ctx.mk(TreeKind::Throw { expr: thrown }, Type::Nothing, sp(5, 10));
        let after = ctx.lit_int(2);
        let unit_lit = ctx.lit_unit();
        let blk = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![thr, after]),
                expr: unit_lit,
            },
            Type::Unit,
            sp(0, 15),
        );
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &blk);
        cfg.validate().expect("well-formed");
        assert!(
            !cfg.unreachable_blocks().is_empty(),
            "post-throw continuation is unreachable"
        );
    }

    #[test]
    fn try_region_blocks_carry_exceptional_edges() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let zero = ctx.lit_int(0);
        let decl = ctx.mk(TreeKind::ValDef { sym: x, rhs: zero }, Type::Unit, sp(0, 5));
        let body_use = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(10, 11));
        let handler_body = ctx.lit_int(9);
        let pat = ctx.mk(TreeKind::Empty, Type::Any, sp(12, 13));
        let guard = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let case = ctx.mk(
            TreeKind::CaseDef {
                pat,
                guard,
                body: handler_body,
            },
            Type::Int,
            sp(12, 20),
        );
        let fin = ctx.mk(TreeKind::Empty, Type::Nothing, Span::SYNTHETIC);
        let tr = ctx.mk(
            TreeKind::Try {
                block: body_use,
                cases: Kids::from(vec![case]),
                finalizer: fin,
            },
            Type::Int,
            sp(6, 21),
        );
        let blk = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![decl]),
                expr: tr,
            },
            Type::Int,
            sp(0, 22),
        );
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &blk);
        cfg.validate().expect("well-formed");
        let has_exc = cfg.blocks.iter().any(|b| !b.exc_succs.is_empty());
        assert!(has_exc, "try body blocks carry exceptional successors");
    }

    #[test]
    fn lambda_references_escape() {
        let mut ctx = Ctx::new();
        let m = method(&mut ctx, "m");
        let x = local(&mut ctx, m, "x");
        let one = ctx.lit_int(1);
        let decl = ctx.mk(TreeKind::ValDef { sym: x, rhs: one }, Type::Unit, sp(0, 8));
        let inner_use = ctx.mk(TreeKind::Ident { sym: x }, Type::Int, sp(15, 16));
        let lam = ctx.mk(
            TreeKind::Lambda {
                params: Kids::new(),
                body: inner_use,
            },
            Type::Any,
            sp(10, 17),
        );
        let blk = ctx.mk(
            TreeKind::Block {
                stats: Kids::from(vec![decl]),
                expr: lam,
            },
            Type::Any,
            sp(0, 18),
        );
        let cfg = build_region_cfg(&ctx.symbols, m, "m", &blk);
        cfg.validate().expect("well-formed");
        assert!(cfg.vars[0].escaped, "lambda capture marks the var escaped");
        assert_eq!(cfg.vars[0].bound_once, None, "escaped vars are never const");
    }
}
