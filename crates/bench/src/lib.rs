//! # bench — experiment harness
//!
//! Shared helpers for the `figures` binary (which regenerates every table
//! and figure of the paper's evaluation) and the Criterion benches.

#![warn(missing_docs)]

use mini_driver::metrics::{measure, Instrumentation, Measurement};
use mini_driver::{CompileError, CompilerOptions};
use workload::{generate, Workload, WorkloadConfig};

/// A named corpus (the paper's two benchmark inputs).
pub struct Corpus {
    /// Display name.
    pub name: &'static str,
    /// The generated sources.
    pub workload: Workload,
}

/// The two corpora of §5 — "Scala standard library" scale and "Dotty
/// compiler" scale — optionally shrunk for quick runs.
pub fn corpora(quick: bool) -> Vec<Corpus> {
    let scale = |cfg: WorkloadConfig, loc: usize| WorkloadConfig {
        target_loc: loc,
        ..cfg
    };
    let (lib_loc, dotty_loc) = if quick {
        (4_000, 6_000)
    } else {
        (34_000, 50_000)
    };
    vec![
        Corpus {
            name: "stdlib-like",
            workload: generate(&scale(WorkloadConfig::stdlib_like(), lib_loc)),
        },
        Corpus {
            name: "dotty-like",
            workload: generate(&scale(WorkloadConfig::dotty_like(), dotty_loc)),
        },
    ]
}

/// Runs one fully instrumented measurement.
///
/// # Panics
///
/// Panics when the corpus fails to compile — the corpus generator and
/// pipeline are tested to keep this impossible.
pub fn measured(corpus: &Corpus, opts: &CompilerOptions, instr: Instrumentation) -> Measurement {
    match measure(&corpus.workload.sources(), opts, instr) {
        Ok(m) => m,
        Err(e) => panic!("corpus {} failed under {:?}: {e}", corpus.name, opts.mode),
    }
}

/// Runs `reps` timing-only measurements and keeps the fastest (the usual
/// min-of-N wall-clock protocol).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn timed(
    corpus: &Corpus,
    opts: &CompilerOptions,
    reps: usize,
) -> Result<Measurement, CompileError> {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let m = measure(&corpus.workload.sources(), opts, Instrumentation::default())?;
        let better = match &best {
            None => true,
            Some(b) => m.times.transforms < b.times.transforms,
        };
        if better {
            best = Some(m);
        }
    }
    Ok(best.expect("at least one rep"))
}

/// Percent change from `base` to `new` (negative = reduction).
pub fn pct(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new / base - 1.0) * 100.0
    }
}

/// `new` as a fraction of `base`, rendered like "0.65x".
pub fn ratio(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        new / base
    }
}
