//! `ab` — the productized paired in-process A/B harness.
//!
//! Cross-process benchmark timings on shared hosts drift by double-digit
//! percentages minute to minute, so `scripts/ab_pipeline.sh` pioneered a
//! paired methodology: run both contenders in ONE process, alternating
//! paired repetitions, and report per-side minima plus the median of
//! per-repetition paired ratios. That script exists to compare the working
//! tree against a *historical* stack (it vendors old crates via a git
//! worktree); this binary wraps the same methodology for comparing two
//! **configurations of the current stack**, which is what perf PRs need
//! day to day:
//!
//! ```text
//! cargo run --release -p bench --bin ab -- [SPEC_B] [SPEC_A] [REPS] [LOC]
//! ```
//!
//! A spec is `plan` followed by optional `+`-separated modifiers, where
//! `plan` is one of
//!
//! * `fused` / `mega` / `legacy` — the standard 22-phase pipeline in the
//!   usual modes;
//! * `patmat` — a sparse single-group plan of `patternMatcher` alone
//!   (transforms `Match`/`Try`, prepares `DefDef`/`ClassDef`);
//! * `tailrec` — a sparse single-group plan of `tailRec` alone (transforms
//!   `DefDef` only);
//!
//! and the modifiers are `+prune` (set `FusionOptions::subtree_pruning`
//! to `On`), `+autoprune` (`SubtreePruning::Auto` — the per-traversal
//! sparseness heuristic), `+jobsN` (run the transform
//! pipeline on `N` worker threads — e.g. `fused+jobs4`), `+check` (run
//! the dynamic tree checker between groups; composes with `+jobsN`, since
//! checked runs no longer force sequential execution — e.g.
//! `fused+jobs4+check`), `+lint` (prefix the prepare-only
//! static-analysis group; standard plans only) and `+dce` (append the
//! dataflow-driven dead-code eliminator to the analysis prefix; standard
//! plans only). When the two specs differ *only* in `+lint`, the harness
//! also times a standalone lint traversal — which since PR 9 includes the
//! CFG + fixpoint dataflow pass, so the gate budgets the fixpoint too —
//! over the same typed corpus and **fails** if the fused suite's marginal
//! cost exceeds it by more than 1.5× + 2 ms — pinning the tentpole claim
//! that riding the pipeline is never worse than a dedicated walk. Specs
//! differing *only* in `+dce` get the analogous gate against a standalone
//! fact-computation pass (2× + 2 ms: the eliminator computes its own
//! facts and then rewrites, see the gate comment). Both gates report
//! the **median** of per-repetition paired differences and gate on the
//! **lower quartile** — a real regression shifts every rep's paired
//! difference, while the sustained noise bursts on this shared host
//! inflate only part of a smoke-sized run (a min(B) − min(A) estimator
//! and even the median flake at 8 reps).
//! The default comparison is `patmat+prune` vs
//! `patmat` over the dotty-like corpus slice — the headline sparse-kind
//! pruning measurement recorded in `BENCH_pipeline.json`. The reported
//! ratio is B (first spec) relative to A (second spec); negative means B
//! is faster.
//!
//! Argument parsing is strict: an unknown spec, modifier, or non-numeric
//! `REPS`/`LOC` prints usage and exits non-zero rather than silently
//! benchmarking the defaults.

use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{
    CompilationUnit, ExecStats, MiniPhase, NoInstrumentation, PhasePlan, Pipeline, SubtreePruning,
};
use std::time::{Duration, Instant};

/// Which phase list / grouping a spec runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// The standard pipeline, fused per the planner.
    Fused,
    /// The standard pipeline, one group per phase.
    Mega,
    /// The standard pipeline in scalac-imitation mode (no copier reuse, no
    /// interning), one group per phase.
    Legacy,
    /// `patternMatcher` alone in one group.
    Patmat,
    /// `tailRec` alone in one group.
    Tailrec,
}

#[derive(Clone)]
struct Spec {
    plan: Plan,
    prune: SubtreePruning,
    jobs: usize,
    check: bool,
    lint: bool,
    dce: bool,
    label: String,
}

const USAGE: &str = "usage: ab [SPEC_B] [SPEC_A] [REPS] [LOC]\n\
     SPEC    = (fused|mega|legacy|patmat|tailrec)[+prune|+autoprune][+jobsN][+check][+lint][+dce]\n\
     REPS    = positive integer (default 16, env REPS)\n\
     LOC     = positive integer (default 12000, env CORPUS_LOC)";

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_spec(s: &str) -> Spec {
    let mut parts = s.split('+');
    let plan = match parts.next().unwrap_or_default() {
        "fused" => Plan::Fused,
        "mega" => Plan::Mega,
        "legacy" => Plan::Legacy,
        "patmat" => Plan::Patmat,
        "tailrec" => Plan::Tailrec,
        other => usage_exit(&format!("unknown spec `{other}`")),
    };
    let mut prune = SubtreePruning::Off;
    let mut jobs = 1usize;
    let mut check = false;
    let mut lint = false;
    let mut dce = false;
    for modifier in parts {
        if modifier == "prune" {
            prune = SubtreePruning::On;
        } else if modifier == "autoprune" {
            prune = SubtreePruning::Auto;
        } else if modifier == "check" {
            check = true;
        } else if modifier == "lint" {
            if matches!(plan, Plan::Patmat | Plan::Tailrec) {
                usage_exit("`+lint` composes with standard plans only");
            }
            lint = true;
        } else if modifier == "dce" {
            if matches!(plan, Plan::Patmat | Plan::Tailrec) {
                usage_exit("`+dce` composes with standard plans only");
            }
            dce = true;
        } else if let Some(n) = modifier.strip_prefix("jobs") {
            jobs = match n.parse() {
                Ok(j) if j >= 1 => j,
                _ => usage_exit(&format!("bad jobs count in `+{modifier}`")),
            };
        } else {
            usage_exit(&format!("unknown spec modifier `+{modifier}`"));
        }
    }
    Spec {
        plan,
        prune,
        jobs,
        check,
        lint,
        dce,
        label: s.to_string(),
    }
}

impl Spec {
    fn compiler_options(&self) -> CompilerOptions {
        let base = match self.plan {
            Plan::Mega => CompilerOptions::mega(),
            Plan::Legacy => CompilerOptions::legacy(),
            _ => CompilerOptions::fused(),
        };
        base.with_pruning_mode(self.prune)
            .with_jobs(self.jobs)
            .with_check(self.check)
            .with_lint(self.lint)
            .with_dce(self.dce)
    }

    /// One phase-list instance (workers each build their own); sparse plans
    /// bypass `build_plan` (their constraints name phases deliberately
    /// absent from the list).
    fn make_phases(&self) -> Vec<Box<dyn MiniPhase>> {
        match self.plan {
            Plan::Patmat => vec![Box::new(mini_phases::PatternMatcher::default())],
            Plan::Tailrec => vec![Box::new(mini_phases::TailRec)],
            _ if self.lint || self.dce => {
                // Mirrors the driver's analysis prefix: lint suite first,
                // DCE last (sharing one fixpoint solve per unit when both
                // run), then the standard pipeline.
                let mut phases: Vec<Box<dyn MiniPhase>> = if self.lint && self.dce {
                    let cache = mini_analysis::FactCache::new();
                    let mut p = mini_analysis::lint_phases_sharing(cache.clone());
                    p.push(Box::new(mini_analysis::dce::Dce::consuming_facts(cache)));
                    p
                } else if self.lint {
                    mini_analysis::lint_phases()
                } else {
                    vec![Box::new(mini_analysis::dce::Dce::default())]
                };
                phases.extend(mini_phases::standard_pipeline());
                phases
            }
            _ => mini_phases::standard_pipeline(),
        }
    }

    fn plan_for(&self, opts: &CompilerOptions) -> PhasePlan {
        match self.plan {
            Plan::Patmat | Plan::Tailrec => PhasePlan {
                groups: vec![vec![0]],
            },
            _ => standard_plan(opts).expect("standard plan is valid").1,
        }
    }
}

/// One timed run: untimed frontend, then plan construction +
/// `Pipeline::run_units` (or the parallel executor for `+jobsN` specs) +
/// teardown under the clock (the same routine as `scripts/ab_pipeline.sh`
/// and the `pipeline_throughput` bench).
fn run_once(w: &workload::Workload, spec: &Spec) -> (Duration, ExecStats) {
    let opts = spec.compiler_options();
    let mut ctx = Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    let start = Instant::now();
    opts.configure_ctx(&mut ctx);
    let plan = spec.plan_for(&opts);
    let (out, stats, failures) = if spec.jobs > 1 {
        let run = miniphase::run_units_parallel(
            &mut ctx,
            &|| spec.make_phases(),
            &plan,
            opts.fusion,
            units,
            spec.jobs,
            spec.check,
            &NoInstrumentation,
        );
        (run.units, run.stats, run.failures)
    } else {
        let mut pipe = Pipeline::new(spec.make_phases(), &plan, opts.fusion);
        pipe.check = spec.check;
        let out = pipe.run_units(&mut ctx, units);
        let stats = pipe.stats;
        let failures = std::mem::take(&mut pipe.failures);
        drop(pipe);
        (out, stats, failures)
    };
    if !failures.is_empty() {
        eprintln!(
            "FAIL: the tree checker flagged the benchmark corpus under `{}`:",
            spec.label
        );
        for f in failures.iter().take(5) {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    std::hint::black_box(&out);
    drop(out);
    drop(ctx);
    (start.elapsed(), stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 4 {
        usage_exit(&format!("unexpected extra argument `{}`", args[4]));
    }
    let spec_b = parse_spec(args.first().map(String::as_str).unwrap_or("patmat+prune"));
    let spec_a = parse_spec(args.get(1).map(String::as_str).unwrap_or("patmat"));
    // Strict numeric parsing: a typo like `3O` must fail loudly, not
    // silently benchmark the default configuration.
    let parse_count = |what: &str, v: Option<String>, default: usize| -> usize {
        match v {
            None => default,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage_exit(&format!("{what} must be a positive integer, got `{v}`")),
            },
        }
    };
    let reps = parse_count(
        "REPS",
        args.get(2).cloned().or_else(|| std::env::var("REPS").ok()),
        16,
    );
    let loc = parse_count(
        "LOC",
        args.get(3)
            .cloned()
            .or_else(|| std::env::var("CORPUS_LOC").ok()),
        12_000,
    );

    let w = workload::generate(&workload::WorkloadConfig {
        target_loc: loc,
        seed: 0xd077,
        unit_loc: 400,
    });
    println!(
        "paired in-process A/B: B = {} vs A = {} ({} reps, {} LOC dotty-like slice)",
        spec_b.label, spec_a.label, reps, w.total_loc
    );

    let mut min_a = Duration::MAX;
    let mut min_b = Duration::MAX;
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut diffs: Vec<f64> = Vec::with_capacity(reps);
    let mut stats_a = ExecStats::default();
    let mut stats_b = ExecStats::default();
    for rep in 0..reps {
        // Alternate order each repetition to cancel ordering bias.
        let b_first = rep % 2 == 0;
        let mut t_a = Duration::ZERO;
        let mut t_b = Duration::ZERO;
        for side in 0..2 {
            if (side == 0) == b_first {
                let (t, s) = run_once(&w, &spec_b);
                t_b = t;
                stats_b = s;
            } else {
                let (t, s) = run_once(&w, &spec_a);
                t_a = t;
                stats_a = s;
            }
        }
        min_a = min_a.min(t_a);
        min_b = min_b.min(t_b);
        ratios.push(t_b.as_secs_f64() / t_a.as_secs_f64());
        diffs.push(t_b.as_secs_f64() - t_a.as_secs_f64());
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = ratios[ratios.len() / 2];
    // Robust marginal-cost estimators for the gates below, from the
    // per-repetition paired differences (each difference comes from one
    // adjacent B/A pair, so host-noise spikes mostly hit both sides and
    // cancel). The *median* is reported; the *lower quartile* is gated:
    // a real regression in the measured pass shifts every rep's
    // difference, while a sustained noise burst on this shared host can
    // inflate half a smoke-sized run (observed: a min(B) − min(A)
    // estimator and even the median flake at 8 reps).
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite diffs"));
    let marginal_secs = diffs[diffs.len() / 2];
    let gate_secs = diffs[diffs.len() / 4];
    let (a, b) = (min_a.as_secs_f64(), min_b.as_secs_f64());
    println!(
        "A {label_a:>14}: min {a_ms:>8.1} ms  visits {va:>10}  pruned {pa:>10}",
        label_a = spec_a.label,
        a_ms = a * 1e3,
        va = stats_a.node_visits,
        pa = stats_a.nodes_pruned,
    );
    println!(
        "B {label_b:>14}: min {b_ms:>8.1} ms  visits {vb:>10}  pruned {pb:>10}",
        label_b = spec_b.label,
        b_ms = b * 1e3,
        vb = stats_b.node_visits,
        pb = stats_b.nodes_pruned,
    );
    println!(
        "B vs A: min-ratio {:+.1}%  median paired ratio {:+.1}%",
        (b / a - 1.0) * 100.0,
        (median - 1.0) * 100.0
    );

    // Specs that differ only in `jobs` and/or `check` (same plan, same
    // pruning, same lint) must report identical executor counters — the
    // parallel-determinism invariant, plus the rule that the dynamic
    // checker observes without perturbing the accounting. Enforce it here
    // so CI smokes like `ab fused+jobs4 fused` and
    // `ab fused+jobs4+check fused+check` are real checks, not just
    // no-crash runs.
    if spec_a.plan == spec_b.plan
        && spec_a.prune == spec_b.prune
        && spec_a.lint == spec_b.lint
        && spec_a.dce == spec_b.dce
        && stats_a != stats_b
    {
        eprintln!(
            "FAIL: same-plan specs disagree on ExecStats (jobs must not change accounting):\n  A {}: {stats_a:?}\n  B {}: {stats_b:?}",
            spec_a.label, spec_b.label
        );
        std::process::exit(1);
    }

    // When the specs differ *only* in `+lint` (B lints, A does not), the
    // timing pair isolates the fused suite's marginal cost — which since
    // PR 9 includes the CFG + fixpoint dataflow rules, so this gate also
    // budgets the fixpoint. Compare it against a standalone reference
    // traversal (`mini_analysis::lint_unit` over the same typed corpus,
    // which runs the identical dataflow pass) and fail if riding the
    // pipeline costs more than the dedicated walk (1.5× + 2 ms slack for
    // 1-vCPU timer noise) — the fusion-pays claim, enforced rather than
    // eyeballed.
    if spec_b.lint
        && !spec_a.lint
        && spec_a.plan == spec_b.plan
        && spec_a.prune == spec_b.prune
        && spec_a.jobs == spec_b.jobs
        && spec_a.check == spec_b.check
        && spec_a.dce == spec_b.dce
    {
        let standalone = time_standalone_lint(&w, reps);
        println!(
            "lint marginal cost: fused {:+.2} ms median / {:+.2} ms lower-quartile paired diff vs standalone walk {:.2} ms",
            marginal_secs * 1e3,
            gate_secs * 1e3,
            standalone.as_secs_f64() * 1e3,
        );
        let ceiling = standalone.as_secs_f64() * 1.5 + 0.002;
        if gate_secs > ceiling {
            eprintln!(
                "FAIL: fused lint marginal cost {:.2} ms (lower quartile) exceeds the standalone-walk ceiling {:.2} ms",
                gate_secs * 1e3,
                ceiling * 1e3
            );
            std::process::exit(1);
        }
    }

    // The analogous gate for `+dce`: specs differing only in the
    // eliminator pin its marginal cost against a standalone
    // fact-computation pass (CFG build + both fixpoints per unit).
    // The ceiling is TWO dataflow-pass-equivalents (+2 ms noise slack):
    // the Dce phase computes its own facts — the lint rules' per-rule
    // solutions are not cached for reuse — and then pays the
    // copy-on-write rewrite, so "facts + rewrite ≤ 2× facts" is the
    // claim this gate can enforce robustly at smoke rep counts. The
    // sharper observation (stacked on `+lint`, DCE's marginal cost
    // lands *below* one standalone dataflow pass in careful 16-rep
    // runs, and total node visits shrink) is recorded in
    // BENCH_pipeline.json → pr9_dataflow rather than gated.
    if spec_b.dce
        && !spec_a.dce
        && spec_a.plan == spec_b.plan
        && spec_a.prune == spec_b.prune
        && spec_a.jobs == spec_b.jobs
        && spec_a.check == spec_b.check
        && spec_a.lint == spec_b.lint
    {
        let standalone = time_standalone_dataflow(&w, reps);
        println!(
            "dce marginal cost: fused {:+.2} ms median / {:+.2} ms lower-quartile paired diff (eliminated {} nodes) vs standalone dataflow {:.2} ms",
            marginal_secs * 1e3,
            gate_secs * 1e3,
            stats_b.nodes_eliminated,
            standalone.as_secs_f64() * 1e3,
        );
        let ceiling = standalone.as_secs_f64() * 2.0 + 0.002;
        if gate_secs > ceiling {
            eprintln!(
                "FAIL: dce marginal cost {:.2} ms (lower quartile) exceeds the standalone-dataflow ceiling {:.2} ms",
                gate_secs * 1e3,
                ceiling * 1e3
            );
            std::process::exit(1);
        }
        if stats_b.nodes_eliminated == 0 {
            eprintln!("FAIL: `+dce` run eliminated nothing — the corpus flow seeds regressed?");
            std::process::exit(1);
        }
    }
}

/// Min-of-`reps` wall time of the standalone reference lint: a dedicated
/// pre-order walk of every typed unit through all seven rules — including
/// the CFG + fixpoint dataflow pass (L004/L006/L007) — outside any
/// pipeline. The frontend is untimed, matching `run_once`.
fn time_standalone_lint(w: &workload::Workload, reps: usize) -> Duration {
    let mut ctx = Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push((t.name, t.tree));
    }
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let mut findings = 0usize;
        for (name, tree) in &units {
            findings += mini_analysis::lint_unit(&ctx.symbols, name, tree).len();
        }
        std::hint::black_box(findings);
        best = best.min(start.elapsed());
    }
    best
}

/// Min-of-`reps` wall time of the standalone dataflow fact computation:
/// CFG construction plus the liveness and definite-assignment fixpoints
/// over every typed unit (what `Dce::transform_unit` pays before its
/// rewrite). The frontend is untimed, matching `run_once`.
fn time_standalone_dataflow(w: &workload::Workload, reps: usize) -> Duration {
    let mut ctx = Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(t.tree);
    }
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let mut facts = 0usize;
        for tree in &units {
            let f = mini_analysis::dataflow::compute_dce_facts(&ctx.symbols, tree);
            facts += f.dead_assigns.len() + f.const_branches.len();
        }
        std::hint::black_box(facts);
        best = best.min(start.elapsed());
    }
    best
}
