//! `ab` — the productized paired in-process A/B harness.
//!
//! Cross-process benchmark timings on shared hosts drift by double-digit
//! percentages minute to minute, so `scripts/ab_pipeline.sh` pioneered a
//! paired methodology: run both contenders in ONE process, alternating
//! paired repetitions, and report per-side minima plus the median of
//! per-repetition paired ratios. That script exists to compare the working
//! tree against a *historical* stack (it vendors old crates via a git
//! worktree); this binary wraps the same methodology for comparing two
//! **configurations of the current stack**, which is what perf PRs need
//! day to day:
//!
//! ```text
//! cargo run --release -p bench --bin ab -- [SPEC_B] [SPEC_A] [REPS] [LOC]
//! ```
//!
//! A spec is `plan` or `plan+prune`, where `plan` is one of
//!
//! * `fused` / `mega` / `legacy` — the standard 22-phase pipeline in the
//!   usual modes;
//! * `patmat` — a sparse single-group plan of `patternMatcher` alone
//!   (transforms `Match`/`Try`, prepares `DefDef`/`ClassDef`);
//! * `tailrec` — a sparse single-group plan of `tailRec` alone (transforms
//!   `DefDef` only);
//!
//! and `+prune` switches on `FusionOptions::subtree_pruning`. The default
//! comparison is `patmat+prune` vs `patmat` over the dotty-like corpus
//! slice — the headline sparse-kind pruning measurement recorded in
//! `BENCH_pipeline.json`. The reported ratio is B (first spec) relative to
//! A (second spec); negative means B is faster.

use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{CompilationUnit, ExecStats, MiniPhase, PhasePlan, Pipeline};
use std::time::{Duration, Instant};

/// Which phase list / grouping a spec runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// The standard pipeline, fused per the planner.
    Fused,
    /// The standard pipeline, one group per phase.
    Mega,
    /// The standard pipeline in scalac-imitation mode (no copier reuse, no
    /// interning), one group per phase.
    Legacy,
    /// `patternMatcher` alone in one group.
    Patmat,
    /// `tailRec` alone in one group.
    Tailrec,
}

#[derive(Clone)]
struct Spec {
    plan: Plan,
    prune: bool,
    label: String,
}

fn parse_spec(s: &str) -> Spec {
    let (plan_s, prune) = match s.strip_suffix("+prune") {
        Some(p) => (p, true),
        None => (s, false),
    };
    let plan = match plan_s {
        "fused" => Plan::Fused,
        "mega" => Plan::Mega,
        "legacy" => Plan::Legacy,
        "patmat" => Plan::Patmat,
        "tailrec" => Plan::Tailrec,
        other => {
            eprintln!("unknown spec `{other}` (want fused|mega|legacy|patmat|tailrec[+prune])");
            std::process::exit(2);
        }
    };
    Spec {
        plan,
        prune,
        label: s.to_string(),
    }
}

impl Spec {
    fn compiler_options(&self) -> CompilerOptions {
        let base = match self.plan {
            Plan::Mega => CompilerOptions::mega(),
            Plan::Legacy => CompilerOptions::legacy(),
            _ => CompilerOptions::fused(),
        };
        base.with_subtree_pruning(self.prune)
    }

    /// The phase list and plan; sparse plans bypass `build_plan` (their
    /// constraints name phases deliberately absent from the list).
    fn phases_and_plan(&self, opts: &CompilerOptions) -> (Vec<Box<dyn MiniPhase>>, PhasePlan) {
        let sparse: Option<Vec<Box<dyn MiniPhase>>> = match self.plan {
            Plan::Patmat => Some(vec![Box::new(mini_phases::PatternMatcher::default())]),
            Plan::Tailrec => Some(vec![Box::new(mini_phases::TailRec)]),
            _ => None,
        };
        match sparse {
            Some(phases) => {
                let plan = PhasePlan {
                    groups: vec![(0..phases.len()).collect()],
                };
                (phases, plan)
            }
            None => standard_plan(opts).expect("standard plan is valid"),
        }
    }
}

/// One timed run: untimed frontend, then plan construction +
/// `Pipeline::run_units` + teardown under the clock (the same routine as
/// `scripts/ab_pipeline.sh` and the `pipeline_throughput` bench).
fn run_once(w: &workload::Workload, spec: &Spec) -> (Duration, ExecStats) {
    let opts = spec.compiler_options();
    let mut ctx = Ctx::new();
    let mut units = Vec::new();
    for (n, s) in &w.units {
        let t = mini_front::compile_source(&mut ctx, n, s).expect("corpus parses");
        units.push(CompilationUnit::new(t.name, t.tree));
    }
    let start = Instant::now();
    opts.configure_ctx(&mut ctx);
    let (phases, plan) = spec.phases_and_plan(&opts);
    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
    let out = pipe.run_units(&mut ctx, units);
    std::hint::black_box(&out);
    let stats = pipe.stats;
    drop(out);
    drop(pipe);
    drop(ctx);
    (start.elapsed(), stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec_b = parse_spec(args.first().map(String::as_str).unwrap_or("patmat+prune"));
    let spec_a = parse_spec(args.get(1).map(String::as_str).unwrap_or("patmat"));
    let reps: usize = args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("REPS").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let loc: usize = args
        .get(3)
        .cloned()
        .or_else(|| std::env::var("CORPUS_LOC").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000);

    if reps == 0 {
        eprintln!("REPS must be at least 1");
        std::process::exit(2);
    }

    let w = workload::generate(&workload::WorkloadConfig {
        target_loc: loc,
        seed: 0xd077,
        unit_loc: 400,
    });
    println!(
        "paired in-process A/B: B = {} vs A = {} ({} reps, {} LOC dotty-like slice)",
        spec_b.label, spec_a.label, reps, w.total_loc
    );

    let mut min_a = Duration::MAX;
    let mut min_b = Duration::MAX;
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut stats_a = ExecStats::default();
    let mut stats_b = ExecStats::default();
    for rep in 0..reps {
        // Alternate order each repetition to cancel ordering bias.
        let b_first = rep % 2 == 0;
        let mut t_a = Duration::ZERO;
        let mut t_b = Duration::ZERO;
        for side in 0..2 {
            if (side == 0) == b_first {
                let (t, s) = run_once(&w, &spec_b);
                t_b = t;
                stats_b = s;
            } else {
                let (t, s) = run_once(&w, &spec_a);
                t_a = t;
                stats_a = s;
            }
        }
        min_a = min_a.min(t_a);
        min_b = min_b.min(t_b);
        ratios.push(t_b.as_secs_f64() / t_a.as_secs_f64());
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = ratios[ratios.len() / 2];
    let (a, b) = (min_a.as_secs_f64(), min_b.as_secs_f64());
    println!(
        "A {label_a:>14}: min {a_ms:>8.1} ms  visits {va:>10}  pruned {pa:>10}",
        label_a = spec_a.label,
        a_ms = a * 1e3,
        va = stats_a.node_visits,
        pa = stats_a.nodes_pruned,
    );
    println!(
        "B {label_b:>14}: min {b_ms:>8.1} ms  visits {vb:>10}  pruned {pb:>10}",
        label_b = spec_b.label,
        b_ms = b * 1e3,
        vb = stats_b.node_visits,
        pb = stats_b.nodes_pruned,
    );
    println!(
        "B vs A: min-ratio {:+.1}%  median paired ratio {:+.1}%",
        (b / a - 1.0) * 100.0,
        (median - 1.0) * 100.0
    );
}
