//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all
//! cargo run --release -p bench --bin figures -- figure6 --quick
//! ```
//!
//! Subcommands: `table2`, `section3`, `figure4`, `figure5`, `figure6`,
//! `figure7`, `figure8a`..`figure8d`, `figure9`, `checker-overhead`,
//! `ablation-fusion`, `ablation-granularity`, `ablation-prepare`, `all`.
//! `--quick` shrinks the corpora for fast runs.

use bench::{corpora, measured, pct, ratio, timed, Corpus};
use mini_driver::metrics::{Instrumentation, Measurement};
use mini_driver::{standard_plan, CompilerOptions};
use miniphase::{FusionOptions, SubtreePruning};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--plan") {
        // The Table 2-style plan listing on its own: the fusion grouping is
        // inspectable without running a single measurement (or reading the
        // planner's code).
        table2();
        return;
    }
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let cs = corpora(quick);
    match cmd {
        "table2" => table2(),
        "section3" => section3(&cs),
        "figure4" => figure4(&cs),
        "figure5" | "figure6" => {
            let ms = instrumented_runs(&cs);
            if cmd == "figure5" {
                figure5(&ms)
            } else {
                figure6(&ms)
            }
        }
        "figure7" => figure7(&instrumented_runs(&cs)),
        "figure8a" => figure8a(&instrumented_runs(&cs)),
        "figure8b" => figure8b(&instrumented_runs(&cs)),
        "figure8c" => figure8c(&instrumented_runs(&cs)),
        "figure8d" => figure8d(&instrumented_runs(&cs)),
        "figure9" => figure9(&cs),
        "checker-overhead" => checker_overhead(&cs),
        "ablation-fusion" => ablation_fusion(&cs),
        "ablation-granularity" => ablation_granularity(&cs),
        "ablation-prepare" => ablation_prepare(&cs),
        "all" => {
            table2();
            section3(&cs);
            figure4(&cs);
            let ms = instrumented_runs(&cs);
            figure5(&ms);
            figure6(&ms);
            figure7(&ms);
            figure8a(&ms);
            figure8b(&ms);
            figure8c(&ms);
            figure8d(&ms);
            figure9(&cs);
            checker_overhead(&cs);
            ablation_fusion(&cs);
            ablation_granularity(&cs);
            ablation_prepare(&cs);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            std::process::exit(2);
        }
    }
}

struct Runs<'c> {
    corpus: &'c Corpus,
    mini: Measurement,
    mega: Measurement,
}

fn instrumented_runs<'c>(cs: &'c [Corpus]) -> Vec<Runs<'c>> {
    cs.iter()
        .map(|c| Runs {
            corpus: c,
            mini: measured(c, &CompilerOptions::fused(), Instrumentation::full()),
            mega: measured(c, &CompilerOptions::mega(), Instrumentation::full()),
        })
        .collect()
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table2() {
    header("Table 2 — phase plan with fusion blocks (* = fused Miniphase)");
    let (phases, plan) = standard_plan(&CompilerOptions::fused()).expect("valid pipeline");
    print!("{}", plan.describe(&phases));
    println!(
        "{} phases in {} groups (paper: 54 phases, 6 blocks; Megaphase mode runs {} traversals)",
        phases.len(),
        plan.group_count(),
        phases.len()
    );
}

fn section3(cs: &[Corpus]) {
    header("Section 3 — target performance characteristics");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "corpus", "mode", "LOC/s (xform)", "ns/node-visit", "visits", "pruned", "traversals"
    );
    for c in cs {
        for opts in [
            CompilerOptions::fused(),
            CompilerOptions::fused().with_subtree_pruning(true),
            CompilerOptions::fused().with_pruning_mode(SubtreePruning::Auto),
            CompilerOptions::fused().with_jobs(4),
            CompilerOptions::mega(),
        ] {
            let m = timed(c, &opts, 3).expect("compiles");
            let mut mode = m.opts.mode.to_string();
            match m.opts.fusion.subtree_pruning {
                SubtreePruning::Off => {}
                SubtreePruning::On => mode.push_str("+prune"),
                SubtreePruning::Auto => mode.push_str("+autoprune"),
            }
            if m.opts.jobs > 1 {
                // Report the jobs the run *actually* used: a corpus with
                // fewer units than workers (or any other downgrade) must
                // show up here, never the silently-echoed request.
                mode.push_str(&format!("+jobs{}", m.effective_jobs));
                if m.effective_jobs != m.opts.jobs {
                    mode.push_str(&format!("(req {})", m.opts.jobs));
                }
            }
            // Zero-duration timer artifacts surface as `None`; print `n/a`
            // rather than a fabricated 0 LOC/s datapoint.
            let fmt_opt = |v: Option<f64>, prec: usize| match v {
                Some(v) => format!("{v:.prec$}"),
                None => "n/a".to_owned(),
            };
            println!(
                "{:<12} {:>12} {:>14} {:>14} {:>12} {:>12} {:>10}",
                c.name,
                mode,
                fmt_opt(m.loc_per_second(), 0),
                fmt_opt(m.ns_per_visit(), 1),
                m.exec.node_visits,
                m.exec.nodes_pruned,
                m.exec.traversals
            );
        }
    }
}

fn figure4(cs: &[Corpus]) {
    header("Figure 4 — execution time per stage (ms), Mini vs Mega");
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>10} {:>10}",
        "corpus", "mode", "frontend", "transforms", "backend", "total"
    );
    for c in cs {
        let mini = timed(c, &CompilerOptions::fused(), 3).expect("compiles");
        let mega = timed(c, &CompilerOptions::mega(), 3).expect("compiles");
        for m in [&mini, &mega] {
            println!(
                "{:<12} {:>6} {:>10.1} {:>12.1} {:>10.1} {:>10.1}",
                c.name,
                m.opts.mode.to_string(),
                m.times.frontend.as_secs_f64() * 1e3,
                m.times.transforms.as_secs_f64() * 1e3,
                m.times.backend.as_secs_f64() * 1e3,
                m.times.total().as_secs_f64() * 1e3,
            );
        }
        println!(
            "{:<12} transform-time change: {:+.0}%  (paper: -34%..-37%); total: {:+.0}% (paper: -15%..-16%)",
            c.name,
            pct(
                mini.times.transforms.as_secs_f64(),
                mega.times.transforms.as_secs_f64()
            ),
            pct(
                mini.times.total().as_secs_f64(),
                mega.times.total().as_secs_f64()
            ),
        );
    }
}

fn figure5(ms: &[Runs]) {
    header("Figure 5 — total bytes allocated in the transform pipeline");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "corpus", "mini (KB)", "mega (KB)", "change"
    );
    for r in ms {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>+7.1}%  (paper: -5%..-9%)",
            r.corpus.name,
            r.mini.alloc.bytes as f64 / 1024.0,
            r.mega.alloc.bytes as f64 / 1024.0,
            pct(r.mini.alloc.bytes as f64, r.mega.alloc.bytes as f64),
        );
    }
}

fn figure6(ms: &[Runs]) {
    header("Figure 6 — bytes tenured (promoted to the old generation)");
    println!(
        "{:<12} {:>12} {:>12} {:>8} {:>12}",
        "corpus", "mini (KB)", "mega (KB)", "change", "minor GCs"
    );
    for r in ms {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>+7.1}%  {:>6}/{:<6} (paper: -49%..-55%)",
            r.corpus.name,
            r.mini.gc.tenured_bytes as f64 / 1024.0,
            r.mega.gc.tenured_bytes as f64 / 1024.0,
            pct(
                r.mini.gc.tenured_bytes as f64,
                r.mega.gc.tenured_bytes as f64
            ),
            r.mini.gc.minor_collections,
            r.mega.gc.minor_collections,
        );
    }
}

fn figure7(ms: &[Runs]) {
    header("Figure 7 — instructions, cycles and stalled cycles (modelled)");
    println!(
        "{:<12} {:>18} {:>18} {:>18}",
        "corpus", "instructions", "cycles", "stalled"
    );
    for r in ms {
        println!(
            "{:<12} mini {:>12}  mega {:>12}   ({:+.0}% instr, {:+.0}% cycles; paper: -10% instr, -35% cycles)",
            r.corpus.name,
            r.mini.instructions,
            r.mega.instructions,
            pct(r.mini.instructions as f64, r.mega.instructions as f64),
            pct(r.mini.cycles as f64, r.mega.cycles as f64),
        );
        println!(
            "{:<12} cycles: mini {} mega {}; stalled: mini {} mega {}",
            "", r.mini.cycles, r.mega.cycles, r.mini.stalled_cycles, r.mega.stalled_cycles
        );
    }
}

fn figure8a(ms: &[Runs]) {
    header("Figure 8a — cache miss rates");
    println!(
        "{:<12} {:<18} {:>8} {:>8} {:>8}",
        "corpus", "counter", "mini", "mega", "change"
    );
    for r in ms {
        let rows = [
            (
                "L1d-load miss",
                r.mini.cache.l1d_load_miss_rate(),
                r.mega.cache.l1d_load_miss_rate(),
            ),
            (
                "L1d-store miss",
                r.mini.cache.l1d_store_miss_rate(),
                r.mega.cache.l1d_store_miss_rate(),
            ),
            (
                "LLC-load miss",
                r.mini.cache.llc_miss_rate(),
                r.mega.cache.llc_miss_rate(),
            ),
        ];
        for (name, mini, mega) in rows {
            println!(
                "{:<12} {:<18} {:>7.1}% {:>7.1}% {:>+7.1}%",
                r.corpus.name,
                name,
                mini * 100.0,
                mega * 100.0,
                pct(mini, mega),
            );
        }
    }
    println!("(paper: -47% L1-load, -17% L1-store, -40% LLC-load miss rates)");
}

fn figure8b(ms: &[Runs]) {
    header("Figure 8b — L1 cache access counts");
    for r in ms {
        let mini = r.mini.cache.l1d_loads + r.mini.cache.l1d_stores;
        let mega = r.mega.cache.l1d_loads + r.mega.cache.l1d_stores;
        println!(
            "{:<12} mini {:>12} mega {:>12}  ({:+.1}%; paper: ~-10%)",
            r.corpus.name,
            mini,
            mega,
            pct(mini as f64, mega as f64),
        );
    }
}

fn figure8c(ms: &[Runs]) {
    header("Figure 8c — accesses that miss all caches (DRAM)");
    for r in ms {
        println!(
            "{:<12} mini {:>12} mega {:>12}  ({:+.1}%; paper: -47%)",
            r.corpus.name,
            r.mini.cache.llc_misses,
            r.mega.cache.llc_misses,
            pct(
                r.mini.cache.llc_misses as f64,
                r.mega.cache.llc_misses as f64
            ),
        );
    }
}

fn figure8d(ms: &[Runs]) {
    header("Figure 8d — L1-icache misses (inclusive-LLC coupling)");
    for r in ms {
        println!(
            "{:<12} mini {:>12} mega {:>12}  ({:+.1}%; paper: -24%)",
            r.corpus.name,
            r.mini.cache.l1i_misses,
            r.mega.cache.l1i_misses,
            pct(
                r.mini.cache.l1i_misses as f64,
                r.mega.cache.l1i_misses as f64
            ),
        );
        println!(
            "{:<12} back-invalidations: mini {} mega {}",
            "", r.mini.cache.back_invalidations, r.mega.cache.back_invalidations
        );
    }
}

fn figure9(cs: &[Corpus]) {
    header("Figure 9 — Dotty-style (mini) vs scalac-style (legacy) stage times (ms)");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "corpus", "mode", "frontend", "transforms", "backend", "total"
    );
    for c in cs {
        let mini = timed(c, &CompilerOptions::fused(), 3).expect("compiles");
        let legacy = timed(c, &CompilerOptions::legacy(), 3).expect("compiles");
        for m in [&mini, &legacy] {
            println!(
                "{:<12} {:>8} {:>10.1} {:>12.1} {:>10.1} {:>10.1}",
                c.name,
                m.opts.mode.to_string(),
                m.times.frontend.as_secs_f64() * 1e3,
                m.times.transforms.as_secs_f64() * 1e3,
                m.times.backend.as_secs_f64() * 1e3,
                m.times.total().as_secs_f64() * 1e3,
            );
        }
        println!(
            "{:<12} mini transform time = {:.2}x of legacy (paper: Dotty = 0.39x..0.42x of scalac)",
            c.name,
            ratio(
                mini.times.transforms.as_secs_f64(),
                legacy.times.transforms.as_secs_f64()
            ),
        );
    }
}

fn checker_overhead(cs: &[Corpus]) {
    header("Section 6.3 — dynamic tree-checker overhead");
    for c in cs {
        let plain = timed(c, &CompilerOptions::fused(), 3).expect("compiles");
        let mut opts = CompilerOptions::fused();
        opts.check = true;
        let checked = timed(c, &opts, 3).expect("compiles with checker");
        println!(
            "{:<12} transforms: plain {:.1} ms, checked {:.1} ms -> {:.2}x (paper: ~1.5x)",
            c.name,
            plain.times.transforms.as_secs_f64() * 1e3,
            checked.times.transforms.as_secs_f64() * 1e3,
            ratio(
                checked.times.transforms.as_secs_f64(),
                plain.times.transforms.as_secs_f64()
            ),
        );
    }
}

fn ablation_fusion(cs: &[Corpus]) {
    header("Ablation — fusion fast paths (Listing 6 optimizations)");
    let variants: [(&str, FusionOptions); 3] = [
        ("full", FusionOptions::default()),
        (
            "no identity-skip",
            FusionOptions {
                identity_skip: false,
                ..FusionOptions::default()
            },
        ),
        (
            "no fast-path",
            FusionOptions {
                same_kind_fast_path: false,
                ..FusionOptions::default()
            },
        ),
    ];
    for c in cs {
        for (name, fusion) in variants {
            let mut opts = CompilerOptions::fused();
            opts.fusion = fusion;
            let m = timed(c, &opts, 3).expect("compiles");
            println!(
                "{:<12} {:<18} transforms {:>8.1} ms, member transforms {:>10}",
                c.name,
                name,
                m.times.transforms.as_secs_f64() * 1e3,
                m.exec.member_transforms,
            );
        }
    }
}

fn ablation_granularity(cs: &[Corpus]) {
    header("Ablation — fusion granularity (max phases per group)");
    for c in cs {
        for cap in [1usize, 2, 4, 8, 22] {
            let mut opts = CompilerOptions::fused();
            opts.max_group_size = Some(cap);
            let m = timed(c, &opts, 3).expect("compiles");
            println!(
                "{:<12} cap {:>2} -> {:>2} groups, transforms {:>8.1} ms, visits {:>12}",
                c.name,
                cap,
                m.groups,
                m.times.transforms.as_secs_f64() * 1e3,
                m.exec.node_visits,
            );
        }
    }
}

fn ablation_prepare(cs: &[Corpus]) {
    header("Ablation — prepare dispatch (per-kind vs run-always, §4.1)");
    for c in cs {
        for (name, always) in [("per-kind", false), ("run-always", true)] {
            let mut opts = CompilerOptions::fused();
            opts.fusion.prepare_always = always;
            let m = timed(c, &opts, 3).expect("compiles");
            println!(
                "{:<12} {:<10} transforms {:>8.1} ms, prepare calls {:>12}",
                c.name,
                name,
                m.times.transforms.as_secs_f64() * 1e3,
                m.exec.prepare_calls,
            );
        }
    }
}
