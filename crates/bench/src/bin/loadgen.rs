//! `loadgen` — the multi-tenant compile-service load harness.
//!
//! Spins up a [`CompileService`] with one tenant per simulated client and
//! replays seeded, partially-shared edit streams
//! ([`workload::client_series`]) from concurrent client threads. Each
//! client runs closed-loop (submit, wait, next edit) with a deliberate
//! mid-stream burst that overruns its bounded queue, so overload shedding
//! is exercised on every run. Chaos is injected mid-stream into client 0:
//! a one-shot worker panic by default, a multi-shot panic storm with
//! `--storm`, plus an optional shared-store corruption burst with
//! `--corrupt`.
//!
//! The run fails (exit 1) unless:
//!
//! * **zero panics escape** any fence — every tenant's `escaped_panics`
//!   is 0;
//! * **shed accounting closes** — per tenant,
//!   `submitted == completed + failed + shed + rejected`;
//! * **only the faulted tenant fails** — every other tenant completes its
//!   whole stream with zero structured failures, storm or not;
//! * the faulted tenant **recovers** — its final compile succeeds;
//! * the shared store saw **at least one cross-session hit** (clients
//!   compile the same shared units, so cold compiles after the first
//!   must reuse published artifacts).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- [CLIENTS] [UNITS] [EDITS] [--storm] [--corrupt] [--lint]
//! ```
//!
//! With `--lint` every tenant session runs the static-analysis suite and
//! the harness additionally asserts that each client's final
//! `CompileResponse` carries rendered diagnostics for the corpus's seeded
//! lint findings (unused defs, unreachable tails, constant conditions) —
//! the service-surfaced-diagnostics smoke. Without it, responses must
//! carry none.
//!
//! Defaults: 8 clients, 10 shared units, 6 edits per client. Throughput
//! and latency numbers are honest for the host they ran on — on a single
//! vCPU the tenant workers serialize, which is the point of measuring
//! queueing behaviour there.

use mini_driver::{CompileRequest, CompileService, CompilerOptions, ServiceConfig, ServiceError};
use miniphase::{FaultKind, FaultPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: loadgen [CLIENTS] [UNITS] [EDITS] [--storm] [--corrupt] [--lint]\n\
         (positive integers; defaults 8, 10 and 6)"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn tenant_name(client: usize) -> String {
    format!("client{client:02}")
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let mut storm = false;
    let mut corrupt = false;
    let mut lint = false;
    let mut nums: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--storm" => storm = true,
            "--corrupt" => corrupt = true,
            "--lint" => lint = true,
            v => match v.parse() {
                Ok(n) if n >= 1 && nums.len() < 3 => nums.push(n),
                _ => usage_exit(&format!("unexpected argument `{v}`")),
            },
        }
    }
    let clients = nums.first().copied().unwrap_or(8);
    let units = nums.get(1).copied().unwrap_or(10);
    let edits = nums.get(2).copied().unwrap_or(6);

    let config = ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::new(CompilerOptions::fused().with_jobs(2).with_lint(lint))
    };
    let mut svc = CompileService::new(config);
    for c in 0..clients {
        svc.add_tenant(tenant_name(c))
            .unwrap_or_else(|e| fail(&format!("register {}: {e}", tenant_name(c))));
    }

    let cfg = workload::LinkedConfig {
        units,
        seed: 0x10ad,
    };
    let chaos_at = edits / 2;
    let storm_plan = Arc::new(if storm {
        FaultPlan::new(0xc4a05).with_fault(FaultKind::PanicStorm, 3)
    } else {
        FaultPlan::new(0xc4a05).with_fault(FaultKind::PanicOnUnit { unit: 0 }, 1)
    });
    let fired_handle = Arc::clone(&storm_plan);
    println!(
        "loadgen: {clients} clients x ({units} shared units + 1 private), {edits} edits each, \
         queue depth {}, chaos at edit {chaos_at} ({}{})",
        config.queue_capacity,
        if storm {
            "panic storm x3"
        } else {
            "one-shot panic"
        },
        if corrupt { " + store corruption" } else { "" },
    );
    if lint {
        println!("  static-analysis suite on: responses must carry seeded diagnostics");
    }

    let t0 = Instant::now();
    // Client 0 cold-compiles alone before the rest join: the canonical
    // "first tenant populates the shared store" phase. Without it, every
    // cold probe can race ahead of every publish and the cross-hit
    // assertion becomes a coin flip on fast machines.
    let gate = Arc::new(std::sync::Barrier::new(clients));
    // Per client: (latencies, compile failures seen, last step succeeded).
    let outcomes: Vec<(Vec<Duration>, u64, bool)> = std::thread::scope(|scope| {
        let svc = &svc;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let storm_plan = Arc::clone(&storm_plan);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let tenant = tenant_name(c);
                    let script = workload::client_series(&cfg, c, edits, 0xbeef);
                    let mut latencies = Vec::new();
                    let mut failures = 0u64;
                    let mut last_ok = false;
                    // Step 0 is the cold compile of the whole corpus.
                    for step in 0..=edits {
                        if step == 0 && c != 0 {
                            gate.wait(); // join after client 0 seeded the store
                        }
                        let mut req = CompileRequest::new();
                        if step == 0 {
                            for (n, s) in &script.base.units {
                                req = req.edit(n.clone(), s.clone());
                            }
                        } else {
                            let e = &script.edits[step - 1];
                            req = req.edit(e.unit.clone(), e.source.clone());
                        }
                        if step == edits {
                            req = req.running_main();
                        }
                        if c == 0 && step == chaos_at {
                            svc.inject_tenant_faults(&tenant, Arc::clone(&storm_plan))
                                .unwrap_or_else(|e| fail(&format!("inject: {e}")));
                        }
                        // Mid-stream burst: overrun the bounded queue with
                        // disposable no-edit requests so shedding happens
                        // (tickets are waited out below to keep accounting
                        // closed before drain).
                        let mut burst_tickets = Vec::new();
                        if step == chaos_at {
                            for _ in 0..4 {
                                match svc.submit(&tenant, CompileRequest::new()) {
                                    Ok(t) => burst_tickets.push(t),
                                    Err(ServiceError::Overloaded { .. }) => {}
                                    Err(e) => fail(&format!("{tenant} burst: {e}")),
                                }
                            }
                        }
                        // The real edit: retry on shed so no edit is lost.
                        let ticket = loop {
                            match svc.submit(&tenant, req.clone()) {
                                Ok(t) => break t,
                                Err(ServiceError::Overloaded { .. }) => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(e) => fail(&format!("{tenant} submit: {e}")),
                            }
                        };
                        match ticket.wait() {
                            Ok(resp) => {
                                latencies.push(resp.latency);
                                last_ok = true;
                                if step == edits && resp.output.is_none() {
                                    fail(&format!("{tenant}: final run_main lost its output"));
                                }
                                if step == edits {
                                    // The linted service must surface the
                                    // corpus's seeded findings on every
                                    // response — including ones replayed
                                    // from the session/shared caches.
                                    if lint {
                                        for code in ["L001", "L002", "L003", "L005", "L006", "L007"]
                                        {
                                            if !resp.diagnostics.iter().any(|d| d.code == code) {
                                                fail(&format!(
                                                    "{tenant}: no {code} diagnostic in the final \
                                                     response ({} total)",
                                                    resp.diagnostics.len()
                                                ));
                                            }
                                        }
                                    } else if !resp.diagnostics.is_empty() {
                                        fail(&format!(
                                            "{tenant}: {} diagnostic(s) without --lint",
                                            resp.diagnostics.len()
                                        ));
                                    }
                                }
                            }
                            Err(ServiceError::Compile(_)) => {
                                failures += 1;
                                last_ok = false;
                            }
                            Err(e) => fail(&format!("{tenant} wait: {e}")),
                        }
                        for t in burst_tickets {
                            let _ = t.wait();
                        }
                        if step == 0 && c == 0 {
                            gate.wait(); // store seeded; release the fleet
                        }
                    }
                    (latencies, failures, last_ok)
                })
            })
            .collect();
        // Arm the store-corruption burst while clients are mid-stream.
        if corrupt {
            svc.inject_store_faults(Arc::new(
                FaultPlan::new(0xbad).with_fault(FaultKind::StoreCorruption { entries: 2 }, 1),
            ));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| fail("client thread panicked")))
            .collect()
    });
    let wall = t0.elapsed();
    let report = svc.drain();

    let mut all_latencies: Vec<Duration> =
        outcomes.iter().flat_map(|(l, _, _)| l.clone()).collect();
    all_latencies.sort_unstable();
    let completed: u64 = report.tenants.values().map(|t| t.completed).sum();
    let shed: u64 = report.tenants.values().map(|t| t.shed()).sum();
    let submitted: u64 = report.tenants.values().map(|t| t.submitted).sum();
    println!(
        "loadgen done in {:.1} ms: {completed}/{submitted} completed, {shed} shed \
         ({:.1}% shed rate), {:.1} req/s",
        wall.as_secs_f64() * 1e3,
        shed as f64 * 100.0 / submitted.max(1) as f64,
        completed as f64 / wall.as_secs_f64(),
    );
    println!(
        "  latency p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        percentile(&all_latencies, 50).as_secs_f64() * 1e3,
        percentile(&all_latencies, 99).as_secs_f64() * 1e3,
        all_latencies
            .last()
            .copied()
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
    );
    println!(
        "  store: {} hits / {} misses ({:.1}% cross-hit rate), {} publishes, \
         {} quarantined, {} evicted, {} bytes live",
        report.store.hits,
        report.store.misses,
        report.store.hits as f64 * 100.0 / (report.store.hits + report.store.misses).max(1) as f64,
        report.store.publishes,
        report.store.quarantined,
        report.store.evicted_entries,
        report.store.bytes,
    );
    for (name, t) in &report.tenants {
        println!(
            "  {name}: {}/{} ok, {} shed, {} failed, {} retries, {} degraded, \
             panics {} caught / {} escaped, {} KiB footprint",
            t.completed,
            t.submitted,
            t.shed(),
            t.failed(),
            t.service_retries,
            t.degraded_compiles,
            t.cache.worker_panics,
            t.escaped_panics,
            t.memory.total_bytes / 1024,
        );
    }
    let vm_insns: u64 = report.tenants.values().map(|t| t.vm_insns_retired).sum();
    let vm_hits: u64 = report.tenants.values().map(|t| t.vm_ic_hits).sum();
    let vm_lookups: u64 = vm_hits + report.tenants.values().map(|t| t.vm_ic_misses).sum::<u64>();
    let vm_peak: u64 = report
        .tenants
        .values()
        .map(|t| t.vm_peak_frames)
        .max()
        .unwrap_or(0);
    println!(
        "  vm: {vm_insns} insns retired across run_main executions, \
         IC {vm_hits}/{vm_lookups} ({:.1}% hit), peak frames {vm_peak}",
        vm_hits as f64 * 100.0 / vm_lookups.max(1) as f64,
    );

    // ---- Assertions ----
    for (name, t) in &report.tenants {
        if t.escaped_panics != 0 {
            fail(&format!(
                "{name}: {} panic(s) escaped the fences",
                t.escaped_panics
            ));
        }
        if t.accounted() != t.submitted {
            fail(&format!(
                "{name}: accounting leak — {} submitted vs {} accounted",
                t.submitted,
                t.accounted()
            ));
        }
        if *name != tenant_name(0) && t.failed() != 0 {
            fail(&format!(
                "{name}: {} structured failure(s) on a non-faulted tenant",
                t.failed()
            ));
        }
    }
    for (i, (_, failures, last_ok)) in outcomes.iter().enumerate() {
        if i != 0 && *failures != 0 {
            fail(&format!("client {i}: saw {failures} compile failure(s)"));
        }
        if !last_ok {
            fail(&format!(
                "client {i}: final compile did not succeed — no recovery"
            ));
        }
    }
    if !fired_handle.fired() {
        fail("the injected chaos never fired — the harness exercised nothing");
    }
    if clients > 1 && report.store.hits < (clients - 1) as u64 {
        fail(&format!(
            "only {} cross-session hit(s) — after client 0 seeded the store, every \
             joining client's cold compile should have reused shared units",
            report.store.hits
        ));
    }
    if shed == 0 {
        fail("no request was ever shed — the burst never exercised admission control");
    }
    if vm_insns == 0 {
        fail("run_main executions retired zero VM instructions — execution stats lost");
    }
    if lint {
        let reported: u64 = report.tenants.values().map(|t| t.findings_reported).sum();
        if reported == 0 {
            fail("--lint run reported zero findings in the service accounting");
        }
        println!("  lint: {reported} finding(s) surfaced across all tenants");
    }
    println!("PASS");
}
