//! `soak` — the fault-recovery soak smoke.
//!
//! Drives an incremental [`CompileSession`] (fused pipeline, `jobs = 4`)
//! through a seeded edit series over the linked corpus, with a one-shot
//! panic injected mid-series. The soak passes (exit 0) only if:
//!
//! * no panic ever escapes `CompileSession::compile` — the injected fault
//!   either heals through the sequential retry-with-downgrade or surfaces
//!   as a structured [`CompileError`];
//! * every *successful* compile is byte-identical (printed trees and
//!   merged `ExecStats`) to a from-scratch [`compile_sources`] run over
//!   the same sources;
//! * after the fault, the session recovers: all later compiles succeed.
//!
//! ```text
//! cargo run --release -p bench --bin soak -- [UNITS] [EDITS]
//! ```
//!
//! Defaults: 12 units, 20 edits. CI runs this as the robustness smoke.

use mini_driver::{compile_sources, CompileError, CompileSession, Compiled, CompilerOptions};
use miniphase::{FaultKind, FaultPlan};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\nusage: soak [UNITS] [EDITS]   (positive integers; defaults 12 and 20)");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// Printed trees + merged ExecStats: the byte-identical observation.
fn observe(c: &Compiled) -> (Vec<String>, miniphase::ExecStats) {
    let printed = c
        .units
        .iter()
        .map(|u| {
            format!(
                "// {}\n{}",
                u.name,
                mini_ir::printer::print_tree(&u.tree, &c.ctx.symbols)
            )
        })
        .collect();
    (printed, c.exec)
}

fn scratch(
    sources: &BTreeMap<String, String>,
    opts: &CompilerOptions,
) -> (Vec<String>, miniphase::ExecStats) {
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let c = compile_sources(&refs, opts).unwrap_or_else(|e| fail(&format!("scratch compile: {e}")));
    observe(&c)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 2 {
        usage_exit(&format!("unexpected extra argument `{}`", args[2]));
    }
    let parse = |what: &str, v: Option<&String>, default: usize| -> usize {
        match v {
            None => default,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage_exit(&format!("{what} must be a positive integer, got `{v}`")),
            },
        }
    };
    let units = parse("UNITS", args.first(), 12);
    let edits = parse("EDITS", args.get(1), 20);

    let opts = CompilerOptions::fused().with_jobs(4);
    let cfg = workload::LinkedConfig {
        units,
        seed: 0x50ac,
    };
    let script = workload::edit_series(&cfg, edits, 0xed1);
    let mut sources: BTreeMap<String, String> = script.base.units.iter().cloned().collect();

    let mut session = CompileSession::new(opts);
    for (n, s) in &sources {
        session.update(n.clone(), s.clone());
    }

    let fault_at = edits / 2;
    println!(
        "soak: {}-unit linked corpus, {edits} edits, jobs=4 fused, one-shot panic injected at edit {fault_at}",
        sources.len()
    );

    let t0 = Instant::now();
    let mut faulted_compiles = 0usize;
    let mut degraded_compiles = 0usize;
    let mut fault_plan: Option<Arc<FaultPlan>> = None;
    // Edit 0 is the cold compile; edits 1..=edits apply the series.
    for step in 0..=edits {
        if step > 0 {
            let edit = &script.edits[step - 1];
            sources.insert(edit.unit.clone(), edit.source.clone());
            session.update(edit.unit.clone(), edit.source.clone());
        }
        if step == fault_at {
            let plan = Arc::new(
                FaultPlan::new(step as u64).with_fault(FaultKind::PanicOnUnit { unit: 0 }, 1),
            );
            fault_plan = Some(Arc::clone(&plan));
            session.inject_faults(plan);
        }
        let result = match catch_unwind(AssertUnwindSafe(|| session.compile())) {
            Ok(r) => r,
            Err(_) => fail(&format!(
                "step {step}: a panic escaped CompileSession::compile"
            )),
        };
        match result {
            Ok(c) => {
                if c.retried_sequential {
                    degraded_compiles += 1;
                }
                if observe(&c) != scratch(&sources, &opts) {
                    fail(&format!(
                        "step {step}: session output diverged from scratch"
                    ));
                }
            }
            Err(CompileError::Internal {
                unit,
                phase,
                message,
            }) => {
                faulted_compiles += 1;
                println!(
                    "  step {step}: structured internal error (unit {:?}, {phase}): {message}",
                    unit
                );
                if step != fault_at {
                    fail(&format!(
                        "step {step}: internal error outside the injected window"
                    ));
                }
            }
            Err(e) => fail(&format!("step {step}: unexpected compile error: {e}")),
        }
    }
    session.clear_faults();

    let stats = session.cache_stats();
    println!(
        "soak done in {:.1} ms: {} compiles ({} reused / {} recompiled units), \
         {} caught worker panic(s), {} sequential retrie(s), {} degraded compile(s), {} structured failure(s)",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.compiles,
        stats.units_reused,
        stats.units_recompiled,
        stats.worker_panics,
        stats.sequential_retries,
        degraded_compiles,
        faulted_compiles,
    );
    println!(
        "robustness counters: {} corrupted artifact(s), {} evicted unit(s) ({} bytes), \
         {} sym-space retirement(s), {} shared hit(s) / {} publish(es) / {} quarantined",
        stats.corrupted_artifacts,
        stats.evicted_units,
        stats.evicted_bytes,
        stats.sym_space_retirements,
        stats.shared_hits,
        stats.shared_publishes,
        stats.shared_quarantined,
    );
    // The plan itself records consumption — sharper than inferring it from
    // downstream counters, and the same check every chaos harness uses.
    let fired = fault_plan.as_ref().is_some_and(|p| p.fired());
    if !fired {
        fail("the injected fault never fired — the soak exercised nothing");
    }
    println!("PASS");
}
