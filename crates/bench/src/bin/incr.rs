//! `incr` — the incremental-compilation benchmark.
//!
//! Compares three request shapes of the service workload over a linked
//! corpus (units with cross-unit dependencies):
//!
//! * **cold** — a full `CompileSession` compile from empty caches (the
//!   one-shot baseline every request used to pay);
//! * **warm body edit** — one unit's definition *bodies* change: the
//!   session must recompile **exactly that unit** and splice the other
//!   `N − 1` from cache;
//! * **warm signature edit** — one unit's exported interface changes: the
//!   session recompiles the edited unit plus its (transitive) dependents.
//!
//! ```text
//! cargo run --release -p bench --bin incr -- [UNITS] [REPS]
//! ```
//!
//! Defaults: 16 units, 5 reps (median reported). The run **fails** (exit 1)
//! if a warm body edit recompiles anything but exactly 1 unit, or if a warm
//! signature edit fails to cascade — the cache-correctness smoke CI relies
//! on. Wall-clock numbers are recorded to `BENCH_incremental.json` when
//! `INCR_JSON` names a path.

use mini_driver::{CompileSession, CompilerOptions};
use std::time::{Duration, Instant};
use workload::{generate_linked, linked_unit_name, linked_unit_source, LinkedConfig};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\nusage: incr [UNITS] [REPS]   (positive integers; defaults 16 and 5)");
    std::process::exit(2);
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// How many units a signature edit of `unit0000` must recompile: unit 0,
/// its *direct* dependents, and the driver (`zmain.ms`, which calls every
/// unit). Indirect dependents stay cached — their direct deps' interfaces
/// are untouched by the edit, which is exactly the non-cascade the
/// interface hash buys.
fn signature_cascade_size(cfg: &LinkedConfig) -> usize {
    let direct = (1..cfg.units)
        .filter(|&uid| workload::linked_deps(cfg, uid).contains(&0))
        .count();
    direct + 2 // + unit0000 itself + zmain.ms
}

/// One full measurement pass; returns (cold, warm-body, warm-sig) times,
/// the dependent count the signature edit cascaded to, and the session's
/// cache bookkeeping.
fn run_once(
    cfg: &LinkedConfig,
    body_salt: u64,
) -> (Duration, Duration, Duration, usize, mini_driver::CacheStats) {
    let opts = CompilerOptions::fused();
    let base = generate_linked(cfg);

    // Cold: fresh session, full compile.
    let mut session = CompileSession::new(opts);
    for (n, s) in &base.units {
        session.update(n.clone(), s.clone());
    }
    let t0 = Instant::now();
    let cold = session.compile().expect("cold compile succeeds");
    let cold_t = t0.elapsed();
    assert_eq!(cold.recompiled_units, base.units.len());

    // Warm body edit: a middle unit's bodies change.
    let body_uid = cfg.units / 2;
    session.update(
        linked_unit_name(body_uid),
        linked_unit_source(cfg, body_uid, body_salt, 0),
    );
    let t1 = Instant::now();
    let warm_body = session.compile().expect("warm body compile succeeds");
    let body_t = t1.elapsed();
    if warm_body.recompiled_units != 1 {
        eprintln!(
            "FAIL: warm body edit of {} recompiled {} units (expected exactly 1; reused {})",
            linked_unit_name(body_uid),
            warm_body.recompiled_units,
            warm_body.reused_units
        );
        std::process::exit(1);
    }

    // Warm signature edit: unit 0 (the most depended-on) toggles its
    // exported helper's arity.
    session.update(linked_unit_name(0), linked_unit_source(cfg, 0, 0, 1));
    let t2 = Instant::now();
    let warm_sig = session.compile().expect("warm signature compile succeeds");
    let sig_t = t2.elapsed();
    // Dependency-aware invalidation must recompile *exactly* the transitive
    // dependents of unit 0 (plus unit 0 itself and the driver, which calls
    // every unit) — the dep graph is deterministic, so the expected cascade
    // is computable, and both under- and over-invalidation are failures.
    let expected = signature_cascade_size(cfg);
    if warm_sig.recompiled_units != expected {
        eprintln!(
            "FAIL: signature edit of unit0000 recompiled {} unit(s), expected exactly {} (the edited unit, its transitive dependents, and the driver)",
            warm_sig.recompiled_units, expected
        );
        std::process::exit(1);
    }
    (
        cold_t,
        body_t,
        sig_t,
        warm_sig.recompiled_units,
        session.cache_stats(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 2 {
        usage_exit(&format!("unexpected extra argument `{}`", args[2]));
    }
    let parse = |what: &str, v: Option<&String>, default: usize| -> usize {
        match v {
            None => default,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage_exit(&format!("{what} must be a positive integer, got `{v}`")),
            },
        }
    };
    let units = parse("UNITS", args.first(), 16);
    if units < 2 {
        usage_exit("UNITS must be at least 2 (the signature edit needs a dependent)");
    }
    let reps = parse("REPS", args.get(1), 5);
    let cfg = LinkedConfig {
        units,
        ..LinkedConfig::incr_bench()
    };
    let loc = generate_linked(&cfg).total_loc;
    println!("incr: {units}-unit linked corpus ({loc} LOC), {reps} reps, fused pipeline");

    let mut colds = Vec::new();
    let mut bodies = Vec::new();
    let mut sigs = Vec::new();
    let mut cascade = 0usize;
    let mut cache = mini_driver::CacheStats::default();
    for rep in 0..reps {
        let (c, b, s, n, cs) = run_once(&cfg, rep as u64 + 1);
        colds.push(c);
        bodies.push(b);
        sigs.push(s);
        cascade = n;
        cache = cs;
    }
    let (cold, body, sig) = (median(colds), median(bodies), median(sigs));
    println!(
        "cold full compile         : {:>8.1} ms  ({} units recompiled)",
        ms(cold),
        units
    );
    println!(
        "warm body edit            : {:>8.1} ms  (1 unit recompiled, {} reused)  {:+.0}% vs cold",
        ms(body),
        units - 1,
        (ms(body) / ms(cold) - 1.0) * 100.0
    );
    println!(
        "warm signature edit       : {:>8.1} ms  ({} units recompiled)  {:+.0}% vs cold",
        ms(sig),
        cascade,
        (ms(sig) / ms(cold) - 1.0) * 100.0
    );
    println!(
        "session cache (per rep)   : {} reused / {} recompiled; invalidations: {} source, {} dep-cascade",
        cache.units_reused,
        cache.units_recompiled,
        cache.invalidated_by_source,
        cache.invalidated_by_deps
    );
    println!(
        "robustness (per rep)      : {} worker panic(s), {} sequential retrie(s), \
         {} corrupted artifact(s), {} evicted ({} bytes)",
        cache.worker_panics,
        cache.sequential_retries,
        cache.corrupted_artifacts,
        cache.evicted_units,
        cache.evicted_bytes
    );

    if let Ok(path) = std::env::var("INCR_JSON") {
        let json = format!(
            "{{\n  \"note\": \"CompileSession medians over the linked corpus (fused pipeline, jobs=1): cold = full compile from empty caches; warm body edit recompiles exactly 1 unit; warm signature edit recompiles the edited unit plus its transitive dependents\",\n  \"units\": {units},\n  \"corpus_loc\": {loc},\n  \"reps\": {reps},\n  \"cold_ms\": {:.3},\n  \"warm_body_edit_ms\": {:.3},\n  \"warm_signature_edit_ms\": {:.3},\n  \"signature_cascade_units\": {cascade}\n}}\n",
            ms(cold),
            ms(body),
            ms(sig)
        );
        std::fs::write(&path, json).expect("write INCR_JSON");
        println!("recorded {path}");
    }
}
