//! `exec` — paired in-process A/B harness for VM *execution* speed.
//!
//! The `ab` binary times compilation; this one times what the compiled
//! program costs to **run**. It compiles the execution-heavy corpus
//! (`workload::generate_exec`: polymorphic call sites over three classes,
//! monomorphic hot loops, deep static call chains, non-tail guest
//! recursion) exactly once, untimed, then times paired repetitions of the
//! same linked program under two [`VmOptions`] configurations in one
//! process, alternating order per repetition — the same methodology as
//! `ab`, for the same reason: cross-process timings on this shared host
//! drift by double-digit percentages.
//!
//! ```text
//! cargo run --release -p bench --bin exec -- [SPEC_B] [SPEC_A] [REPS] [ITERS]
//! ```
//!
//! A spec is `fast` (all optimizations on) or `ref` (the reference
//! interpreter: by-name `HashMap` dispatch, no caches, no fusion,
//! host-recursive frames) followed by optional `+`-separated feature
//! enables for ablation runs: `+slots` (link-time slot-resolved dispatch
//! tables), `+ic` (monomorphic inline caches), `+fuse`
//! (superinstructions), `+flat` (flat frame stack). `ref+ic` times the
//! inline caches alone; `fast` is `ref+slots+ic+fuse+flat`.
//!
//! Every repetition's captured output and result are compared
//! byte-for-byte against the first run — a paired perf harness that could
//! silently compare divergent executions would be worse than none.
//!
//! **Gate:** when B is `fast` and A is `ref` (the default invocation), the
//! lower quartile of per-repetition paired ratios must show at least a
//! 20% wall-clock reduction (ratio ≤ 0.80); the run exits non-zero
//! otherwise. The quartile, not the median, is gated for the same reason
//! as `ab`: a real regression shifts every rep, noise bursts only part of
//! a smoke-sized run. Numbers are recorded in `BENCH_exec.json`.

use mini_backend::{Program, Vm, VmOptions, VmStats};
use mini_driver::{compile_sources, CompilerOptions};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: exec [SPEC_B] [SPEC_A] [REPS] [ITERS]\n\
     SPEC    = (fast|ref)[+slots][+ic][+fuse][+flat]\n\
     REPS    = positive integer (default 9, env REPS)\n\
     ITERS   = positive integer: corpus loop trip count (default 6000, env EXEC_ITERS)";

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

#[derive(Clone)]
struct Spec {
    opts: VmOptions,
    label: String,
}

fn parse_spec(s: &str) -> Spec {
    let mut parts = s.split('+');
    let mut opts = match parts.next().unwrap_or_default() {
        "fast" => VmOptions::fast(),
        "ref" => VmOptions::reference(),
        other => usage_exit(&format!("unknown spec `{other}`")),
    };
    for modifier in parts {
        match modifier {
            "slots" => opts.resolved_dispatch = true,
            "ic" => opts.inline_caches = true,
            "fuse" => opts.superinstructions = true,
            "flat" => opts.flat_frames = true,
            other => usage_exit(&format!("unknown spec modifier `+{other}`")),
        }
    }
    Spec {
        opts,
        label: s.to_string(),
    }
}

/// One timed run: VM construction (code preparation is part of what an
/// execution engine costs) plus `run_main`. Returns the wall time, the
/// observable outcome (result rendering + output stream), and the counters.
fn run_once(program: &Program, spec: &Spec) -> (Duration, String, Vec<String>, VmStats) {
    let start = Instant::now();
    let mut vm = Vm::with_options(program, spec.opts);
    let result = vm.run_main();
    let elapsed = start.elapsed();
    let outcome = match result {
        Ok(v) => format!("ok: {v:?}"),
        Err(e) => format!("err: {e:?}"),
    };
    (elapsed, outcome, vm.out, vm.stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 4 {
        usage_exit(&format!("unexpected extra argument `{}`", args[4]));
    }
    let spec_b = parse_spec(args.first().map(String::as_str).unwrap_or("fast"));
    let spec_a = parse_spec(args.get(1).map(String::as_str).unwrap_or("ref"));
    let parse_count = |what: &str, v: Option<String>, default: usize| -> usize {
        match v {
            None => default,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage_exit(&format!("{what} must be a positive integer, got `{v}`")),
            },
        }
    };
    let reps = parse_count(
        "REPS",
        args.get(2).cloned().or_else(|| std::env::var("REPS").ok()),
        9,
    );
    let iters = parse_count(
        "ITERS",
        args.get(3)
            .cloned()
            .or_else(|| std::env::var("EXEC_ITERS").ok()),
        6_000,
    );

    // Compile once, untimed: both sides execute the same linked program.
    let cfg = workload::ExecConfig {
        iters,
        ..workload::ExecConfig::exec_bench()
    };
    let w = workload::generate_exec(&cfg);
    let program = compile_sources(&w.sources(), &CompilerOptions::fused())
        .expect("exec corpus compiles")
        .program;
    println!(
        "paired in-process execution A/B: B = {} vs A = {} ({} reps, {} units x {} iters, {} insns static)",
        spec_b.label,
        spec_a.label,
        reps,
        cfg.units,
        cfg.iters,
        program.code_size(),
    );

    let mut min_a = Duration::MAX;
    let mut min_b = Duration::MAX;
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut stats_a = VmStats::default();
    let mut stats_b = VmStats::default();
    // The observable outcome every run must reproduce byte-for-byte.
    let mut pinned: Option<(String, Vec<String>)> = None;
    for rep in 0..reps {
        let b_first = rep % 2 == 0;
        let mut t_a = Duration::ZERO;
        let mut t_b = Duration::ZERO;
        for side in 0..2 {
            let spec = if (side == 0) == b_first {
                &spec_b
            } else {
                &spec_a
            };
            let (t, outcome, out, stats) = run_once(&program, spec);
            match &pinned {
                None => pinned = Some((outcome, out)),
                Some((po, pout)) => {
                    if *po != outcome || *pout != out {
                        eprintln!(
                            "FAIL: `{}` diverged from the pinned execution:\n  pinned:  {po} ({} lines)\n  got:     {outcome} ({} lines)",
                            spec.label,
                            pout.len(),
                            out.len()
                        );
                        std::process::exit(1);
                    }
                }
            }
            if (side == 0) == b_first {
                t_b = t;
                stats_b = stats;
            } else {
                t_a = t;
                stats_a = stats;
            }
        }
        min_a = min_a.min(t_a);
        min_b = min_b.min(t_b);
        ratios.push(t_b.as_secs_f64() / t_a.as_secs_f64());
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = ratios[ratios.len() / 2];
    let quartile = ratios[ratios.len() / 4];
    let (a, b) = (min_a.as_secs_f64(), min_b.as_secs_f64());
    let print_side = |tag: &str, label: &str, secs: f64, s: &VmStats| {
        println!(
            "{tag} {label:>10}: min {ms:>8.2} ms  insns {insns:>10}  fused {fused:>9}  IC {hits}/{total} ({rate:.1}% hit)  peak frames {frames}",
            ms = secs * 1e3,
            insns = s.insns_retired,
            fused = s.fused_retired,
            hits = s.ic_hits,
            total = s.ic_hits + s.ic_misses,
            rate = s.ic_hit_rate() * 100.0,
            frames = s.peak_frames,
        );
    };
    print_side("A", &spec_a.label, a, &stats_a);
    print_side("B", &spec_b.label, b, &stats_b);
    println!(
        "B vs A: min-ratio {:+.1}%  median paired ratio {:+.1}%  lower-quartile {:+.1}%",
        (b / a - 1.0) * 100.0,
        (median - 1.0) * 100.0,
        (quartile - 1.0) * 100.0,
    );
    println!("output pinned: {} lines byte-identical across all runs", {
        pinned.as_ref().map(|(_, o)| o.len()).unwrap_or(0)
    });

    // The headline gate: the full fast configuration must beat the
    // reference interpreter by >= 20% wall clock on the call-heavy corpus.
    if spec_b.opts == VmOptions::fast() && spec_a.opts == VmOptions::reference() {
        if quartile > 0.80 {
            eprintln!(
                "FAIL: fast VM lower-quartile paired ratio {:.3} exceeds the 0.80 gate (needs >= 20% reduction)",
                quartile
            );
            std::process::exit(1);
        }
        println!(
            "gate: lower-quartile ratio {quartile:.3} <= 0.80 — fast VM delivers >= 20% wall-clock reduction"
        );
    }
}
