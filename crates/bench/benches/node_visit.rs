//! Criterion microbench for the §3 design target: nanoseconds per tree-node
//! visit for a fused block vs a single-phase traversal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{CompilationUnit, Pipeline};
use workload::{generate, WorkloadConfig};

fn bench_visits(c: &mut Criterion) {
    let w = generate(&WorkloadConfig {
        target_loc: 1_500,
        seed: 8,
        unit_loc: 300,
    });
    let mut group = c.benchmark_group("node_visit");
    group.sample_size(30);
    for opts in [CompilerOptions::fused(), CompilerOptions::mega()] {
        // Report per-visit throughput: count visits once.
        let visits = {
            let mut ctx = Ctx::new();
            let units: Vec<CompilationUnit> = w
                .units
                .iter()
                .map(|(n, s)| {
                    let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
                    CompilationUnit::new(t.name, t.tree)
                })
                .collect();
            let (phases, plan) = standard_plan(&opts).expect("plan");
            let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
            pipe.run_units(&mut ctx, units);
            pipe.stats.node_visits
        };
        group.throughput(criterion::Throughput::Elements(visits));
        group.bench_function(format!("{}_visits", opts.mode), |b| {
            b.iter_batched(
                || {
                    let mut ctx = Ctx::new();
                    let units: Vec<CompilationUnit> = w
                        .units
                        .iter()
                        .map(|(n, s)| {
                            let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
                            CompilationUnit::new(t.name, t.tree)
                        })
                        .collect();
                    (ctx, units)
                },
                |(mut ctx, units)| {
                    let (phases, plan) = standard_plan(&opts).expect("plan");
                    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
                    pipe.run_units(&mut ctx, units)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_visits);
criterion_main!(benches);
