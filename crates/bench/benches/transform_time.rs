//! Criterion bench for Figure 4: transform-pipeline time, Mini vs Mega, on
//! a mid-size corpus. The frontend runs in (untimed) setup; the routine is
//! exactly the tree-transformation pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{CompilationUnit, Pipeline};
use workload::{generate, WorkloadConfig};

fn typed_units(sources: &[(String, String)]) -> (Ctx, Vec<CompilationUnit>) {
    let mut ctx = Ctx::new();
    let units = sources
        .iter()
        .map(|(n, s)| {
            let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
            CompilationUnit::new(t.name, t.tree)
        })
        .collect();
    assert!(!ctx.has_errors());
    (ctx, units)
}

fn bench_transforms(c: &mut Criterion) {
    let w = generate(&WorkloadConfig {
        target_loc: 3_000,
        seed: 5,
        unit_loc: 300,
    });
    let mut group = c.benchmark_group("figure4_transforms");
    group.sample_size(20);
    for opts in [CompilerOptions::fused(), CompilerOptions::mega()] {
        group.bench_function(opts.mode.to_string(), |b| {
            b.iter_batched(
                || typed_units(&w.units),
                |(mut ctx, units)| {
                    let (phases, plan) = standard_plan(&opts).expect("plan");
                    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
                    pipe.run_units(&mut ctx, units)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
