//! Criterion bench for the fusion-optimization ablations (Listing 6): full
//! fast paths vs no identity-skip vs no same-kind fast path, plus the
//! prepare-dispatch variant (§4.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{CompilationUnit, FusionOptions, Pipeline};
use workload::{generate, WorkloadConfig};

fn typed_units(sources: &[(String, String)]) -> (Ctx, Vec<CompilationUnit>) {
    let mut ctx = Ctx::new();
    let units = sources
        .iter()
        .map(|(n, s)| {
            let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
            CompilationUnit::new(t.name, t.tree)
        })
        .collect();
    assert!(!ctx.has_errors());
    (ctx, units)
}

fn bench_ablation(c: &mut Criterion) {
    let w = generate(&WorkloadConfig {
        target_loc: 2_000,
        seed: 6,
        unit_loc: 250,
    });
    let mut group = c.benchmark_group("fusion_ablation");
    group.sample_size(20);
    let variants: [(&str, FusionOptions); 4] = [
        ("full", FusionOptions::default()),
        (
            "no_identity_skip",
            FusionOptions {
                identity_skip: false,
                ..FusionOptions::default()
            },
        ),
        (
            "no_same_kind_fast_path",
            FusionOptions {
                same_kind_fast_path: false,
                ..FusionOptions::default()
            },
        ),
        (
            "prepare_always",
            FusionOptions {
                prepare_always: true,
                ..FusionOptions::default()
            },
        ),
    ];
    for (name, fusion) in variants {
        let mut opts = CompilerOptions::fused();
        opts.fusion = fusion;
        group.bench_function(name, |b| {
            b.iter_batched(
                || typed_units(&w.units),
                |(mut ctx, units)| {
                    let (phases, plan) = standard_plan(&opts).expect("plan");
                    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
                    pipe.run_units(&mut ctx, units)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
