//! End-to-end pipeline throughput on the dotty-like corpus: the headline
//! number for the traversal hot path. The frontend runs once (untimed); the
//! routine is the full tree-transformation pipeline, phase-major over all
//! units, exactly as `Pipeline::run_units` executes it in production.
//!
//! Run with `CRITERION_JSON=BENCH_pipeline.json cargo bench --bench
//! pipeline_throughput` to refresh the checked-in baseline. `CORPUS_LOC`
//! scales the corpus (defaults to a laptop-friendly 12 kLOC slice of the
//! 50 kLOC dotty-like config).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mini_driver::{standard_plan, CompilerOptions};
use mini_ir::Ctx;
use miniphase::{CompilationUnit, Pipeline};
use workload::{generate, WorkloadConfig};

fn typed_units(sources: &[(String, String)]) -> (Ctx, Vec<CompilationUnit>) {
    let mut ctx = Ctx::new();
    let units = sources
        .iter()
        .map(|(n, s)| {
            let t = mini_front::compile_source(&mut ctx, n, s).expect("parses");
            CompilationUnit::new(t.name, t.tree)
        })
        .collect();
    assert!(!ctx.has_errors());
    (ctx, units)
}

fn bench_pipeline(c: &mut Criterion) {
    let loc: usize = std::env::var("CORPUS_LOC")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000);
    let w = generate(&WorkloadConfig {
        target_loc: loc,
        ..WorkloadConfig::dotty_like()
    });
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(12);
    group.throughput(Throughput::Elements(w.total_loc as u64));
    for opts in [
        CompilerOptions::fused(),
        CompilerOptions::mega(),
        CompilerOptions::legacy(),
    ] {
        group.bench_function(format!("{}_dotty_like", opts.mode), |b| {
            b.iter_batched(
                || typed_units(&w.units),
                |(mut ctx, units)| {
                    opts.configure_ctx(&mut ctx);
                    let (phases, plan) = standard_plan(&opts).expect("plan");
                    let mut pipe = Pipeline::new(phases, &plan, opts.fusion);
                    pipe.run_units(&mut ctx, units)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
