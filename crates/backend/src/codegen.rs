//! The code generator (`GenBCode` analogue).
//!
//! Consumes fully lowered trees — after the whole Miniphase pipeline has run
//! there are no `Match`/`Lambda`/`TypeApply` nodes and all types are erased —
//! and produces a [`Program`] for the VM.

use crate::bytecode::*;
use mini_ir::{std_names, Ctx, Flags, Name, SymbolId, TreeKind, TreeRef, Type};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// A lowering-contract violation: the trees were not fully lowered, or
/// reference something the backend cannot express.
#[derive(Clone, Debug)]
pub struct CodegenError {
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.msg)
    }
}

impl std::error::Error for CodegenError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodegenError> {
    Err(CodegenError { msg: msg.into() })
}

/// Generates a runnable [`Program`] from lowered compilation-unit trees.
///
/// # Errors
///
/// Returns a [`CodegenError`] if the trees still contain constructs that the
/// phases were supposed to eliminate (`Match`, `Lambda`, generic types, ...).
pub fn generate(ctx: &Ctx, units: &[TreeRef]) -> Result<Program, CodegenError> {
    let mut gen = Gen {
        ctx,
        program: Program::default(),
        class_of: HashMap::new(),
        field_slot: HashMap::new(),
        fn_of: HashMap::new(),
        class_defs: Vec::new(),
        static_defs: Vec::new(),
        methods: RefCell::new(MethodInterner::default()),
    };
    gen.collect(units)?;
    gen.layout()?;
    gen.declare_functions()?;
    gen.compile_all()?;
    gen.program.method_names = gen.methods.into_inner().names;
    gen.program.link();
    Ok(gen.program)
}

/// Method-selector interner shared by all function compilers (interior
/// mutability: `FnCompiler` holds the `Gen` immutably while emitting).
#[derive(Default)]
struct MethodInterner {
    names: Vec<Name>,
    index: HashMap<Name, MethodSlot>,
}

struct Gen<'a> {
    ctx: &'a Ctx,
    program: Program,
    class_of: HashMap<SymbolId, ClassId>,
    field_slot: HashMap<SymbolId, u16>,
    fn_of: HashMap<SymbolId, FnId>,
    /// (class sym, body trees).
    class_defs: Vec<(SymbolId, Vec<TreeRef>)>,
    static_defs: Vec<TreeRef>,
    methods: RefCell<MethodInterner>,
}

impl<'a> Gen<'a> {
    /// Intern a method selector into the program's slot table.
    fn method_slot(&self, name: Name) -> MethodSlot {
        let mut m = self.methods.borrow_mut();
        if let Some(&s) = m.index.get(&name) {
            return s;
        }
        let s = m.names.len() as MethodSlot;
        m.names.push(name);
        m.index.insert(name, s);
        s
    }

    fn collect(&mut self, units: &[TreeRef]) -> Result<(), CodegenError> {
        // Builtin classes first (function traits + Any), so closure classes
        // can reference them.
        let b = self.ctx.symbols.builtins();
        for sym in std::iter::once(b.any_class).chain(b.function_classes) {
            let id = self.program.classes.len() as ClassId;
            self.class_of.insert(sym, id);
            self.program.classes.push(VmClass::new(
                self.ctx.symbols.sym(sym).name.as_str().to_owned(),
                vec![id],
                0,
            ));
        }
        for unit in units {
            let TreeKind::PackageDef { stats, .. } = unit.kind() else {
                return err("expected PackageDef at unit root");
            };
            for s in stats {
                match s.kind() {
                    TreeKind::ClassDef { sym, body } => {
                        let id = self.program.classes.len() as ClassId;
                        self.class_of.insert(*sym, id);
                        self.program.classes.push(VmClass::new(
                            self.ctx.symbols.full_name(*sym),
                            Vec::new(),
                            0,
                        ));
                        self.class_defs.push((*sym, body.to_vec()));
                    }
                    TreeKind::DefDef { .. } => self.static_defs.push(s.clone()),
                    TreeKind::Empty => {}
                    other => {
                        return err(format!("unexpected top-level {:?} node", other.node_kind()))
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes linearizations and field layouts. A class's fields are laid
    /// out base-classes-first so that inherited field slots agree.
    fn layout(&mut self) -> Result<(), CodegenError> {
        let class_defs: HashMap<SymbolId, Vec<TreeRef>> = self
            .class_defs
            .iter()
            .map(|(s, b)| (*s, b.clone()))
            .collect();
        for (sym, _) in self.class_defs.clone() {
            let id = self.class_of[&sym];
            let lin_syms = self.ctx.symbols.linearization(sym);
            let lin: Vec<ClassId> = lin_syms
                .iter()
                .filter_map(|s| self.class_of.get(s).copied())
                .collect();
            // Local layout: base classes first; the same field may resolve
            // to different local slots in different classes (trait fields),
            // so instructions carry global ids resolved through the class.
            let mut resolve = HashMap::new();
            let mut local = 0u16;
            for base in lin_syms.iter().rev() {
                if let Some(body) = class_defs.get(base) {
                    for m in body {
                        if let TreeKind::ValDef { sym: f, .. } = m.kind() {
                            let next_gid = self.field_slot.len() as u16;
                            let gid = *self.field_slot.entry(*f).or_insert(next_gid);
                            if let std::collections::hash_map::Entry::Vacant(e) = resolve.entry(gid)
                            {
                                e.insert(local);
                                local += 1;
                            }
                        }
                    }
                }
            }
            let c = &mut self.program.classes[id as usize];
            c.linearization = lin;
            c.n_fields = local;
            c.field_resolve = resolve;
        }
        Ok(())
    }

    /// Assigns `FnId`s and builds vtables (base methods first so derived
    /// definitions override).
    fn declare_functions(&mut self) -> Result<(), CodegenError> {
        // Statics.
        for d in self.static_defs.clone() {
            let TreeKind::DefDef { sym, .. } = d.kind() else {
                unreachable!("collected as DefDef")
            };
            let id = self.reserve(*sym);
            if self.ctx.symbols.sym(*sym).name == std_names::main() {
                self.program.entry = Some(id);
            }
        }
        // Methods.
        for (sym, body) in self.class_defs.clone() {
            for m in &body {
                if let TreeKind::DefDef { sym: ms, .. } = m.kind() {
                    self.reserve(*ms);
                    let _ = sym;
                }
            }
        }
        // Vtables from linearizations.
        for (sym, _) in self.class_defs.clone() {
            let id = self.class_of[&sym];
            let lin = self.ctx.symbols.linearization(sym);
            let mut vtable = HashMap::new();
            for base in lin.iter().rev() {
                for d in self.ctx.symbols.decls_of(*base) {
                    let sd = self.ctx.symbols.sym(d);
                    // Constructors are included: they are only reached via
                    // CallDirect on the exact class.
                    if sd.flags.is(Flags::METHOD) && !sd.flags.is(Flags::DEFERRED) {
                        if let Some(&f) = self.fn_of.get(&d) {
                            vtable.insert(sd.name, f);
                        }
                    }
                }
            }
            self.program.classes[id as usize].vtable = vtable;
        }
        Ok(())
    }

    fn reserve(&mut self, sym: SymbolId) -> FnId {
        let id = self.program.functions.len() as FnId;
        self.fn_of.insert(sym, id);
        self.program.functions.push(Function {
            name: self.ctx.symbols.full_name(sym),
            n_params: 0,
            n_locals: 0,
            code: Vec::new(),
            handlers: Vec::new(),
        });
        id
    }

    fn compile_all(&mut self) -> Result<(), CodegenError> {
        for d in self.static_defs.clone() {
            self.compile_def(&d, None)?;
        }
        for (cls, body) in self.class_defs.clone() {
            for m in &body {
                if matches!(m.kind(), TreeKind::DefDef { .. }) {
                    self.compile_def(m, Some(cls))?;
                }
            }
        }
        Ok(())
    }

    fn compile_def(&mut self, d: &TreeRef, in_class: Option<SymbolId>) -> Result<(), CodegenError> {
        let TreeKind::DefDef { sym, paramss, rhs } = d.kind() else {
            return err("expected DefDef");
        };
        if rhs.is_empty_tree() {
            // Abstract method: leave an empty body that traps if called.
            return Ok(());
        }
        let fid = self.fn_of[sym];
        let mut c = FnCompiler {
            gen: self,
            slots: HashMap::new(),
            next_slot: 0,
            code: Vec::new(),
            handlers: Vec::new(),
            labels: HashMap::new(),
        };
        if in_class.is_some() {
            c.next_slot = 1; // slot 0 = this
        }
        for clause in paramss {
            for p in clause {
                let ps = p.def_sym();
                let slot = c.next_slot;
                c.next_slot += 1;
                c.slots.insert(ps, slot);
            }
        }
        let n_params = c.next_slot;
        c.expr(rhs)?;
        c.code.push(Insn::Ret);
        let (code, handlers, n_locals) = (c.code, c.handlers, c.next_slot);
        let f = &mut self.program.functions[fid as usize];
        f.n_params = n_params;
        f.code = code;
        f.handlers = handlers;
        f.n_locals = n_locals;
        Ok(())
    }
}

struct FnCompiler<'g, 'a> {
    gen: &'g Gen<'a>,
    slots: HashMap<SymbolId, u16>,
    next_slot: u16,
    code: Vec<Insn>,
    handlers: Vec<Handler>,
    labels: HashMap<SymbolId, (u32, Vec<u16>)>,
}

impl FnCompiler<'_, '_> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, i: Insn) -> u32 {
        let pc = self.pc();
        self.code.push(i);
        pc
    }

    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.code[at as usize] {
            Insn::Jump(t) | Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn slot(&mut self, sym: SymbolId) -> u16 {
        if let Some(&s) = self.slots.get(&sym) {
            return s;
        }
        let s = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(sym, s);
        s
    }

    fn type_test(&self, t: &Type) -> Result<TypeTest, CodegenError> {
        Ok(match t {
            Type::Any => TypeTest::Any,
            Type::AnyRef => TypeTest::AnyRef,
            Type::Int => TypeTest::Int,
            Type::Boolean => TypeTest::Bool,
            Type::Unit => TypeTest::Unit,
            Type::Str => TypeTest::Str,
            Type::Null => TypeTest::Null,
            Type::Array(_) => TypeTest::Array,
            Type::Nothing => TypeTest::Null, // uninhabited; test never passes usefully
            Type::Class { sym, .. } => match self.gen.class_of.get(sym) {
                Some(&c) => TypeTest::Class(c),
                None => TypeTest::Any,
            },
            other => return err(format!("type {other} not erased before backend")),
        })
    }

    fn stat(&mut self, t: &TreeRef) -> Result<(), CodegenError> {
        match t.kind() {
            TreeKind::ValDef { sym, rhs } => {
                if rhs.is_empty_tree() {
                    return err("local val without initializer reached backend");
                }
                self.expr(rhs)?;
                let s = self.slot(*sym);
                self.emit(Insn::Store(s));
                Ok(())
            }
            TreeKind::Empty => Ok(()),
            _ => {
                self.expr(t)?;
                self.emit(Insn::Pop);
                Ok(())
            }
        }
    }

    fn expr(&mut self, t: &TreeRef) -> Result<(), CodegenError> {
        match t.kind() {
            TreeKind::Empty => {
                self.emit(Insn::ConstUnit);
            }
            TreeKind::Literal { value } => {
                self.emit(match value {
                    mini_ir::Constant::Unit => Insn::ConstUnit,
                    mini_ir::Constant::Bool(b) => Insn::ConstBool(*b),
                    mini_ir::Constant::Int(i) => Insn::ConstInt(*i),
                    mini_ir::Constant::Str(s) => Insn::ConstStr(*s),
                    mini_ir::Constant::Null => Insn::ConstNull,
                });
            }
            TreeKind::Ident { sym } => {
                let Some(&s) = self.slots.get(sym) else {
                    return err(format!(
                        "reference to `{}` is not a local slot (was it lifted?)",
                        self.gen.ctx.symbols.full_name(*sym)
                    ));
                };
                self.emit(Insn::Load(s));
            }
            TreeKind::This { .. } => {
                self.emit(Insn::Load(0));
            }
            TreeKind::Select { qual, name, sym } => {
                // Field read.
                if name.as_str() == "length" && matches!(qual.tpe(), Type::Array(_)) {
                    self.expr(qual)?;
                    self.emit(Insn::ALen);
                    return Ok(());
                }
                if name.as_str() == "length" && *qual.tpe() == Type::Str {
                    self.expr(qual)?;
                    self.emit(Insn::SLen);
                    return Ok(());
                }
                if sym.exists() {
                    if let Some(&slot) = self.gen.field_slot.get(sym) {
                        self.expr(qual)?;
                        self.emit(Insn::GetField(slot));
                        return Ok(());
                    }
                }
                return err(format!("naked method selection `{name}` reached backend"));
            }
            TreeKind::Apply { fun, args } => self.apply(t, fun, args)?,
            TreeKind::Block { stats, expr } => {
                for s in stats {
                    self.stat(s)?;
                }
                self.expr(expr)?;
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond)?;
                let jf = self.emit(Insn::JumpIfFalse(0));
                self.expr(then_branch)?;
                let je = self.emit(Insn::Jump(0));
                let else_pc = self.pc();
                self.patch(jf, else_pc);
                self.expr(else_branch)?;
                let end = self.pc();
                self.patch(je, end);
            }
            TreeKind::While { cond, body } => {
                let start = self.pc();
                self.expr(cond)?;
                let jf = self.emit(Insn::JumpIfFalse(0));
                self.expr(body)?;
                self.emit(Insn::Pop);
                self.emit(Insn::Jump(start));
                let end = self.pc();
                self.patch(jf, end);
                self.emit(Insn::ConstUnit);
            }
            TreeKind::Assign { lhs, rhs } => match lhs.kind() {
                TreeKind::Ident { sym } => {
                    self.expr(rhs)?;
                    let s = self.slot(*sym);
                    self.emit(Insn::Store(s));
                    self.emit(Insn::ConstUnit);
                }
                TreeKind::Select { qual, sym, name } => {
                    let Some(&slot) = self.gen.field_slot.get(sym) else {
                        return err(format!("assignment to non-field `{name}`"));
                    };
                    self.expr(qual)?;
                    self.expr(rhs)?;
                    self.emit(Insn::PutField(slot));
                    self.emit(Insn::ConstUnit);
                }
                other => return err(format!("bad assignment target {:?}", other.node_kind())),
            },
            TreeKind::Labeled { label, body } => {
                let param_slots: Vec<u16> = self
                    .gen
                    .ctx
                    .symbols
                    .sym(*label)
                    .decls
                    .iter()
                    .map(|&p| self.slot(p))
                    .collect();
                let pc = self.pc();
                self.labels.insert(*label, (pc, param_slots));
                self.expr(body)?;
            }
            TreeKind::JumpTo { label, args } => {
                for a in args {
                    self.expr(a)?;
                }
                let (pc, slots) = self
                    .labels
                    .get(label)
                    .cloned()
                    .ok_or_else(|| CodegenError {
                        msg: "jump to unknown label".into(),
                    })?;
                if slots.len() != args.len() {
                    return err("label arity mismatch");
                }
                for &s in slots.iter().rev() {
                    self.emit(Insn::Store(s));
                }
                self.emit(Insn::Jump(pc));
                // Unreachable, but keep the stack shape honest for linear
                // readers of the code.
            }
            TreeKind::Cast { expr, tpe } => {
                self.expr(expr)?;
                let tt = self.type_test(tpe)?;
                self.emit(Insn::Cast(tt));
            }
            TreeKind::IsInstance { expr, tpe } => {
                self.expr(expr)?;
                let tt = self.type_test(tpe)?;
                self.emit(Insn::IsInstance(tt));
            }
            TreeKind::Typed { expr, .. } => {
                // Transparent ascription.
                self.expr(expr)?;
            }
            TreeKind::Throw { expr } => {
                self.expr(expr)?;
                self.emit(Insn::Throw);
            }
            TreeKind::Return { expr, .. } => {
                self.expr(expr)?;
                self.emit(Insn::Ret);
            }
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => self.try_expr(block, cases, finalizer)?,
            TreeKind::SeqLiteral { elems, .. } => {
                self.emit(Insn::ConstInt(elems.len() as i64));
                self.emit(Insn::NewArray);
                for (i, e) in elems.iter().enumerate() {
                    self.emit(Insn::Dup);
                    self.emit(Insn::ConstInt(i as i64));
                    self.expr(e)?;
                    self.emit(Insn::AStore);
                    self.emit(Insn::Pop);
                }
            }
            other => {
                return err(format!(
                    "{:?} node survived the pipeline into the backend",
                    other.node_kind()
                ))
            }
        }
        Ok(())
    }

    fn try_expr(
        &mut self,
        block: &TreeRef,
        cases: &[TreeRef],
        finalizer: &TreeRef,
    ) -> Result<(), CodegenError> {
        let start = self.pc();
        self.expr(block)?;
        let end = self.pc();
        let mut end_jumps = vec![self.emit(Insn::Jump(0))];
        if !cases.is_empty() {
            let target = self.pc();
            // Post-PatternMatcher contract: exactly one catch-all case whose
            // pattern is a simple binder.
            if cases.len() != 1 {
                return err("multiple catch cases reached backend (PatternMatcher skipped?)");
            }
            let TreeKind::CaseDef { pat, guard, body } = cases[0].kind() else {
                return err("catch case is not a CaseDef");
            };
            if !guard.is_empty_tree() {
                return err("guarded catch case reached backend");
            }
            let TreeKind::Bind { sym, .. } = pat.kind() else {
                return err("catch pattern not lowered to a simple binder");
            };
            let s = self.slot(*sym);
            self.emit(Insn::Store(s));
            self.expr(body)?;
            end_jumps.push(self.emit(Insn::Jump(0)));
            self.handlers.push(Handler { start, end, target });
        }
        let after_catch = self.pc();
        for j in end_jumps {
            self.patch(j, after_catch);
        }
        if !finalizer.is_empty_tree() {
            // Normal path: result is on the stack; save, run finalizer,
            // restore.
            let tmp = self.next_slot;
            self.next_slot += 1;
            self.emit(Insn::Store(tmp));
            self.expr(finalizer)?;
            self.emit(Insn::Pop);
            self.emit(Insn::Load(tmp));
            let done = self.emit(Insn::Jump(0));
            // Exceptional path: covers the protected+catch region.
            let target = self.pc();
            let exc = self.next_slot;
            self.next_slot += 1;
            self.emit(Insn::Store(exc));
            self.expr(finalizer)?;
            self.emit(Insn::Pop);
            self.emit(Insn::Load(exc));
            self.emit(Insn::Throw);
            self.handlers.push(Handler {
                start,
                end: after_catch,
                target,
            });
            let end_pc = self.pc();
            self.patch(done, end_pc);
        }
        Ok(())
    }

    fn apply(
        &mut self,
        node: &TreeRef,
        fun: &TreeRef,
        args: &[TreeRef],
    ) -> Result<(), CodegenError> {
        match fun.kind() {
            // Constructor call: `new C(...)` / `new Array[T](n)`.
            TreeKind::Select { qual, name, .. }
                if matches!(qual.kind(), TreeKind::New { .. }) && *name == std_names::init() =>
            {
                let TreeKind::New { tpe } = qual.kind() else {
                    unreachable!("matched above")
                };
                if matches!(tpe, Type::Array(_)) {
                    if args.len() != 1 {
                        return err("array allocation takes one argument");
                    }
                    self.expr(&args[0])?;
                    self.emit(Insn::NewArray);
                    return Ok(());
                }
                let Some(cls_sym) = tpe.class_sym() else {
                    return err(format!("cannot allocate {tpe}"));
                };
                let Some(&cid) = self.gen.class_of.get(&cls_sym) else {
                    return err(format!(
                        "unknown class `{}`",
                        self.gen.ctx.symbols.full_name(cls_sym)
                    ));
                };
                self.emit(Insn::New(cid));
                self.emit(Insn::Dup);
                for a in args {
                    self.expr(a)?;
                }
                let slot = self.gen.method_slot(std_names::init());
                self.emit(Insn::CallDirect(cid, slot, args.len() as u16 + 1));
                self.emit(Insn::Pop); // drop the unit returned by <init>
                Ok(())
            }
            TreeKind::Select { qual, name, sym } => {
                self.intrinsic_or_call(node, qual, *name, *sym, args)
            }
            TreeKind::Ident { sym } => {
                // Static call (top-level def) or builtin println.
                if *sym == self.gen.ctx.symbols.builtins().println_fn {
                    if args.len() != 1 {
                        return err("println takes one argument");
                    }
                    self.expr(&args[0])?;
                    self.emit(Insn::Println);
                    return Ok(());
                }
                let Some(&fid) = self.gen.fn_of.get(sym) else {
                    return err(format!(
                        "call to unknown function `{}`",
                        self.gen.ctx.symbols.full_name(*sym)
                    ));
                };
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Insn::CallStatic(fid, args.len() as u16));
                Ok(())
            }
            other => err(format!("cannot call through {:?} node", other.node_kind())),
        }
    }

    fn intrinsic_or_call(
        &mut self,
        node: &TreeRef,
        qual: &TreeRef,
        name: Name,
        sym: SymbolId,
        args: &[TreeRef],
    ) -> Result<(), CodegenError> {
        let n = name.as_str();
        // Array intrinsics.
        if matches!(qual.tpe(), Type::Array(_)) {
            match n {
                "apply" if args.len() == 1 => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.emit(Insn::ALoad);
                    return Ok(());
                }
                "update" if args.len() == 2 => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.expr(&args[1])?;
                    self.emit(Insn::AStore);
                    return Ok(());
                }
                "length" => {
                    self.expr(qual)?;
                    self.emit(Insn::ALen);
                    return Ok(());
                }
                _ => {}
            }
        }
        // Primitive / universal operators (no resolved symbol).
        if !sym.exists() {
            match (n, args.len()) {
                ("&&", 1) => {
                    self.expr(qual)?;
                    let jf = self.emit(Insn::JumpIfFalse(0));
                    self.expr(&args[0])?;
                    let je = self.emit(Insn::Jump(0));
                    let lf = self.pc();
                    self.patch(jf, lf);
                    self.emit(Insn::ConstBool(false));
                    let end = self.pc();
                    self.patch(je, end);
                    return Ok(());
                }
                ("||", 1) => {
                    self.expr(qual)?;
                    let jt = self.emit(Insn::JumpIfTrue(0));
                    self.expr(&args[0])?;
                    let je = self.emit(Insn::Jump(0));
                    let lt = self.pc();
                    self.patch(jt, lt);
                    self.emit(Insn::ConstBool(true));
                    let end = self.pc();
                    self.patch(je, end);
                    return Ok(());
                }
                ("!", 0) => {
                    self.expr(qual)?;
                    self.emit(Insn::Not);
                    return Ok(());
                }
                ("-", 0) => {
                    self.expr(qual)?;
                    self.emit(Insn::Neg);
                    return Ok(());
                }
                ("+", 1) if *node.tpe() == Type::Str => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.emit(Insn::Concat);
                    return Ok(());
                }
                (op @ ("+" | "-" | "*" | "/" | "%" | "<" | ">" | "<=" | ">="), 1) => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.emit(match op {
                        "+" => Insn::Add,
                        "-" => Insn::Sub,
                        "*" => Insn::Mul,
                        "/" => Insn::Div,
                        "%" => Insn::Mod,
                        "<" => Insn::CmpLt,
                        ">" => Insn::CmpGt,
                        "<=" => Insn::CmpLe,
                        _ => Insn::CmpGe,
                    });
                    return Ok(());
                }
                ("==", 1) => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.emit(Insn::CmpEq);
                    return Ok(());
                }
                ("!=", 1) => {
                    self.expr(qual)?;
                    self.expr(&args[0])?;
                    self.emit(Insn::CmpEq);
                    self.emit(Insn::Not);
                    return Ok(());
                }
                _ => {
                    // A by-name virtual call (e.g. trait-init calls emitted
                    // before the init symbol exists): dispatch dynamically.
                    self.expr(qual)?;
                    for a in args {
                        self.expr(a)?;
                    }
                    let slot = self.gen.method_slot(name);
                    self.emit(Insn::CallVirtual(slot, args.len() as u16 + 1));
                    return Ok(());
                }
            }
        }
        // Universal members of Any.
        let b = self.gen.ctx.symbols.builtins();
        if sym == b.equals_meth {
            self.expr(qual)?;
            self.expr(&args[0])?;
            self.emit(Insn::CmpEq);
            return Ok(());
        }
        if sym == b.to_string_meth {
            self.expr(qual)?;
            self.emit(Insn::ToStr);
            return Ok(());
        }
        if sym == b.get_class_meth {
            self.expr(qual)?;
            self.emit(Insn::GetClassName);
            return Ok(());
        }
        // Super call: direct dispatch into the defining class.
        if let TreeKind::Super { .. } = qual.kind() {
            let owner = self.gen.ctx.symbols.sym(sym).owner;
            let Some(&cid) = self.gen.class_of.get(&owner) else {
                return err("super call into unknown class");
            };
            self.emit(Insn::Load(0));
            for a in args {
                self.expr(a)?;
            }
            let slot = self.gen.method_slot(name);
            self.emit(Insn::CallDirect(cid, slot, args.len() as u16 + 1));
            return Ok(());
        }
        // Plain virtual call.
        self.expr(qual)?;
        for a in args {
            self.expr(a)?;
        }
        let slot = self.gen.method_slot(name);
        self.emit(Insn::CallVirtual(slot, args.len() as u16 + 1));
        Ok(())
    }
}

/// Peephole superinstruction selection over one function body.
///
/// Fuses the hottest decoded pairs — `Load;Load` and `Load;ConstInt` (the
/// preamble of almost every binary op), `ConstInt;Add` and `Add;Store`
/// (the increment/accumulate patterns), `Load;CallStatic` (the last-arg
/// push of every call chain) and integer-compare + conditional branch
/// (every loop header) — into single [`Insn`] variants. A pair is
/// only fused when control cannot enter between its halves: any jump
/// target, handler start/end boundary, or handler target is a **barrier**.
/// Jump operands and handler ranges are remapped to the compacted pc
/// space.
///
/// Codegen stores plain code in the [`Program`]; the VM applies this pass
/// to a prepared copy when `VmOptions::superinstructions` is on, so a
/// single linked program serves both fast and reference execution. Fused
/// instructions charge fuel per constituent instruction, keeping
/// out-of-fuel traps position-identical with the reference interpreter.
pub fn fuse(code: &[Insn], handlers: &[Handler]) -> (Vec<Insn>, Vec<Handler>) {
    let n = code.len();
    let mut barrier = vec![false; n + 1];
    for i in code {
        if let Insn::Jump(t) | Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) = *i {
            barrier[t as usize] = true;
        }
    }
    for h in handlers {
        barrier[h.start as usize] = true;
        barrier[h.end as usize] = true;
        barrier[h.target as usize] = true;
    }
    let mut out = Vec::with_capacity(n);
    let mut new_pc = vec![0u32; n + 1];
    let mut pc = 0usize;
    while pc < n {
        new_pc[pc] = out.len() as u32;
        let fused = if pc + 1 < n && !barrier[pc + 1] {
            fuse_pair(code[pc], code[pc + 1])
        } else {
            None
        };
        match fused {
            Some(f) => {
                // The consumed half is never a jump/handler target (it was
                // not a barrier), so its remap entry is unreferenced.
                new_pc[pc + 1] = out.len() as u32;
                out.push(f);
                pc += 2;
            }
            None => {
                out.push(code[pc]);
                pc += 1;
            }
        }
    }
    new_pc[n] = out.len() as u32;
    for i in &mut out {
        match i {
            Insn::Jump(t)
            | Insn::JumpIfFalse(t)
            | Insn::JumpIfTrue(t)
            | Insn::CmpBranch(_, _, t) => *t = new_pc[*t as usize],
            _ => {}
        }
    }
    let handlers = handlers
        .iter()
        .map(|h| Handler {
            start: new_pc[h.start as usize],
            end: new_pc[h.end as usize],
            target: new_pc[h.target as usize],
        })
        .collect();
    (out, handlers)
}

fn fuse_pair(a: Insn, b: Insn) -> Option<Insn> {
    let cmp = |i: Insn| match i {
        Insn::CmpEq => Some(Cmp::Eq),
        Insn::CmpLt => Some(Cmp::Lt),
        Insn::CmpGt => Some(Cmp::Gt),
        Insn::CmpLe => Some(Cmp::Le),
        Insn::CmpGe => Some(Cmp::Ge),
        _ => None,
    };
    match (a, b) {
        (Insn::Load(x), Insn::Load(y)) => Some(Insn::LoadLoad(x, y)),
        (Insn::Load(x), Insn::ConstInt(k)) => Some(Insn::LoadConst(x, k)),
        (Insn::Load(x), Insn::CallStatic(f, argc)) => Some(Insn::LoadCall(x, f, argc)),
        (Insn::ConstInt(k), Insn::Add) => Some(Insn::AddConst(k)),
        (Insn::Add, Insn::Store(s)) => Some(Insn::AddStore(s)),
        (c, Insn::JumpIfFalse(t)) if cmp(c).is_some() => Some(Insn::CmpBranch(cmp(c)?, false, t)),
        (c, Insn::JumpIfTrue(t)) if cmp(c).is_some() => Some(Insn::CmpBranch(cmp(c)?, true, t)),
        _ => None,
    }
}
