//! Unit tests for the VM, using hand-assembled programs (independent of the
//! frontend and phases).

use crate::bytecode::*;
use crate::vm::{Value, Vm, VmError, VmOptions};
use mini_ir::Name;
use std::collections::HashMap;

fn fun(name: &str, n_params: u16, n_locals: u16, code: Vec<Insn>) -> Function {
    Function {
        name: name.into(),
        n_params,
        n_locals,
        code,
        handlers: Vec::new(),
    }
}

/// Assemble and link a program. `method_names` assigns slot ids in order,
/// so `CallVirtual(0, ..)` calls `method_names[0]`.
fn prog(
    classes: Vec<VmClass>,
    functions: Vec<Function>,
    entry: Option<FnId>,
    method_names: Vec<Name>,
) -> Program {
    let mut p = Program {
        classes,
        functions,
        entry,
        method_names,
    };
    p.link();
    p
}

#[test]
fn arithmetic_and_return() {
    let p = prog(
        vec![],
        vec![fun(
            "f",
            0,
            0,
            vec![Insn::ConstInt(6), Insn::ConstInt(7), Insn::Mul, Insn::Ret],
        )],
        Some(0),
        vec![],
    );
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    assert!(matches!(v, Value::Int(42)));
}

fn sum_loop_program() -> Program {
    // sum of 0..10 == 45
    let code = vec![
        Insn::ConstInt(0),     // 0
        Insn::Store(0),        // 1  i = 0
        Insn::ConstInt(0),     // 2
        Insn::Store(1),        // 3  acc = 0
        Insn::Load(0),         // 4  loop:
        Insn::ConstInt(10),    // 5
        Insn::CmpLt,           // 6
        Insn::JumpIfFalse(17), // 7
        Insn::Load(1),         // 8
        Insn::Load(0),         // 9
        Insn::Add,             // 10
        Insn::Store(1),        // 11 acc += i
        Insn::Load(0),         // 12
        Insn::ConstInt(1),     // 13
        Insn::Add,             // 14
        Insn::Store(0),        // 15 i += 1
        Insn::Jump(4),         // 16
        Insn::Load(1),         // 17
        Insn::Ret,             // 18
    ];
    prog(vec![], vec![fun("sum", 0, 2, code)], Some(0), vec![])
}

#[test]
fn loops_and_locals() {
    let p = sum_loop_program();
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    assert!(matches!(v, Value::Int(45)), "{v:?}");
}

#[test]
fn fusion_rewrites_hot_pairs_without_changing_results() {
    let p = sum_loop_program();
    // Fast mode fuses Load;ConstInt and CmpLt;JumpIfFalse in the loop
    // header; result and fuel-per-logical-insn accounting must not change.
    let mut fast = Vm::new(&p);
    let mut reference = Vm::with_options(&p, VmOptions::reference());
    let vf = fast.run_main().unwrap();
    let vr = reference.run_main().unwrap();
    assert!(matches!(vf, Value::Int(45)), "{vf:?}");
    assert!(matches!(vr, Value::Int(45)), "{vr:?}");
    assert!(fast.stats.fused_retired > 0, "loop pairs should fuse");
    assert_eq!(reference.stats.fused_retired, 0);
    // Fused execution dispatches fewer times but charges identical fuel.
    assert_eq!(fast.fuel, reference.fuel);
    assert!(fast.stats.insns_retired < reference.stats.insns_retired);
}

#[test]
fn exceptions_unwind_to_handlers() {
    let mut f = fun(
        "risky",
        0,
        1,
        vec![
            Insn::ConstStr(Name::intern("boom")),
            Insn::Throw,
            // handler:
            Insn::Store(0),
            Insn::Load(0),
            Insn::ConstStr(Name::intern(" caught")),
            Insn::Concat,
            Insn::Ret,
        ],
    );
    f.handlers.push(Handler {
        start: 0,
        end: 2,
        target: 2,
    });
    let p = prog(vec![], vec![f], Some(0), vec![]);
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    match v {
        Value::Str(s) => assert_eq!(&*s, "boom caught"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn uncaught_exceptions_propagate_across_calls() {
    let thrower = fun(
        "thrower",
        0,
        0,
        vec![Insn::ConstStr(Name::intern("oops")), Insn::Throw],
    );
    let caller = fun("caller", 0, 0, vec![Insn::CallStatic(0, 0), Insn::Ret]);
    let p = prog(vec![], vec![thrower, caller], Some(1), vec![]);
    for opts in [VmOptions::fast(), VmOptions::reference()] {
        let mut vm = Vm::with_options(&p, opts);
        match vm.run_main() {
            Err(VmError::Uncaught(Value::Str(s))) => assert_eq!(&*s, "oops"),
            other => panic!("expected uncaught, got {other:?}"),
        }
    }
}

fn dispatch_program() -> Program {
    // class A { def get(): Int = 1 }; class B extends A { override get = 2 }
    let get_name = Name::intern("get");
    let a_get = fun("A.get", 1, 1, vec![Insn::ConstInt(1), Insn::Ret]);
    let b_get = fun("B.get", 1, 1, vec![Insn::ConstInt(2), Insn::Ret]);
    let main = fun(
        "main",
        0,
        0,
        vec![Insn::New(1), Insn::CallVirtual(0, 1), Insn::Ret],
    );
    let mut a = VmClass::new("A", vec![0], 0);
    a.vtable.insert(get_name, 0);
    let mut b = VmClass::new("B", vec![1, 0], 0);
    b.vtable.insert(get_name, 1);
    prog(
        vec![a, b],
        vec![a_get, b_get, main],
        Some(2),
        vec![get_name],
    )
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    let p = dispatch_program();
    for opts in [VmOptions::fast(), VmOptions::reference()] {
        let mut vm = Vm::with_options(&p, opts);
        let v = vm.run_main().unwrap();
        assert!(matches!(v, Value::Int(2)), "B overrides A: {v:?}");
    }
    assert!(p.is_subclass(1, 0));
    assert!(!p.is_subclass(0, 1));
}

#[test]
fn inline_caches_hit_on_monomorphic_sites() {
    // Call b.get() in a loop: the first call misses and fills the cache,
    // every later call hits.
    let get_name = Name::intern("get");
    let b_get = fun("B.get", 1, 1, vec![Insn::ConstInt(2), Insn::Ret]);
    let code = vec![
        Insn::New(0),            // 0  b = new B
        Insn::Store(0),          // 1
        Insn::ConstInt(0),       // 2  i = 0
        Insn::Store(1),          // 3
        Insn::Load(1),           // 4  loop:
        Insn::ConstInt(8),       // 5
        Insn::CmpLt,             // 6
        Insn::JumpIfFalse(16),   // 7
        Insn::Load(0),           // 8
        Insn::CallVirtual(0, 1), // 9
        Insn::Pop,               // 10
        Insn::Load(1),           // 11
        Insn::ConstInt(1),       // 12
        Insn::Add,               // 13
        Insn::Store(1),          // 14
        Insn::Jump(4),           // 15
        Insn::ConstUnit,         // 16
        Insn::Ret,               // 17
    ];
    let mut b = VmClass::new("B", vec![0], 0);
    b.vtable.insert(get_name, 0);
    let p = prog(
        vec![b],
        vec![b_get, fun("main", 0, 2, code)],
        Some(1),
        vec![get_name],
    );
    let mut vm = Vm::new(&p);
    vm.run_main().unwrap();
    assert_eq!(vm.stats.ic_misses, 1, "{:?}", vm.stats);
    assert_eq!(vm.stats.ic_hits, 7, "{:?}", vm.stats);
    assert!(vm.stats.ic_hit_rate() > 0.8);
}

#[test]
fn field_roundtrip() {
    // obj.f = 7; return obj.f
    let main = fun(
        "main",
        0,
        1,
        vec![
            Insn::New(0),
            Insn::Store(0),
            Insn::Load(0),
            Insn::ConstInt(7),
            Insn::PutField(0),
            Insn::Load(0),
            Insn::GetField(0),
            Insn::Ret,
        ],
    );
    let mut c = VmClass::new("C", vec![0], 1);
    c.field_resolve = HashMap::from([(0, 0)]);
    let p = prog(vec![c], vec![main], Some(0), vec![]);
    for opts in [VmOptions::fast(), VmOptions::reference()] {
        let mut vm = Vm::with_options(&p, opts);
        assert!(matches!(vm.run_main().unwrap(), Value::Int(7)));
    }
}

#[test]
fn arrays_bounds_and_division_throw() {
    let p = prog(
        vec![],
        vec![fun(
            "f",
            0,
            0,
            vec![
                Insn::ConstInt(2),
                Insn::NewArray,
                Insn::ConstInt(5),
                Insn::ALoad,
                Insn::Ret,
            ],
        )],
        Some(0),
        vec![],
    );
    let mut vm = Vm::new(&p);
    match vm.run_main() {
        Err(VmError::Uncaught(Value::Str(s))) => {
            assert!(s.contains("ArrayIndexOutOfBounds"))
        }
        other => panic!("expected bounds exception, got {other:?}"),
    }
    let p2 = prog(
        vec![],
        vec![fun(
            "g",
            0,
            0,
            vec![Insn::ConstInt(1), Insn::ConstInt(0), Insn::Div, Insn::Ret],
        )],
        Some(0),
        vec![],
    );
    let mut vm2 = Vm::new(&p2);
    assert!(matches!(
        vm2.run_main(),
        Err(VmError::Uncaught(Value::Str(_)))
    ));
}

#[test]
fn println_is_captured_and_fuel_guards_loops() {
    let p = prog(
        vec![],
        vec![fun(
            "spin",
            0,
            0,
            vec![
                Insn::ConstStr(Name::intern("hello")),
                Insn::Println,
                Insn::Pop,
                Insn::Jump(0),
            ],
        )],
        Some(0),
        vec![],
    );
    for opts in [VmOptions::fast(), VmOptions::reference()] {
        let mut vm = Vm::with_options(&p, opts);
        vm.fuel = 10_000;
        match vm.run_main() {
            Err(VmError::Trap(m)) => assert!(m.contains("fuel")),
            other => panic!("expected fuel trap, got {other:?}"),
        }
        assert!(!vm.out.is_empty());
        assert_eq!(vm.out[0], "hello");
    }
}

#[test]
fn guest_recursion_traps_at_depth_budget_in_both_modes() {
    // f() calls itself forever: must degrade to a structured trap at the
    // same guest depth in flat and recursive modes, never a host overflow.
    let p = prog(
        vec![],
        vec![fun("f", 0, 0, vec![Insn::CallStatic(0, 0), Insn::Ret])],
        Some(0),
        vec![],
    );
    let mut msgs = Vec::new();
    for base in [VmOptions::fast(), VmOptions::reference()] {
        let opts = VmOptions {
            max_frames: 64,
            ..base
        };
        let mut vm = Vm::with_options(&p, opts);
        match vm.run_main() {
            Err(VmError::Trap(m)) => {
                assert!(m.contains("max call depth 64"), "{m}");
                msgs.push(m);
            }
            other => panic!("expected depth trap, got {other:?}"),
        }
        assert_eq!(vm.stats.peak_frames, 64, "budget reached: {:?}", vm.stats);
    }
    assert_eq!(msgs[0], msgs[1]);

    // Default budget: deep recursion still traps (structured) in fast mode.
    let mut vm = Vm::new(&p);
    match vm.run_main() {
        Err(VmError::Trap(m)) => assert!(m.contains("max call depth"), "{m}"),
        other => panic!("expected depth trap, got {other:?}"),
    }
}

#[test]
fn type_tests_and_null_casts() {
    let p = prog(
        vec![],
        vec![fun(
            "f",
            0,
            0,
            vec![
                Insn::ConstInt(1),
                Insn::IsInstance(TypeTest::Int),
                Insn::ConstStr(Name::intern("x")),
                Insn::IsInstance(TypeTest::Int),
                Insn::Not,
                Insn::CmpEq, // true == true
                Insn::Ret,
            ],
        )],
        Some(0),
        vec![],
    );
    let mut vm = Vm::new(&p);
    assert!(matches!(vm.run_main().unwrap(), Value::Bool(true)));

    // null passes reference casts.
    let p2 = prog(
        vec![],
        vec![fun(
            "g",
            0,
            0,
            vec![Insn::ConstNull, Insn::Cast(TypeTest::Str), Insn::Ret],
        )],
        Some(0),
        vec![],
    );
    let mut vm2 = Vm::new(&p2);
    assert!(matches!(vm2.run_main().unwrap(), Value::Null));

    // but a bad cast throws.
    let p3 = prog(
        vec![],
        vec![fun(
            "h",
            0,
            0,
            vec![Insn::ConstInt(3), Insn::Cast(TypeTest::Str), Insn::Ret],
        )],
        Some(0),
        vec![],
    );
    let mut vm3 = Vm::new(&p3);
    assert!(matches!(
        vm3.run_main(),
        Err(VmError::Uncaught(Value::Str(_)))
    ));
}

#[test]
fn universal_methods_have_defaults() {
    let eq = Name::intern("equals");
    let p = prog(
        vec![VmClass::new("C", vec![0], 0)],
        vec![fun(
            "f",
            0,
            1,
            vec![
                Insn::New(0),
                Insn::Store(0),
                Insn::Load(0),
                Insn::Load(0),
                Insn::CallVirtual(0, 2),
                Insn::Ret,
            ],
        )],
        Some(0),
        vec![eq],
    );
    for opts in [VmOptions::fast(), VmOptions::reference()] {
        let mut vm = Vm::with_options(&p, opts);
        assert!(matches!(vm.run_main().unwrap(), Value::Bool(true)));
    }
}

#[test]
fn fuse_respects_jump_and_handler_barriers() {
    // Jump target 2 lands between Load(0) at 1 and Load(1) at 2: that pair
    // must NOT fuse (a branch would land mid-superinstruction). Fusion is
    // free to restart *at* the target, so (2,3) fuses and the Jump operand
    // is remapped through the compaction.
    let code = vec![
        Insn::Jump(2), // 0
        Insn::Load(0), // 1 (dead)
        Insn::Load(1), // 2 <- target
        Insn::Load(0), // 3
        Insn::Load(1), // 4
        Insn::Add,     // 5
        Insn::Ret,     // 6
    ];
    let (fused, handlers) = crate::codegen::fuse(&code, &[]);
    assert!(handlers.is_empty());
    assert_eq!(
        fused,
        vec![
            Insn::Jump(2),
            Insn::Load(0),
            Insn::LoadLoad(1, 0),
            Insn::Load(1),
            Insn::Add,
            Insn::Ret,
        ]
    );

    // A handler end boundary between the halves also blocks fusion, and
    // handler ranges are remapped through the compaction.
    let code = vec![
        Insn::Load(0),     // 0
        Insn::ConstInt(1), // 1  fuses with 0
        Insn::Load(0),     // 2  last covered insn
        Insn::Load(1),     // 3  first uncovered insn — must not fuse with 2
        Insn::Ret,         // 4
    ];
    let h = Handler {
        start: 0,
        end: 3,
        target: 4,
    };
    let (fused, handlers) = crate::codegen::fuse(&code, &[h]);
    assert_eq!(
        fused,
        vec![
            Insn::LoadConst(0, 1),
            Insn::Load(0),
            Insn::Load(1),
            Insn::Ret,
        ]
    );
    assert_eq!(
        handlers,
        vec![Handler {
            start: 0,
            end: 2,
            target: 3,
        }]
    );
}
