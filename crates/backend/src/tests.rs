//! Unit tests for the VM, using hand-assembled programs (independent of the
//! frontend and phases).

use crate::bytecode::*;
use crate::vm::{Value, Vm, VmError};
use mini_ir::Name;
use std::collections::HashMap;

fn fun(name: &str, n_params: u16, n_locals: u16, code: Vec<Insn>) -> Function {
    Function {
        name: name.into(),
        n_params,
        n_locals,
        code,
        handlers: Vec::new(),
    }
}

#[test]
fn arithmetic_and_return() {
    let p = Program {
        classes: vec![],
        functions: vec![fun(
            "f",
            0,
            0,
            vec![Insn::ConstInt(6), Insn::ConstInt(7), Insn::Mul, Insn::Ret],
        )],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    assert!(matches!(v, Value::Int(42)));
}

#[test]
fn loops_and_locals() {
    // sum of 0..10 == 45
    let code = vec![
        Insn::ConstInt(0),     // 0
        Insn::Store(0),        // 1  i = 0
        Insn::ConstInt(0),     // 2
        Insn::Store(1),        // 3  acc = 0
        Insn::Load(0),         // 4  loop:
        Insn::ConstInt(10),    // 5
        Insn::CmpLt,           // 6
        Insn::JumpIfFalse(17), // 7
        Insn::Load(1),         // 8
        Insn::Load(0),         // 9
        Insn::Add,             // 10
        Insn::Store(1),        // 11 acc += i
        Insn::Load(0),         // 12
        Insn::ConstInt(1),     // 13
        Insn::Add,             // 14
        Insn::Store(0),        // 15 i += 1
        Insn::Jump(4),         // 16
        Insn::Load(1),         // 17
        Insn::Ret,             // 18
    ];
    let p = Program {
        classes: vec![],
        functions: vec![fun("sum", 0, 2, code)],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    assert!(matches!(v, Value::Int(45)), "{v:?}");
}

#[test]
fn exceptions_unwind_to_handlers() {
    let mut f = fun(
        "risky",
        0,
        1,
        vec![
            Insn::ConstStr(Name::intern("boom")),
            Insn::Throw,
            // handler:
            Insn::Store(0),
            Insn::Load(0),
            Insn::ConstStr(Name::intern(" caught")),
            Insn::Concat,
            Insn::Ret,
        ],
    );
    f.handlers.push(Handler {
        start: 0,
        end: 2,
        target: 2,
    });
    let p = Program {
        classes: vec![],
        functions: vec![f],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    match v {
        Value::Str(s) => assert_eq!(&*s, "boom caught"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn uncaught_exceptions_propagate_across_calls() {
    let thrower = fun(
        "thrower",
        0,
        0,
        vec![Insn::ConstStr(Name::intern("oops")), Insn::Throw],
    );
    let caller = fun("caller", 0, 0, vec![Insn::CallStatic(0, 0), Insn::Ret]);
    let p = Program {
        classes: vec![],
        functions: vec![thrower, caller],
        entry: Some(1),
    };
    let mut vm = Vm::new(&p);
    match vm.run_main() {
        Err(VmError::Uncaught(Value::Str(s))) => assert_eq!(&*s, "oops"),
        other => panic!("expected uncaught, got {other:?}"),
    }
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    // class A { def get(): Int = 1 }; class B extends A { override get = 2 }
    let get_name = Name::intern("get");
    let a_get = fun("A.get", 1, 1, vec![Insn::ConstInt(1), Insn::Ret]);
    let b_get = fun("B.get", 1, 1, vec![Insn::ConstInt(2), Insn::Ret]);
    let main = fun(
        "main",
        0,
        0,
        vec![Insn::New(1), Insn::CallVirtual(get_name, 1), Insn::Ret],
    );
    let mut a_vt = HashMap::new();
    a_vt.insert(get_name, 0);
    let mut b_vt = HashMap::new();
    b_vt.insert(get_name, 1);
    let p = Program {
        classes: vec![
            VmClass {
                name: "A".into(),
                linearization: vec![0],
                n_fields: 0,
                field_resolve: HashMap::new(),
                vtable: a_vt,
            },
            VmClass {
                name: "B".into(),
                linearization: vec![1, 0],
                n_fields: 0,
                field_resolve: HashMap::new(),
                vtable: b_vt,
            },
        ],
        functions: vec![a_get, b_get, main],
        entry: Some(2),
    };
    let mut vm = Vm::new(&p);
    let v = vm.run_main().unwrap();
    assert!(matches!(v, Value::Int(2)), "B overrides A: {v:?}");
    assert!(p.is_subclass(1, 0));
    assert!(!p.is_subclass(0, 1));
}

#[test]
fn field_roundtrip() {
    // obj.f = 7; return obj.f
    let main = fun(
        "main",
        0,
        1,
        vec![
            Insn::New(0),
            Insn::Store(0),
            Insn::Load(0),
            Insn::ConstInt(7),
            Insn::PutField(0),
            Insn::Load(0),
            Insn::GetField(0),
            Insn::Ret,
        ],
    );
    let p = Program {
        classes: vec![VmClass {
            name: "C".into(),
            linearization: vec![0],
            n_fields: 1,
            field_resolve: HashMap::from([(0, 0)]),
            vtable: HashMap::new(),
        }],
        functions: vec![main],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    assert!(matches!(vm.run_main().unwrap(), Value::Int(7)));
}

#[test]
fn arrays_bounds_and_division_throw() {
    let p = Program {
        classes: vec![],
        functions: vec![fun(
            "f",
            0,
            0,
            vec![
                Insn::ConstInt(2),
                Insn::NewArray,
                Insn::ConstInt(5),
                Insn::ALoad,
                Insn::Ret,
            ],
        )],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    match vm.run_main() {
        Err(VmError::Uncaught(Value::Str(s))) => {
            assert!(s.contains("ArrayIndexOutOfBounds"))
        }
        other => panic!("expected bounds exception, got {other:?}"),
    }
    let p2 = Program {
        classes: vec![],
        functions: vec![fun(
            "g",
            0,
            0,
            vec![Insn::ConstInt(1), Insn::ConstInt(0), Insn::Div, Insn::Ret],
        )],
        entry: Some(0),
    };
    let mut vm2 = Vm::new(&p2);
    assert!(matches!(
        vm2.run_main(),
        Err(VmError::Uncaught(Value::Str(_)))
    ));
}

#[test]
fn println_is_captured_and_fuel_guards_loops() {
    let p = Program {
        classes: vec![],
        functions: vec![fun(
            "spin",
            0,
            0,
            vec![
                Insn::ConstStr(Name::intern("hello")),
                Insn::Println,
                Insn::Pop,
                Insn::Jump(0),
            ],
        )],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    vm.fuel = 10_000;
    match vm.run_main() {
        Err(VmError::Trap(m)) => assert!(m.contains("fuel")),
        other => panic!("expected fuel trap, got {other:?}"),
    }
    assert!(!vm.out.is_empty());
    assert_eq!(vm.out[0], "hello");
}

#[test]
fn type_tests_and_null_casts() {
    let p = Program {
        classes: vec![],
        functions: vec![fun(
            "f",
            0,
            0,
            vec![
                Insn::ConstInt(1),
                Insn::IsInstance(TypeTest::Int),
                Insn::ConstStr(Name::intern("x")),
                Insn::IsInstance(TypeTest::Int),
                Insn::Not,
                Insn::CmpEq, // true == true
                Insn::Ret,
            ],
        )],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    assert!(matches!(vm.run_main().unwrap(), Value::Bool(true)));

    // null passes reference casts.
    let p2 = Program {
        classes: vec![],
        functions: vec![fun(
            "g",
            0,
            0,
            vec![Insn::ConstNull, Insn::Cast(TypeTest::Str), Insn::Ret],
        )],
        entry: Some(0),
    };
    let mut vm2 = Vm::new(&p2);
    assert!(matches!(vm2.run_main().unwrap(), Value::Null));

    // but a bad cast throws.
    let p3 = Program {
        classes: vec![],
        functions: vec![fun(
            "h",
            0,
            0,
            vec![Insn::ConstInt(3), Insn::Cast(TypeTest::Str), Insn::Ret],
        )],
        entry: Some(0),
    };
    let mut vm3 = Vm::new(&p3);
    assert!(matches!(
        vm3.run_main(),
        Err(VmError::Uncaught(Value::Str(_)))
    ));
}

#[test]
fn universal_methods_have_defaults() {
    let eq = Name::intern("equals");
    let p = Program {
        classes: vec![VmClass {
            name: "C".into(),
            linearization: vec![0],
            n_fields: 0,
            field_resolve: HashMap::new(),
            vtable: HashMap::new(),
        }],
        functions: vec![fun(
            "f",
            0,
            1,
            vec![
                Insn::New(0),
                Insn::Store(0),
                Insn::Load(0),
                Insn::Load(0),
                Insn::CallVirtual(eq, 2),
                Insn::Ret,
            ],
        )],
        entry: Some(0),
    };
    let mut vm = Vm::new(&p);
    assert!(matches!(vm.run_main().unwrap(), Value::Bool(true)));
}
