//! The stack VM that executes compiled [`Program`]s.
//!
//! # Execution design note
//!
//! The VM has two interpreters pinned byte-identical to each other by the
//! `vm_equivalence` proptest, selected per feature by [`VmOptions`]:
//!
//! - **Reference mode** (`VmOptions::reference()`, all features off) is the
//!   original interpreter: a recursive `invoke` that allocates a fresh
//!   locals vector and operand stack per call, probes `HashMap<Name, FnId>`
//!   vtables on every virtual/direct call, and resolves field ids through a
//!   per-class `HashMap`. It is kept as the semantic oracle *and* as the
//!   honest A/B baseline for the `exec` bench — it genuinely pays the old
//!   per-call costs.
//!
//! - **Fast mode** (`VmOptions::fast()`, the default for [`Vm::new`])
//!   layers three classic OO-VM optimizations, each independently
//!   toggleable so ablations can be benchmarked and equivalence-tested:
//!
//!   1. *Link-time dispatch resolution* (`resolved_dispatch`): call sites
//!      carry interned [`MethodSlot`] ids and dispatch indexes the dense
//!      [`VmClass::vtable_slots`] / [`VmClass::field_slots`] tables built
//!      by [`Program::link`] — an array load instead of a hash probe.
//!   2. *Monomorphic inline caches* (`inline_caches`): at VM construction
//!      every `CallVirtual` in the prepared code is rewritten to
//!      `CallVirtualIC` with a per-site cache entry (`ClassId → FnId`,
//!      hit/miss counted in [`VmStats`]). Monomorphic sites skip even the
//!      dense-table load after the first call.
//!   3. *Superinstructions* (`superinstructions`): the peephole pass
//!      [`crate::codegen::fuse`] fuses the hottest decoded pairs
//!      (`Load;Load`, `Load;ConstInt`, `ConstInt;Add`, `Add;Store`,
//!      `Load;CallStatic`, integer-compare + branch) in a prepared copy
//!      of the code — on the exec corpus over 60% of logical
//!      instructions retire inside a fused pair. Fused instructions
//!      charge fuel per constituent instruction so out-of-fuel traps
//!      stay position-identical with reference execution, and the
//!      merged dataflow (e.g. `AddConst` never materializing its
//!      constant) is legal because the intermediate stack state between
//!      the two halves is unobservable.
//!
//!   Independently, *flat frames* (`flat_frames`) replaces the recursive
//!   `invoke` with a non-recursive dispatch loop over an explicit frame
//!   stack (mirroring the middle end's iterative tree walk): one shared
//!   locals arena and one shared operand stack with per-frame base
//!   offsets, so calls reuse storage instead of allocating two vectors
//!   each.
//!
//! Both modes enforce the same guest call-depth budget
//! ([`VmOptions::max_frames`]): deep guest recursion degrades to a
//! structured [`VmError::Trap`] at the same guest depth instead of a host
//! stack overflow. Rewrites (fusion, IC) apply to a *prepared copy* of
//! the code held by the VM; the [`Program`] itself is never mutated, so
//! one linked program serves both sides of an A/B run.

use crate::bytecode::*;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// A runtime value. The representation is uniformly tagged, which is why the
/// pipeline needs no boxing phase (see DESIGN.md).
#[derive(Clone, Debug)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Rc<str>),
    /// The null reference.
    Null,
    /// An object instance.
    Obj(Rc<ObjCell>),
    /// An array.
    Arr(Rc<RefCell<Vec<Value>>>),
}

/// Heap storage of one object.
#[derive(Debug)]
pub struct ObjCell {
    /// The object's class.
    pub class: ClassId,
    /// Field slots.
    pub fields: RefCell<Vec<Value>>,
}

impl Value {
    fn truthy(&self) -> Result<bool, VmError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(VmError::Trap(format!("expected boolean, got {other}"))),
        }
    }

    fn int(&self) -> Result<i64, VmError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(VmError::Trap(format!("expected int, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => write!(f, "<obj#{}>", o.class),
            Value::Arr(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum VmError {
    /// A MiniScala exception that was never caught; carries the thrown value.
    Uncaught(Value),
    /// A VM-level fault (type confusion, missing method, fuel exhausted...).
    Trap(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Uncaught(v) => write!(f, "uncaught exception: {v}"),
            VmError::Trap(m) => write!(f, "vm trap: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

enum Flow {
    Value(Value),
    Exception(Value),
}

/// Default guest call-depth budget. Sized so that even the *recursive*
/// reference interpreter stays well inside a 2 MiB test-thread host stack
/// while allowing far deeper guest recursion than the corpora use.
pub const DEFAULT_MAX_FRAMES: u32 = 512;

/// Execution-feature toggles. [`VmOptions::fast`] (the [`Default`], used by
/// [`Vm::new`]) turns everything on; [`VmOptions::reference`] turns
/// everything off and reproduces the original interpreter's costs. Each
/// flag is independent so the `exec` bench and the equivalence proptest can
/// ablate features one at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmOptions {
    /// Dispatch through dense slot-indexed vtables / field tables
    /// (requires a [`Program::link`]ed program) instead of per-call
    /// `HashMap` probes.
    pub resolved_dispatch: bool,
    /// Rewrite virtual call sites to monomorphic inline caches.
    pub inline_caches: bool,
    /// Run the [`crate::codegen::fuse`] peephole over a prepared copy of
    /// the code.
    pub superinstructions: bool,
    /// Execute on an explicit frame stack with reused locals storage
    /// instead of host recursion.
    pub flat_frames: bool,
    /// Guest call-depth budget (both modes); exceeding it is a structured
    /// [`VmError::Trap`], never a host stack overflow.
    pub max_frames: u32,
}

impl VmOptions {
    /// All execution features on (the production configuration).
    pub fn fast() -> VmOptions {
        VmOptions {
            resolved_dispatch: true,
            inline_caches: true,
            superinstructions: true,
            flat_frames: true,
            max_frames: DEFAULT_MAX_FRAMES,
        }
    }

    /// All execution features off: the original recursive, hash-probing
    /// interpreter. Semantic oracle and A/B baseline.
    pub fn reference() -> VmOptions {
        VmOptions {
            resolved_dispatch: false,
            inline_caches: false,
            superinstructions: false,
            flat_frames: false,
            max_frames: DEFAULT_MAX_FRAMES,
        }
    }
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions::fast()
    }
}

/// Execution counters, accumulated across every call made through one
/// [`Vm`]. Deterministic for a given program + options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions dispatched (a fused superinstruction counts once).
    pub insns_retired: u64,
    /// Superinstructions among [`VmStats::insns_retired`].
    pub fused_retired: u64,
    /// Inline-cache hits at `CallVirtualIC` sites.
    pub ic_hits: u64,
    /// Inline-cache misses (object receivers only; each miss refills the
    /// site's cache when resolution succeeds).
    pub ic_misses: u64,
    /// Deepest guest call depth reached.
    pub peak_frames: u64,
}

impl VmStats {
    /// Hit fraction over all inline-cache lookups (0.0 when none ran).
    pub fn ic_hit_rate(&self) -> f64 {
        let total = self.ic_hits + self.ic_misses;
        if total == 0 {
            0.0
        } else {
            self.ic_hits as f64 / total as f64
        }
    }
}

/// One inline-cache entry: last receiver class seen at the site and the
/// method it resolved to.
#[derive(Clone, Copy)]
struct IcEntry {
    class: ClassId,
    target: FnId,
}

const IC_EMPTY: IcEntry = IcEntry {
    class: ClassId::MAX,
    target: 0,
};

/// Per-function executable code as prepared at VM construction: a plain
/// copy in reference mode, fused and/or IC-rewritten in fast mode.
struct FnCode {
    name: String,
    n_params: u16,
    n_locals: u16,
    code: Vec<Insn>,
    handlers: Vec<Handler>,
}

/// A suspended caller in the flat-frame interpreter.
struct Frame {
    code: Rc<FnCode>,
    pc: usize,
    base: usize,
    stack_base: usize,
}

/// The virtual machine.
///
/// # Examples
///
/// Running a program requires compiling one first; see the `mini-driver`
/// crate's `compile_and_run` for the end-to-end path.
pub struct Vm<'p> {
    program: &'p Program,
    /// Captured `println` output, one entry per call.
    pub out: Vec<String>,
    /// Remaining instruction budget (guards against runaway programs).
    pub fuel: u64,
    /// Execution counters (instructions retired, IC hits, peak frames).
    pub stats: VmStats,
    opts: VmOptions,
    code_tab: Vec<Rc<FnCode>>,
    ics: Vec<Cell<IcEntry>>,
    depth: u32,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the default fuel budget (100M instructions) and
    /// the fast execution options.
    pub fn new(program: &'p Program) -> Vm<'p> {
        Vm::with_options(program, VmOptions::default())
    }

    /// Creates a VM with explicit [`VmOptions`]. `resolved_dispatch`
    /// requires the program to have been [`Program::link`]ed (codegen
    /// links automatically; hand-assembled programs must call it).
    pub fn with_options(program: &'p Program, opts: VmOptions) -> Vm<'p> {
        if opts.resolved_dispatch {
            let n = program.method_names.len();
            assert!(
                program.classes.iter().all(|c| c.vtable_slots.len() == n),
                "VmOptions::resolved_dispatch requires a linked Program (call Program::link)"
            );
        }
        let mut ics = Vec::new();
        let code_tab = program
            .functions
            .iter()
            .map(|f| {
                let (mut code, handlers) = if opts.superinstructions {
                    crate::codegen::fuse(&f.code, &f.handlers)
                } else {
                    (f.code.clone(), f.handlers.clone())
                };
                if opts.inline_caches {
                    for i in &mut code {
                        if let Insn::CallVirtual(slot, argc) = *i {
                            let site = ics.len() as u32;
                            ics.push(Cell::new(IC_EMPTY));
                            *i = Insn::CallVirtualIC(slot, argc, site);
                        }
                    }
                }
                Rc::new(FnCode {
                    name: f.name.clone(),
                    n_params: f.n_params,
                    n_locals: f.n_locals,
                    code,
                    handlers,
                })
            })
            .collect();
        Vm {
            program,
            out: Vec::new(),
            fuel: 100_000_000,
            stats: VmStats::default(),
            opts,
            code_tab,
            ics,
            depth: 0,
        }
    }

    /// The options this VM was built with.
    pub fn options(&self) -> VmOptions {
        self.opts
    }

    /// Runs the program's `main`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Uncaught`] for user exceptions that escape `main`,
    /// or [`VmError::Trap`] for VM-level faults.
    pub fn run_main(&mut self) -> Result<Value, VmError> {
        let entry = self
            .program
            .entry
            .ok_or_else(|| VmError::Trap("program has no main".into()))?;
        self.call(entry, Vec::new())
    }

    /// Calls function `fid` with `args`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vm::run_main`].
    pub fn call(&mut self, fid: FnId, args: Vec<Value>) -> Result<Value, VmError> {
        // Instruction accounting by fuel delta, not a per-dispatch counter
        // in the hot loop: every dispatch burns one fuel, and each fused
        // pair burns one more for its second half, so
        // dispatches = fuel spent − fused retired.
        let fuel0 = self.fuel;
        let fused0 = self.stats.fused_retired;
        let r = if self.opts.flat_frames {
            self.run_flat(fid, args)
        } else {
            match self.invoke(fid, args) {
                Ok(Flow::Value(v)) => Ok(v),
                Ok(Flow::Exception(v)) => Err(VmError::Uncaught(v)),
                Err(e) => Err(e),
            }
        };
        let spent = fuel0 - self.fuel;
        self.stats.insns_retired += spent - (self.stats.fused_retired - fused0);
        r
    }

    fn class_name(&self, v: &Value) -> &str {
        match v {
            Value::Unit => "Unit",
            Value::Int(_) => "Int",
            Value::Bool(_) => "Boolean",
            Value::Str(_) => "String",
            Value::Null => "Null",
            Value::Obj(o) => &self.program.classes[o.class as usize].name,
            Value::Arr(_) => "Array",
        }
    }

    fn type_test(&self, v: &Value, t: TypeTest) -> bool {
        match t {
            TypeTest::Any => true,
            TypeTest::AnyRef => matches!(v, Value::Obj(_) | Value::Str(_) | Value::Arr(_)),
            TypeTest::Int => matches!(v, Value::Int(_)),
            TypeTest::Bool => matches!(v, Value::Bool(_)),
            TypeTest::Unit => matches!(v, Value::Unit),
            TypeTest::Str => matches!(v, Value::Str(_)),
            TypeTest::Null => matches!(v, Value::Null),
            TypeTest::Array => matches!(v, Value::Arr(_)),
            TypeTest::Class(c) => match v {
                Value::Obj(o) => self.program.is_subclass(o.class, c),
                _ => false,
            },
        }
    }

    fn values_equal(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Null, Value::Null) => true,
            (Value::Obj(x), Value::Obj(y)) => Rc::ptr_eq(x, y),
            (Value::Arr(x), Value::Arr(y)) => Rc::ptr_eq(x, y),
            _ => false,
        }
    }

    /// Resolve a virtual call: dense slot table in fast mode, by-name
    /// `HashMap` probe in reference mode.
    #[inline]
    fn resolve_virtual(&self, recv: &Value, slot: MethodSlot) -> Option<FnId> {
        match recv {
            Value::Obj(o) => {
                let class = &self.program.classes[o.class as usize];
                if self.opts.resolved_dispatch {
                    class.vtable_slots[slot as usize]
                } else {
                    class.vtable.get(&self.program.method_name(slot)).copied()
                }
            }
            _ => None,
        }
    }

    #[inline]
    fn resolve_direct(&self, cls: ClassId, slot: MethodSlot) -> Option<FnId> {
        let class = &self.program.classes[cls as usize];
        if self.opts.resolved_dispatch {
            class.vtable_slots[slot as usize]
        } else {
            class.vtable.get(&self.program.method_name(slot)).copied()
        }
    }

    #[inline]
    fn resolve_field(&self, cls: ClassId, gid: u16) -> Option<u16> {
        let class = &self.program.classes[cls as usize];
        if self.opts.resolved_dispatch {
            match class.field_slots.get(gid as usize).copied() {
                Some(NO_FIELD) | None => None,
                slot => slot,
            }
        } else {
            class.field_resolve.get(&gid).copied()
        }
    }

    fn depth_trap(max: u32) -> VmError {
        VmError::Trap(format!("max call depth {max} exceeded"))
    }

    fn invoke(&mut self, fid: FnId, args: Vec<Value>) -> Result<Flow, VmError> {
        if self.depth >= self.opts.max_frames {
            return Err(Self::depth_trap(self.opts.max_frames));
        }
        self.depth += 1;
        self.stats.peak_frames = self.stats.peak_frames.max(self.depth as u64);
        let r = self.invoke_inner(fid, args);
        self.depth -= 1;
        r
    }

    fn invoke_inner(&mut self, fid: FnId, args: Vec<Value>) -> Result<Flow, VmError> {
        let f = self.code_tab[fid as usize].clone();
        if f.code.is_empty() {
            return Err(VmError::Trap(format!(
                "call to abstract method `{}`",
                f.name
            )));
        }
        if args.len() != f.n_params as usize {
            return Err(VmError::Trap(format!(
                "arity mismatch calling `{}`: expected {}, got {}",
                f.name,
                f.n_params,
                args.len()
            )));
        }
        let mut locals = vec![Value::Unit; f.n_locals as usize];
        locals[..args.len()].clone_from_slice(&args);
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        let code = &f.code;

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| VmError::Trap(format!("stack underflow in `{}`", f.name)))?
            };
        }
        macro_rules! throw {
            ($val:expr) => {{
                let exc: Value = $val;
                // `pc` was already advanced past the faulting instruction.
                let at = pc - 1;
                let mut handled = false;
                for h in &f.handlers {
                    if (h.start as usize) <= at && at < (h.end as usize) {
                        stack.clear();
                        stack.push(exc.clone());
                        pc = h.target as usize;
                        handled = true;
                        break;
                    }
                }
                if !handled {
                    return Ok(Flow::Exception(exc));
                }
                continue;
            }};
        }
        // Second fuel charge for the second half of a fused pair: keeps
        // out-of-fuel traps position-identical with unfused execution.
        macro_rules! fuel2 {
            () => {
                if self.fuel == 0 {
                    return Err(VmError::Trap("out of fuel".into()));
                } else {
                    self.fuel -= 1;
                }
            };
        }
        // Universal `Any` members when dispatch found no method.
        macro_rules! virtual_fallback {
            ($recv:expr, $slot:expr, $call_args:expr) => {{
                let recv = $recv;
                let call_args: Vec<Value> = $call_args;
                match self.program.method_name($slot).as_str() {
                    "equals" => {
                        let eq = Self::values_equal(&recv, &call_args[1]);
                        stack.push(Value::Bool(eq));
                    }
                    "toString" => {
                        stack.push(Value::Str(Rc::from(self.render(&recv))));
                    }
                    "getClass" => {
                        stack.push(Value::Str(Rc::from(self.class_name(&recv))));
                    }
                    name => {
                        if matches!(recv, Value::Null) {
                            throw!(Value::Str(Rc::from("NullPointerException")));
                        }
                        return Err(VmError::Trap(format!(
                            "no method `{name}` on {}",
                            self.class_name(&recv)
                        )));
                    }
                }
            }};
        }
        macro_rules! invoke_to_stack {
            ($g:expr, $args:expr) => {
                match self.invoke($g, $args)? {
                    Flow::Value(v) => stack.push(v),
                    Flow::Exception(e) => throw!(e),
                }
            };
        }

        loop {
            if self.fuel == 0 {
                return Err(VmError::Trap("out of fuel".into()));
            }
            self.fuel -= 1;
            let insn = *code
                .get(pc)
                .ok_or_else(|| VmError::Trap(format!("pc out of range in `{}`", f.name)))?;
            pc += 1;
            match insn {
                Insn::ConstInt(i) => stack.push(Value::Int(i)),
                Insn::ConstBool(b) => stack.push(Value::Bool(b)),
                Insn::ConstStr(s) => stack.push(Value::Str(Rc::from(s.as_str()))),
                Insn::ConstUnit => stack.push(Value::Unit),
                Insn::ConstNull => stack.push(Value::Null),
                Insn::Load(s) => stack.push(locals[s as usize].clone()),
                Insn::Store(s) => {
                    let v = pop!();
                    locals[s as usize] = v;
                }
                Insn::GetField(gid) => {
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = self.resolve_field(o.class, gid).ok_or_else(|| {
                                VmError::Trap(format!("unknown field #{gid} read"))
                            })?;
                            stack.push(o.fields.borrow()[slot as usize].clone())
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field read on {other}")));
                        }
                    }
                }
                Insn::PutField(gid) => {
                    let v = pop!();
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = self.resolve_field(o.class, gid).ok_or_else(|| {
                                VmError::Trap(format!("unknown field #{gid} write"))
                            })?;
                            o.fields.borrow_mut()[slot as usize] = v;
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field write on {other}")));
                        }
                    }
                }
                Insn::CallStatic(g, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    invoke_to_stack!(g, call_args);
                }
                Insn::CallVirtual(slot, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    let recv = call_args
                        .first()
                        .ok_or_else(|| VmError::Trap("virtual call without receiver".into()))?
                        .clone();
                    match self.resolve_virtual(&recv, slot) {
                        Some(g) => invoke_to_stack!(g, call_args),
                        None => virtual_fallback!(recv, slot, call_args),
                    }
                }
                Insn::CallVirtualIC(slot, argc, site) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    let recv = call_args
                        .first()
                        .ok_or_else(|| VmError::Trap("virtual call without receiver".into()))?
                        .clone();
                    let target = if let Value::Obj(o) = &recv {
                        let entry = self.ics[site as usize].get();
                        if entry.class == o.class {
                            self.stats.ic_hits += 1;
                            Some(entry.target)
                        } else {
                            self.stats.ic_misses += 1;
                            let resolved = self.resolve_virtual(&recv, slot);
                            if let Some(g) = resolved {
                                self.ics[site as usize].set(IcEntry {
                                    class: o.class,
                                    target: g,
                                });
                            }
                            resolved
                        }
                    } else {
                        None
                    };
                    match target {
                        Some(g) => invoke_to_stack!(g, call_args),
                        None => virtual_fallback!(recv, slot, call_args),
                    }
                }
                Insn::CallDirect(cls, slot, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    match self.resolve_direct(cls, slot) {
                        Some(g) => invoke_to_stack!(g, call_args),
                        None if self.program.method_name(slot) == mini_ir::std_names::init() => {
                            // Fieldless class without an explicit ctor.
                            stack.push(Value::Unit);
                        }
                        None => {
                            return Err(VmError::Trap(format!(
                                "no direct method `{}` on class {}",
                                self.program.method_name(slot),
                                self.program.classes[cls as usize].name
                            )))
                        }
                    }
                }
                Insn::New(cls) => {
                    let n = self.program.classes[cls as usize].n_fields as usize;
                    stack.push(Value::Obj(Rc::new(ObjCell {
                        class: cls,
                        fields: RefCell::new(vec![Value::Null; n]),
                    })));
                }
                Insn::NewArray => {
                    let n = pop!().int()?;
                    if n < 0 {
                        throw!(Value::Str(Rc::from("NegativeArraySizeException")));
                    }
                    stack.push(Value::Arr(Rc::new(RefCell::new(vec![
                        Value::Unit;
                        n as usize
                    ]))));
                }
                Insn::ALoad => {
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array read on non-array".into()));
                    };
                    let b = a.borrow();
                    match b.get(i as usize) {
                        Some(v) => stack.push(v.clone()),
                        None => {
                            drop(b);
                            throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                        }
                    }
                }
                Insn::AStore => {
                    let v = pop!();
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array write on non-array".into()));
                    };
                    let mut b = a.borrow_mut();
                    let len = b.len();
                    if (i as usize) < len && i >= 0 {
                        b[i as usize] = v;
                        drop(b);
                        stack.push(Value::Unit);
                    } else {
                        drop(b);
                        throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                    }
                }
                Insn::ALen => {
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("length of non-array".into()));
                    };
                    let n = a.borrow().len() as i64;
                    stack.push(Value::Int(n));
                }
                Insn::Add => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_add(b)));
                }
                Insn::Sub => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Insn::Mul => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Insn::Div => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: / by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_div(b)));
                }
                Insn::Mod => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: % by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_rem(b)));
                }
                Insn::Neg => {
                    let a = pop!().int()?;
                    stack.push(Value::Int(-a));
                }
                Insn::Not => {
                    let a = pop!().truthy()?;
                    stack.push(Value::Bool(!a));
                }
                Insn::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(Self::values_equal(&a, &b)));
                }
                Insn::CmpLt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a < b));
                }
                Insn::CmpGt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a > b));
                }
                Insn::CmpLe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a <= b));
                }
                Insn::CmpGe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a >= b));
                }
                Insn::Concat => {
                    let b = pop!();
                    let a = pop!();
                    let s = format!("{}{}", self.render(&a), self.render(&b));
                    stack.push(Value::Str(Rc::from(s)));
                }
                Insn::Jump(t) => pc = t as usize,
                Insn::JumpIfFalse(t) => {
                    if !pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::Pop => {
                    let _ = pop!();
                }
                Insn::Dup => {
                    let v = stack
                        .last()
                        .ok_or_else(|| VmError::Trap("dup on empty stack".into()))?
                        .clone();
                    stack.push(v);
                }
                Insn::Ret => {
                    let v = pop!();
                    return Ok(Flow::Value(v));
                }
                Insn::Throw => {
                    let v = pop!();
                    throw!(v);
                }
                Insn::IsInstance(t) => {
                    let v = pop!();
                    stack.push(Value::Bool(self.type_test(&v, t)));
                }
                Insn::Cast(t) => {
                    let v = pop!();
                    // `null` passes reference casts, as on the JVM.
                    let ok = self.type_test(&v, t)
                        || (matches!(v, Value::Null)
                            && matches!(
                                t,
                                TypeTest::Class(_)
                                    | TypeTest::AnyRef
                                    | TypeTest::Str
                                    | TypeTest::Array
                            ));
                    if ok {
                        stack.push(v);
                    } else {
                        throw!(Value::Str(Rc::from(format!(
                            "ClassCastException: {} is not {:?}",
                            self.class_name(&v),
                            t
                        ))));
                    }
                }
                Insn::Println => {
                    let v = pop!();
                    let line = self.render(&v);
                    self.out.push(line);
                    stack.push(Value::Unit);
                }
                Insn::GetClassName => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.class_name(&v))));
                }
                Insn::ToStr => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.render(&v))));
                }
                Insn::SLen => {
                    let v = pop!();
                    let Value::Str(s) = v else {
                        return Err(VmError::Trap("length of non-string".into()));
                    };
                    stack.push(Value::Int(s.chars().count() as i64));
                }
                Insn::LoadLoad(a, b) => {
                    self.stats.fused_retired += 1;
                    stack.push(locals[a as usize].clone());
                    fuel2!();
                    stack.push(locals[b as usize].clone());
                }
                Insn::LoadConst(a, k) => {
                    self.stats.fused_retired += 1;
                    stack.push(locals[a as usize].clone());
                    fuel2!();
                    stack.push(Value::Int(k));
                }
                Insn::AddConst(k) => {
                    self.stats.fused_retired += 1;
                    fuel2!();
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_add(k)));
                }
                Insn::AddStore(s) => {
                    self.stats.fused_retired += 1;
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    fuel2!();
                    locals[s as usize] = Value::Int(a.wrapping_add(b));
                }
                Insn::LoadCall(x, g, argc) => {
                    self.stats.fused_retired += 1;
                    stack.push(locals[x as usize].clone());
                    fuel2!();
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    invoke_to_stack!(g, call_args);
                }
                Insn::CmpBranch(kind, sense, t) => {
                    self.stats.fused_retired += 1;
                    let b = pop!();
                    let a = pop!();
                    let cond = match kind {
                        Cmp::Eq => Self::values_equal(&a, &b),
                        kind => {
                            // Type-check in the reference pop order (b first).
                            let bi = b.int()?;
                            let ai = a.int()?;
                            match kind {
                                Cmp::Lt => ai < bi,
                                Cmp::Gt => ai > bi,
                                Cmp::Le => ai <= bi,
                                Cmp::Ge => ai >= bi,
                                Cmp::Eq => unreachable!("handled above"),
                            }
                        }
                    };
                    fuel2!();
                    if cond == sense {
                        pc = t as usize;
                    }
                }
            }
        }
    }

    /// The non-recursive interpreter: an explicit frame stack over one
    /// shared locals arena and one shared operand stack (per-frame base
    /// offsets), so guest calls reuse storage instead of allocating, and
    /// guest recursion depth is bounded by `max_frames`, not the host
    /// stack.
    fn run_flat(&mut self, fid: FnId, args: Vec<Value>) -> Result<Value, VmError> {
        if self.opts.max_frames == 0 {
            return Err(Self::depth_trap(0));
        }
        let mut cur = self.code_tab[fid as usize].clone();
        if cur.code.is_empty() {
            return Err(VmError::Trap(format!(
                "call to abstract method `{}`",
                cur.name
            )));
        }
        if args.len() != cur.n_params as usize {
            return Err(VmError::Trap(format!(
                "arity mismatch calling `{}`: expected {}, got {}",
                cur.name,
                cur.n_params,
                args.len()
            )));
        }
        let mut arena: Vec<Value> = Vec::with_capacity(256);
        arena.resize(cur.n_locals as usize, Value::Unit);
        for (i, v) in args.into_iter().enumerate() {
            arena[i] = v;
        }
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut frames: Vec<Frame> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        let mut base: usize = 0;
        let mut stack_base: usize = 0;
        self.stats.peak_frames = self.stats.peak_frames.max(1);

        macro_rules! pop {
            () => {{
                // Codegen's stack discipline keeps every pop above the
                // frame's stack_base; checked in debug builds only so the
                // release hot loop pays no extra branch per pop.
                debug_assert!(stack.len() > stack_base, "underflow in `{}`", cur.name);
                stack.pop().expect("operand stack underflow")
            }};
        }
        macro_rules! throw {
            ($val:expr) => {{
                let exc: Value = $val;
                // `pc` was already advanced past the faulting instruction;
                // when unwinding into a caller, its saved pc points past
                // the call, so `pc - 1` is the call site there too.
                let mut at = pc - 1;
                'unwind: loop {
                    for h in &cur.handlers {
                        if (h.start as usize) <= at && at < (h.end as usize) {
                            stack.truncate(stack_base);
                            stack.push(exc.clone());
                            pc = h.target as usize;
                            break 'unwind;
                        }
                    }
                    stack.truncate(stack_base);
                    arena.truncate(base);
                    match frames.pop() {
                        None => return Err(VmError::Uncaught(exc)),
                        Some(fr) => {
                            cur = fr.code;
                            pc = fr.pc;
                            base = fr.base;
                            stack_base = fr.stack_base;
                            at = pc - 1;
                        }
                    }
                }
                continue;
            }};
        }
        macro_rules! fuel2 {
            () => {
                if self.fuel == 0 {
                    return Err(VmError::Trap("out of fuel".into()));
                } else {
                    self.fuel -= 1;
                }
            };
        }
        macro_rules! virtual_fallback {
            ($recv:expr, $slot:expr, $call_args:expr) => {{
                let recv = $recv;
                let call_args: Vec<Value> = $call_args;
                match self.program.method_name($slot).as_str() {
                    "equals" => {
                        let eq = Self::values_equal(&recv, &call_args[1]);
                        stack.push(Value::Bool(eq));
                    }
                    "toString" => {
                        stack.push(Value::Str(Rc::from(self.render(&recv))));
                    }
                    "getClass" => {
                        stack.push(Value::Str(Rc::from(self.class_name(&recv))));
                    }
                    name => {
                        if matches!(recv, Value::Null) {
                            throw!(Value::Str(Rc::from("NullPointerException")));
                        }
                        return Err(VmError::Trap(format!(
                            "no method `{name}` on {}",
                            self.class_name(&recv)
                        )));
                    }
                }
            }};
        }
        // Push a frame: move the top `argc` operands into a fresh arena
        // region and continue the loop inside the callee.
        macro_rules! do_call {
            ($g:expr, $argc:expr) => {{
                let g: FnId = $g;
                let argc: usize = $argc;
                if frames.len() as u32 + 1 >= self.opts.max_frames {
                    return Err(Self::depth_trap(self.opts.max_frames));
                }
                let callee = self.code_tab[g as usize].clone();
                if callee.code.is_empty() {
                    return Err(VmError::Trap(format!(
                        "call to abstract method `{}`",
                        callee.name
                    )));
                }
                if argc != callee.n_params as usize {
                    return Err(VmError::Trap(format!(
                        "arity mismatch calling `{}`: expected {}, got {}",
                        callee.name, callee.n_params, argc
                    )));
                }
                if stack.len() < stack_base + argc {
                    return Err(VmError::Trap(format!("stack underflow in `{}`", cur.name)));
                }
                let nbase = arena.len();
                let split = stack.len() - argc;
                arena.extend(stack.drain(split..));
                arena.resize(nbase + callee.n_locals as usize, Value::Unit);
                frames.push(Frame {
                    code: std::mem::replace(&mut cur, callee),
                    pc,
                    base,
                    stack_base,
                });
                pc = 0;
                base = nbase;
                stack_base = stack.len();
                self.stats.peak_frames = self.stats.peak_frames.max(frames.len() as u64 + 1);
            }};
        }

        loop {
            if self.fuel == 0 {
                return Err(VmError::Trap("out of fuel".into()));
            }
            self.fuel -= 1;
            let insn = *cur
                .code
                .get(pc)
                .ok_or_else(|| VmError::Trap(format!("pc out of range in `{}`", cur.name)))?;
            pc += 1;
            match insn {
                Insn::ConstInt(i) => stack.push(Value::Int(i)),
                Insn::ConstBool(b) => stack.push(Value::Bool(b)),
                Insn::ConstStr(s) => stack.push(Value::Str(Rc::from(s.as_str()))),
                Insn::ConstUnit => stack.push(Value::Unit),
                Insn::ConstNull => stack.push(Value::Null),
                Insn::Load(s) => stack.push(arena[base + s as usize].clone()),
                Insn::Store(s) => {
                    let v = pop!();
                    arena[base + s as usize] = v;
                }
                Insn::GetField(gid) => {
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = self.resolve_field(o.class, gid).ok_or_else(|| {
                                VmError::Trap(format!("unknown field #{gid} read"))
                            })?;
                            stack.push(o.fields.borrow()[slot as usize].clone())
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field read on {other}")));
                        }
                    }
                }
                Insn::PutField(gid) => {
                    let v = pop!();
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = self.resolve_field(o.class, gid).ok_or_else(|| {
                                VmError::Trap(format!("unknown field #{gid} write"))
                            })?;
                            o.fields.borrow_mut()[slot as usize] = v;
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field write on {other}")));
                        }
                    }
                }
                Insn::CallStatic(g, argc) => do_call!(g, argc as usize),
                Insn::CallVirtual(slot, argc) => {
                    let argc = argc as usize;
                    if argc == 0 {
                        return Err(VmError::Trap("virtual call without receiver".into()));
                    }
                    if stack.len() < stack_base + argc {
                        return Err(VmError::Trap(format!("stack underflow in `{}`", cur.name)));
                    }
                    // Peek the receiver in place: the hit path never needs
                    // to clone it (its Rc stays on the stack and moves into
                    // the callee's frame with the other args).
                    match self.resolve_virtual(&stack[stack.len() - argc], slot) {
                        Some(g) => do_call!(g, argc),
                        None => {
                            let split = stack.len() - argc;
                            let call_args = stack.split_off(split);
                            let recv = call_args[0].clone();
                            virtual_fallback!(recv, slot, call_args);
                        }
                    }
                }
                Insn::CallVirtualIC(slot, argc, site) => {
                    let argc = argc as usize;
                    if argc == 0 {
                        return Err(VmError::Trap("virtual call without receiver".into()));
                    }
                    if stack.len() < stack_base + argc {
                        return Err(VmError::Trap(format!("stack underflow in `{}`", cur.name)));
                    }
                    let target = match &stack[stack.len() - argc] {
                        Value::Obj(o) => {
                            let entry = self.ics[site as usize].get();
                            if entry.class == o.class {
                                self.stats.ic_hits += 1;
                                Some(entry.target)
                            } else {
                                let class = o.class;
                                self.stats.ic_misses += 1;
                                let resolved = self.resolve_direct(class, slot);
                                if let Some(g) = resolved {
                                    self.ics[site as usize].set(IcEntry { class, target: g });
                                }
                                resolved
                            }
                        }
                        _ => None,
                    };
                    match target {
                        Some(g) => do_call!(g, argc),
                        None => {
                            let split = stack.len() - argc;
                            let call_args = stack.split_off(split);
                            let recv = call_args[0].clone();
                            virtual_fallback!(recv, slot, call_args);
                        }
                    }
                }
                Insn::CallDirect(cls, slot, argc) => {
                    let argc = argc as usize;
                    if stack.len() < stack_base + argc {
                        return Err(VmError::Trap(format!("stack underflow in `{}`", cur.name)));
                    }
                    match self.resolve_direct(cls, slot) {
                        Some(g) => do_call!(g, argc),
                        None if self.program.method_name(slot) == mini_ir::std_names::init() => {
                            // Fieldless class without an explicit ctor: the
                            // args (receiver via Dup) are consumed.
                            stack.truncate(stack.len() - argc);
                            stack.push(Value::Unit);
                        }
                        None => {
                            return Err(VmError::Trap(format!(
                                "no direct method `{}` on class {}",
                                self.program.method_name(slot),
                                self.program.classes[cls as usize].name
                            )))
                        }
                    }
                }
                Insn::New(cls) => {
                    let n = self.program.classes[cls as usize].n_fields as usize;
                    stack.push(Value::Obj(Rc::new(ObjCell {
                        class: cls,
                        fields: RefCell::new(vec![Value::Null; n]),
                    })));
                }
                Insn::NewArray => {
                    let n = pop!().int()?;
                    if n < 0 {
                        throw!(Value::Str(Rc::from("NegativeArraySizeException")));
                    }
                    stack.push(Value::Arr(Rc::new(RefCell::new(vec![
                        Value::Unit;
                        n as usize
                    ]))));
                }
                Insn::ALoad => {
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array read on non-array".into()));
                    };
                    let b = a.borrow();
                    match b.get(i as usize) {
                        Some(v) => stack.push(v.clone()),
                        None => {
                            drop(b);
                            throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                        }
                    }
                }
                Insn::AStore => {
                    let v = pop!();
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array write on non-array".into()));
                    };
                    let mut b = a.borrow_mut();
                    let len = b.len();
                    if (i as usize) < len && i >= 0 {
                        b[i as usize] = v;
                        drop(b);
                        stack.push(Value::Unit);
                    } else {
                        drop(b);
                        throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                    }
                }
                Insn::ALen => {
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("length of non-array".into()));
                    };
                    let n = a.borrow().len() as i64;
                    stack.push(Value::Int(n));
                }
                Insn::Add => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_add(b)));
                }
                Insn::Sub => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Insn::Mul => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Insn::Div => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: / by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_div(b)));
                }
                Insn::Mod => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: % by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_rem(b)));
                }
                Insn::Neg => {
                    let a = pop!().int()?;
                    stack.push(Value::Int(-a));
                }
                Insn::Not => {
                    let a = pop!().truthy()?;
                    stack.push(Value::Bool(!a));
                }
                Insn::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(Self::values_equal(&a, &b)));
                }
                Insn::CmpLt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a < b));
                }
                Insn::CmpGt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a > b));
                }
                Insn::CmpLe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a <= b));
                }
                Insn::CmpGe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a >= b));
                }
                Insn::Concat => {
                    let b = pop!();
                    let a = pop!();
                    let s = format!("{}{}", self.render(&a), self.render(&b));
                    stack.push(Value::Str(Rc::from(s)));
                }
                Insn::Jump(t) => pc = t as usize,
                Insn::JumpIfFalse(t) => {
                    if !pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::Pop => {
                    let _ = pop!();
                }
                Insn::Dup => {
                    if stack.len() <= stack_base {
                        return Err(VmError::Trap("dup on empty stack".into()));
                    }
                    let v = stack.last().unwrap().clone();
                    stack.push(v);
                }
                Insn::Ret => {
                    let v = pop!();
                    stack.truncate(stack_base);
                    arena.truncate(base);
                    match frames.pop() {
                        None => return Ok(v),
                        Some(fr) => {
                            cur = fr.code;
                            pc = fr.pc;
                            base = fr.base;
                            stack_base = fr.stack_base;
                            stack.push(v);
                        }
                    }
                }
                Insn::Throw => {
                    let v = pop!();
                    throw!(v);
                }
                Insn::IsInstance(t) => {
                    let v = pop!();
                    stack.push(Value::Bool(self.type_test(&v, t)));
                }
                Insn::Cast(t) => {
                    let v = pop!();
                    // `null` passes reference casts, as on the JVM.
                    let ok = self.type_test(&v, t)
                        || (matches!(v, Value::Null)
                            && matches!(
                                t,
                                TypeTest::Class(_)
                                    | TypeTest::AnyRef
                                    | TypeTest::Str
                                    | TypeTest::Array
                            ));
                    if ok {
                        stack.push(v);
                    } else {
                        throw!(Value::Str(Rc::from(format!(
                            "ClassCastException: {} is not {:?}",
                            self.class_name(&v),
                            t
                        ))));
                    }
                }
                Insn::Println => {
                    let v = pop!();
                    let line = self.render(&v);
                    self.out.push(line);
                    stack.push(Value::Unit);
                }
                Insn::GetClassName => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.class_name(&v))));
                }
                Insn::ToStr => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.render(&v))));
                }
                Insn::SLen => {
                    let v = pop!();
                    let Value::Str(s) = v else {
                        return Err(VmError::Trap("length of non-string".into()));
                    };
                    stack.push(Value::Int(s.chars().count() as i64));
                }
                Insn::LoadLoad(a, b) => {
                    self.stats.fused_retired += 1;
                    stack.push(arena[base + a as usize].clone());
                    fuel2!();
                    stack.push(arena[base + b as usize].clone());
                }
                Insn::LoadConst(a, k) => {
                    self.stats.fused_retired += 1;
                    stack.push(arena[base + a as usize].clone());
                    fuel2!();
                    stack.push(Value::Int(k));
                }
                Insn::AddConst(k) => {
                    self.stats.fused_retired += 1;
                    fuel2!();
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_add(k)));
                }
                Insn::AddStore(s) => {
                    self.stats.fused_retired += 1;
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    fuel2!();
                    arena[base + s as usize] = Value::Int(a.wrapping_add(b));
                }
                Insn::LoadCall(x, g, argc) => {
                    self.stats.fused_retired += 1;
                    stack.push(arena[base + x as usize].clone());
                    fuel2!();
                    do_call!(g, argc as usize);
                }
                Insn::CmpBranch(kind, sense, t) => {
                    self.stats.fused_retired += 1;
                    let b = pop!();
                    let a = pop!();
                    let cond = match kind {
                        Cmp::Eq => Self::values_equal(&a, &b),
                        kind => {
                            // Type-check in the reference pop order (b first).
                            let bi = b.int()?;
                            let ai = a.int()?;
                            match kind {
                                Cmp::Lt => ai < bi,
                                Cmp::Gt => ai > bi,
                                Cmp::Le => ai <= bi,
                                Cmp::Ge => ai >= bi,
                                Cmp::Eq => unreachable!("handled above"),
                            }
                        }
                    };
                    fuel2!();
                    if cond == sense {
                        pc = t as usize;
                    }
                }
            }
        }
    }

    fn render(&self, v: &Value) -> String {
        match v {
            Value::Obj(o) => format!(
                "{}@{:p}",
                self.program.classes[o.class as usize].name,
                Rc::as_ptr(o)
            ),
            other => other.to_string(),
        }
    }
}
