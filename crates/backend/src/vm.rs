//! The stack VM that executes compiled [`Program`]s.

use crate::bytecode::*;
use mini_ir::Name;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime value. The representation is uniformly tagged, which is why the
/// pipeline needs no boxing phase (see DESIGN.md).
#[derive(Clone, Debug)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Rc<str>),
    /// The null reference.
    Null,
    /// An object instance.
    Obj(Rc<ObjCell>),
    /// An array.
    Arr(Rc<RefCell<Vec<Value>>>),
}

/// Heap storage of one object.
#[derive(Debug)]
pub struct ObjCell {
    /// The object's class.
    pub class: ClassId,
    /// Field slots.
    pub fields: RefCell<Vec<Value>>,
}

impl Value {
    fn truthy(&self) -> Result<bool, VmError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(VmError::Trap(format!("expected boolean, got {other}"))),
        }
    }

    fn int(&self) -> Result<i64, VmError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(VmError::Trap(format!("expected int, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => write!(f, "<obj#{}>", o.class),
            Value::Arr(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum VmError {
    /// A MiniScala exception that was never caught; carries the thrown value.
    Uncaught(Value),
    /// A VM-level fault (type confusion, missing method, fuel exhausted...).
    Trap(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Uncaught(v) => write!(f, "uncaught exception: {v}"),
            VmError::Trap(m) => write!(f, "vm trap: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

enum Flow {
    Value(Value),
    Exception(Value),
}

/// The virtual machine.
///
/// # Examples
///
/// Running a program requires compiling one first; see the `mini-driver`
/// crate's `compile_and_run` for the end-to-end path.
pub struct Vm<'p> {
    program: &'p Program,
    /// Captured `println` output, one entry per call.
    pub out: Vec<String>,
    /// Remaining instruction budget (guards against runaway programs).
    pub fuel: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the default fuel budget (100M instructions).
    pub fn new(program: &'p Program) -> Vm<'p> {
        Vm {
            program,
            out: Vec::new(),
            fuel: 100_000_000,
        }
    }

    /// Runs the program's `main`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Uncaught`] for user exceptions that escape `main`,
    /// or [`VmError::Trap`] for VM-level faults.
    pub fn run_main(&mut self) -> Result<Value, VmError> {
        let entry = self
            .program
            .entry
            .ok_or_else(|| VmError::Trap("program has no main".into()))?;
        self.call(entry, Vec::new())
    }

    /// Calls function `fid` with `args`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vm::run_main`].
    pub fn call(&mut self, fid: FnId, args: Vec<Value>) -> Result<Value, VmError> {
        match self.invoke(fid, args)? {
            Flow::Value(v) => Ok(v),
            Flow::Exception(v) => Err(VmError::Uncaught(v)),
        }
    }

    fn class_name(&self, v: &Value) -> &str {
        match v {
            Value::Unit => "Unit",
            Value::Int(_) => "Int",
            Value::Bool(_) => "Boolean",
            Value::Str(_) => "String",
            Value::Null => "Null",
            Value::Obj(o) => &self.program.classes[o.class as usize].name,
            Value::Arr(_) => "Array",
        }
    }

    fn type_test(&self, v: &Value, t: TypeTest) -> bool {
        match t {
            TypeTest::Any => true,
            TypeTest::AnyRef => matches!(v, Value::Obj(_) | Value::Str(_) | Value::Arr(_)),
            TypeTest::Int => matches!(v, Value::Int(_)),
            TypeTest::Bool => matches!(v, Value::Bool(_)),
            TypeTest::Unit => matches!(v, Value::Unit),
            TypeTest::Str => matches!(v, Value::Str(_)),
            TypeTest::Null => matches!(v, Value::Null),
            TypeTest::Array => matches!(v, Value::Arr(_)),
            TypeTest::Class(c) => match v {
                Value::Obj(o) => self.program.is_subclass(o.class, c),
                _ => false,
            },
        }
    }

    fn values_equal(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Null, Value::Null) => true,
            (Value::Obj(x), Value::Obj(y)) => Rc::ptr_eq(x, y),
            (Value::Arr(x), Value::Arr(y)) => Rc::ptr_eq(x, y),
            _ => false,
        }
    }

    fn invoke(&mut self, fid: FnId, args: Vec<Value>) -> Result<Flow, VmError> {
        let f = &self.program.functions[fid as usize];
        if f.code.is_empty() {
            return Err(VmError::Trap(format!(
                "call to abstract method `{}`",
                f.name
            )));
        }
        if args.len() != f.n_params as usize {
            return Err(VmError::Trap(format!(
                "arity mismatch calling `{}`: expected {}, got {}",
                f.name,
                f.n_params,
                args.len()
            )));
        }
        let mut locals = vec![Value::Unit; f.n_locals as usize];
        locals[..args.len()].clone_from_slice(&args);
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        let code = &f.code;

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| VmError::Trap(format!("stack underflow in `{}`", f.name)))?
            };
        }
        macro_rules! throw {
            ($val:expr) => {{
                let exc: Value = $val;
                // `pc` was already advanced past the faulting instruction.
                let at = pc - 1;
                let mut handled = false;
                for h in &f.handlers {
                    if (h.start as usize) <= at && at < (h.end as usize) {
                        stack.clear();
                        stack.push(exc.clone());
                        pc = h.target as usize;
                        handled = true;
                        break;
                    }
                }
                if !handled {
                    return Ok(Flow::Exception(exc));
                }
                continue;
            }};
        }

        loop {
            if self.fuel == 0 {
                return Err(VmError::Trap("out of fuel".into()));
            }
            self.fuel -= 1;
            let insn = code
                .get(pc)
                .ok_or_else(|| VmError::Trap(format!("pc out of range in `{}`", f.name)))?
                .clone();
            pc += 1;
            match insn {
                Insn::ConstInt(i) => stack.push(Value::Int(i)),
                Insn::ConstBool(b) => stack.push(Value::Bool(b)),
                Insn::ConstStr(s) => stack.push(Value::Str(Rc::from(s.as_str()))),
                Insn::ConstUnit => stack.push(Value::Unit),
                Insn::ConstNull => stack.push(Value::Null),
                Insn::Load(s) => stack.push(locals[s as usize].clone()),
                Insn::Store(s) => {
                    let v = pop!();
                    locals[s as usize] = v;
                }
                Insn::GetField(gid) => {
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = *self.program.classes[o.class as usize]
                                .field_resolve
                                .get(&gid)
                                .ok_or_else(|| {
                                    VmError::Trap(format!("unknown field #{gid} read"))
                                })?;
                            stack.push(o.fields.borrow()[slot as usize].clone())
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field read on {other}")));
                        }
                    }
                }
                Insn::PutField(gid) => {
                    let v = pop!();
                    let recv = pop!();
                    match recv {
                        Value::Obj(o) => {
                            let slot = *self.program.classes[o.class as usize]
                                .field_resolve
                                .get(&gid)
                                .ok_or_else(|| {
                                    VmError::Trap(format!("unknown field #{gid} write"))
                                })?;
                            o.fields.borrow_mut()[slot as usize] = v;
                        }
                        Value::Null => throw!(Value::Str(Rc::from("NullPointerException"))),
                        other => {
                            return Err(VmError::Trap(format!("field write on {other}")));
                        }
                    }
                }
                Insn::CallStatic(g, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    match self.invoke(g, call_args)? {
                        Flow::Value(v) => stack.push(v),
                        Flow::Exception(e) => throw!(e),
                    }
                }
                Insn::CallVirtual(name, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    let recv = call_args
                        .first()
                        .ok_or_else(|| VmError::Trap("virtual call without receiver".into()))?
                        .clone();
                    match self.dispatch(&recv, name) {
                        Some(g) => match self.invoke(g, call_args)? {
                            Flow::Value(v) => stack.push(v),
                            Flow::Exception(e) => throw!(e),
                        },
                        None => match name.as_str() {
                            // Universal defaults.
                            "equals" => {
                                let eq = Self::values_equal(&recv, &call_args[1]);
                                stack.push(Value::Bool(eq));
                            }
                            "toString" => {
                                stack.push(Value::Str(Rc::from(self.render(&recv))));
                            }
                            "getClass" => {
                                stack.push(Value::Str(Rc::from(self.class_name(&recv))));
                            }
                            _ => {
                                if matches!(recv, Value::Null) {
                                    throw!(Value::Str(Rc::from("NullPointerException")));
                                }
                                return Err(VmError::Trap(format!(
                                    "no method `{name}` on {}",
                                    self.class_name(&recv)
                                )));
                            }
                        },
                    }
                }
                Insn::CallDirect(cls, name, argc) => {
                    let split = stack.len() - argc as usize;
                    let call_args = stack.split_off(split);
                    let g = self.program.classes[cls as usize]
                        .vtable
                        .get(&name)
                        .copied();
                    match g {
                        Some(g) => match self.invoke(g, call_args)? {
                            Flow::Value(v) => stack.push(v),
                            Flow::Exception(e) => throw!(e),
                        },
                        None if name == mini_ir::std_names::init() => {
                            // Fieldless class without an explicit ctor.
                            stack.push(Value::Unit);
                        }
                        None => {
                            return Err(VmError::Trap(format!(
                                "no direct method `{name}` on class {}",
                                self.program.classes[cls as usize].name
                            )))
                        }
                    }
                }
                Insn::New(cls) => {
                    let n = self.program.classes[cls as usize].n_fields as usize;
                    stack.push(Value::Obj(Rc::new(ObjCell {
                        class: cls,
                        fields: RefCell::new(vec![Value::Null; n]),
                    })));
                }
                Insn::NewArray => {
                    let n = pop!().int()?;
                    if n < 0 {
                        throw!(Value::Str(Rc::from("NegativeArraySizeException")));
                    }
                    stack.push(Value::Arr(Rc::new(RefCell::new(vec![
                        Value::Unit;
                        n as usize
                    ]))));
                }
                Insn::ALoad => {
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array read on non-array".into()));
                    };
                    let b = a.borrow();
                    match b.get(i as usize) {
                        Some(v) => stack.push(v.clone()),
                        None => {
                            drop(b);
                            throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                        }
                    }
                }
                Insn::AStore => {
                    let v = pop!();
                    let i = pop!().int()?;
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("array write on non-array".into()));
                    };
                    let mut b = a.borrow_mut();
                    let len = b.len();
                    if (i as usize) < len && i >= 0 {
                        b[i as usize] = v;
                        drop(b);
                        stack.push(Value::Unit);
                    } else {
                        drop(b);
                        throw!(Value::Str(Rc::from("ArrayIndexOutOfBoundsException")));
                    }
                }
                Insn::ALen => {
                    let a = pop!();
                    let Value::Arr(a) = a else {
                        return Err(VmError::Trap("length of non-array".into()));
                    };
                    let n = a.borrow().len() as i64;
                    stack.push(Value::Int(n));
                }
                Insn::Add => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_add(b)));
                }
                Insn::Sub => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Insn::Mul => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Insn::Div => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: / by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_div(b)));
                }
                Insn::Mod => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    if b == 0 {
                        throw!(Value::Str(Rc::from("ArithmeticException: % by zero")));
                    }
                    stack.push(Value::Int(a.wrapping_rem(b)));
                }
                Insn::Neg => {
                    let a = pop!().int()?;
                    stack.push(Value::Int(-a));
                }
                Insn::Not => {
                    let a = pop!().truthy()?;
                    stack.push(Value::Bool(!a));
                }
                Insn::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(Self::values_equal(&a, &b)));
                }
                Insn::CmpLt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a < b));
                }
                Insn::CmpGt => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a > b));
                }
                Insn::CmpLe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a <= b));
                }
                Insn::CmpGe => {
                    let b = pop!().int()?;
                    let a = pop!().int()?;
                    stack.push(Value::Bool(a >= b));
                }
                Insn::Concat => {
                    let b = pop!();
                    let a = pop!();
                    let s = format!("{}{}", self.render(&a), self.render(&b));
                    stack.push(Value::Str(Rc::from(s)));
                }
                Insn::Jump(t) => pc = t as usize,
                Insn::JumpIfFalse(t) => {
                    if !pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if pop!().truthy()? {
                        pc = t as usize;
                    }
                }
                Insn::Pop => {
                    let _ = pop!();
                }
                Insn::Dup => {
                    let v = stack
                        .last()
                        .ok_or_else(|| VmError::Trap("dup on empty stack".into()))?
                        .clone();
                    stack.push(v);
                }
                Insn::Ret => {
                    let v = pop!();
                    return Ok(Flow::Value(v));
                }
                Insn::Throw => {
                    let v = pop!();
                    throw!(v);
                }
                Insn::IsInstance(t) => {
                    let v = pop!();
                    stack.push(Value::Bool(self.type_test(&v, t)));
                }
                Insn::Cast(t) => {
                    let v = pop!();
                    // `null` passes reference casts, as on the JVM.
                    let ok = self.type_test(&v, t)
                        || (matches!(v, Value::Null)
                            && matches!(
                                t,
                                TypeTest::Class(_)
                                    | TypeTest::AnyRef
                                    | TypeTest::Str
                                    | TypeTest::Array
                            ));
                    if ok {
                        stack.push(v);
                    } else {
                        throw!(Value::Str(Rc::from(format!(
                            "ClassCastException: {} is not {:?}",
                            self.class_name(&v),
                            t
                        ))));
                    }
                }
                Insn::Println => {
                    let v = pop!();
                    let line = self.render(&v);
                    self.out.push(line);
                    stack.push(Value::Unit);
                }
                Insn::GetClassName => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.class_name(&v))));
                }
                Insn::ToStr => {
                    let v = pop!();
                    stack.push(Value::Str(Rc::from(self.render(&v))));
                }
                Insn::SLen => {
                    let v = pop!();
                    let Value::Str(s) = v else {
                        return Err(VmError::Trap("length of non-string".into()));
                    };
                    stack.push(Value::Int(s.chars().count() as i64));
                }
            }
        }
    }

    fn dispatch(&self, recv: &Value, name: Name) -> Option<FnId> {
        match recv {
            Value::Obj(o) => self.program.classes[o.class as usize]
                .vtable
                .get(&name)
                .copied(),
            _ => None,
        }
    }

    fn render(&self, v: &Value) -> String {
        match v {
            Value::Obj(o) => format!(
                "{}@{:p}",
                self.program.classes[o.class as usize].name,
                Rc::as_ptr(o)
            ),
            other => other.to_string(),
        }
    }
}
