//! Bytecode definitions for the mini VM.
//!
//! The backend plays the role of `GenBCode`: it consumes fully lowered trees
//! (no `Match`, no `Lambda`, no generics) and emits a simple stack bytecode
//! that the in-crate VM interprets, so compiled MiniScala programs actually
//! run.
//!
//! ## Method slots and link-time dispatch tables
//!
//! Virtual and direct calls do not carry method *names*; they carry dense
//! **slot ids** interned into [`Program::method_names`] at codegen time.
//! After all code is emitted, [`Program::link`] builds per-class dense
//! dispatch tables ([`VmClass::vtable_slots`], indexed by slot) and dense
//! field-resolution tables ([`VmClass::field_slots`], indexed by global
//! field id) next to the original `HashMap`s. The VM's fast mode indexes
//! the dense tables; its reference mode resolves the slot back to a `Name`
//! and pays the original per-call `HashMap` probe, which keeps the old
//! dispatch cost honestly measurable in the `exec` A/B bench.

use mini_ir::Name;
use std::collections::HashMap;

/// Index of a class in [`Program::classes`].
pub type ClassId = u32;

/// Index of a function in [`Program::functions`].
pub type FnId = u32;

/// Index into [`Program::method_names`]: a method selector interned at
/// codegen time so call sites and dispatch tables agree on a dense id.
pub type MethodSlot = u32;

/// Sentinel in [`VmClass::field_slots`] for "this class has no layout slot
/// for that global field id".
pub const NO_FIELD: u16 = u16::MAX;

/// A runtime type test target (for `isInstanceOf` / checked casts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TypeTest {
    /// Always true.
    Any,
    /// Any reference value (object, string, array, null is NOT AnyRef).
    AnyRef,
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// String.
    Str,
    /// Null.
    Null,
    /// Instance of the class (or a subclass / implementing class).
    Class(ClassId),
    /// Any array.
    Array,
}

/// Comparison kind carried by the fused [`Insn::CmpBranch`]
/// superinstruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// Universal equality (`CmpEq`).
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// One bytecode instruction.
///
/// Every expression pushes exactly one value; statements are followed by
/// `Pop`.
///
/// The trailing variants never come out of codegen directly:
/// [`Insn::LoadLoad`], [`Insn::LoadConst`], [`Insn::AddConst`],
/// [`Insn::AddStore`], [`Insn::LoadCall`] and [`Insn::CmpBranch`] are
/// **superinstructions** produced by the peephole pass
/// ([`crate::codegen::fuse`]) over the hottest decoded pairs, and
/// [`Insn::CallVirtualIC`] is the inline-cache rewrite of `CallVirtual`
/// that the VM applies per call site when caches are enabled. Both
/// rewrites are applied to a *prepared copy* of the code at VM
/// construction; [`Function::code`] as stored in the [`Program`] stays
/// plain so one linked program serves fast and reference execution alike.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Insn {
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a boolean constant.
    ConstBool(bool),
    /// Push a string constant.
    ConstStr(Name),
    /// Push unit.
    ConstUnit,
    /// Push null.
    ConstNull,
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Push object field (receiver on stack). The operand is a *global*
    /// field id; the receiver's class resolves it to a local slot (trait
    /// fields inherited by several classes may land in different slots).
    GetField(u16),
    /// Pop value and receiver, write field (global field id).
    PutField(u16),
    /// Call a static function with `argc` arguments.
    CallStatic(FnId, u16),
    /// Virtual dispatch on the receiver (receiver + args on stack). The
    /// first operand is a [`MethodSlot`].
    CallVirtual(MethodSlot, u16),
    /// Direct (non-virtual) call into a known class's method — `super`
    /// calls and constructor invocations. The second operand is a
    /// [`MethodSlot`].
    CallDirect(ClassId, MethodSlot, u16),
    /// Allocate an instance of a class (fields null/zero-initialized).
    New(ClassId),
    /// Pop length, push a new array of unit values.
    NewArray,
    /// Pop index and array, push element.
    ALoad,
    /// Pop value, index, array; write element, push unit.
    AStore,
    /// Pop array, push length.
    ALen,
    /// Integer arithmetic.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on zero → throws).
    Div,
    /// Integer remainder.
    Mod,
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Universal value equality (numbers by value, strings by content,
    /// objects by reference).
    CmpEq,
    /// Integer comparisons.
    CmpLt,
    /// `>`
    CmpGt,
    /// `<=`
    CmpLe,
    /// `>=`
    CmpGe,
    /// String concatenation (either operand stringified).
    Concat,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a boolean, jump when false.
    JumpIfFalse(u32),
    /// Pop a boolean, jump when true.
    JumpIfTrue(u32),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Return the top of stack.
    Ret,
    /// Pop a value and throw it.
    Throw,
    /// Pop a value, push whether it passes the type test.
    IsInstance(TypeTest),
    /// Pop a value, push it if it passes the test, else throw a cast error.
    Cast(TypeTest),
    /// Pop a value, print it (captured by the VM), push unit.
    Println,
    /// Pop a value, push its runtime class name as a string.
    GetClassName,
    /// Pop a value, push its string rendering (default `toString`).
    ToStr,
    /// Pop a string, push its length.
    SLen,
    /// Superinstruction: `Load(a); Load(b)`.
    LoadLoad(u16, u16),
    /// Superinstruction: `Load(a); ConstInt(k)`.
    LoadConst(u16, i64),
    /// Superinstruction: `ConstInt(k); Add` — add a constant to the top of
    /// stack without materializing the constant.
    AddConst(i64),
    /// Superinstruction: `Add; Store(s)` — pop two ints, write the sum
    /// straight into a local (the `i = i + d` / accumulator pattern).
    AddStore(u16),
    /// Superinstruction: `Load(a); CallStatic(f, argc)` — push the last
    /// argument and call in one dispatch (hot in call chains).
    LoadCall(u16, FnId, u16),
    /// Superinstruction: integer compare + conditional branch. The `bool`
    /// is the branch *sense*: `true` fuses `JumpIfTrue`, `false` fuses
    /// `JumpIfFalse`.
    CmpBranch(Cmp, bool, u32),
    /// Inline-cached virtual call (VM prepare-time rewrite of
    /// `CallVirtual`): slot, argc, and the id of this call site's cache
    /// entry in the VM's cache table.
    CallVirtualIC(MethodSlot, u16, u32),
}

/// An exception-handler region (JVM-style table entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handler {
    /// First covered instruction index.
    pub start: u32,
    /// One past the last covered instruction index.
    pub end: u32,
    /// Jump target; the VM clears the frame stack and pushes the thrown
    /// value before continuing there.
    pub target: u32,
}

/// One compiled function (static function, method or constructor; methods
/// receive `this` in local slot 0).
#[derive(Clone, Debug)]
pub struct Function {
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (including `this` for methods).
    pub n_params: u16,
    /// Total local slots.
    pub n_locals: u16,
    /// The code.
    pub code: Vec<Insn>,
    /// Exception handlers, inner-first.
    pub handlers: Vec<Handler>,
}

/// One runtime class: field layout and virtual dispatch table.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Diagnostic name.
    pub name: String,
    /// All base classes (linearization, self first) as class ids.
    pub linearization: Vec<ClassId>,
    /// Total number of field slots (including inherited).
    pub n_fields: u16,
    /// Global field id → local slot in this class's layout.
    pub field_resolve: std::collections::HashMap<u16, u16>,
    /// Virtual dispatch table, keyed by selector name. The VM's reference
    /// mode probes this per call; fast mode uses [`VmClass::vtable_slots`].
    pub vtable: std::collections::HashMap<Name, FnId>,
    /// Dense dispatch table indexed by [`MethodSlot`]; built by
    /// [`Program::link`]. Empty until linked.
    pub vtable_slots: Vec<Option<FnId>>,
    /// Dense field resolution indexed by global field id ([`NO_FIELD`]
    /// when absent); built by [`Program::link`]. Empty until linked.
    pub field_slots: Vec<u16>,
}

impl VmClass {
    /// A class with empty dispatch/layout tables (tests, builtins).
    pub fn new(name: impl Into<String>, linearization: Vec<ClassId>, n_fields: u16) -> Self {
        VmClass {
            name: name.into(),
            linearization,
            n_fields,
            field_resolve: HashMap::new(),
            vtable: HashMap::new(),
            vtable_slots: Vec::new(),
            field_slots: Vec::new(),
        }
    }
}

/// A complete compiled program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All classes.
    pub classes: Vec<VmClass>,
    /// All functions.
    pub functions: Vec<Function>,
    /// The `main` entry point, if present.
    pub entry: Option<FnId>,
    /// Interned method selectors: [`MethodSlot`] → name. Call instructions
    /// index this table; the reference VM resolves through it back to the
    /// by-name `HashMap` probe.
    pub method_names: Vec<Name>,
}

impl Program {
    /// True if `sub` is `sup` or derives from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.classes[sub as usize].linearization.contains(&sup)
    }

    /// Total instruction count (diagnostics).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Intern a method selector, returning its dense slot id.
    pub fn intern_method(&mut self, name: Name) -> MethodSlot {
        if let Some(pos) = self.method_names.iter().position(|&n| n == name) {
            return pos as MethodSlot;
        }
        self.method_names.push(name);
        (self.method_names.len() - 1) as MethodSlot
    }

    /// The selector name behind a slot.
    pub fn method_name(&self, slot: MethodSlot) -> Name {
        self.method_names[slot as usize]
    }

    /// Build the dense dispatch and field tables from the `HashMap`s.
    /// Idempotent; call after all code is emitted and all selectors are
    /// interned (codegen does this, hand-assembled test programs must).
    pub fn link(&mut self) {
        let index: HashMap<Name, MethodSlot> = self
            .method_names
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as MethodSlot))
            .collect();
        let n_slots = self.method_names.len();
        let n_fields = self
            .classes
            .iter()
            .flat_map(|c| c.field_resolve.keys())
            .map(|&gid| gid as usize + 1)
            .max()
            .unwrap_or(0);
        for class in &mut self.classes {
            class.vtable_slots = vec![None; n_slots];
            for (name, &fid) in &class.vtable {
                if let Some(&slot) = index.get(name) {
                    class.vtable_slots[slot as usize] = Some(fid);
                }
            }
            class.field_slots = vec![NO_FIELD; n_fields];
            for (&gid, &local) in &class.field_resolve {
                class.field_slots[gid as usize] = local;
            }
        }
    }
}
