//! Bytecode definitions for the mini VM.
//!
//! The backend plays the role of `GenBCode`: it consumes fully lowered trees
//! (no `Match`, no `Lambda`, no generics) and emits a simple stack bytecode
//! that the in-crate VM interprets, so compiled MiniScala programs actually
//! run.

use mini_ir::Name;

/// Index of a class in [`Program::classes`].
pub type ClassId = u32;

/// Index of a function in [`Program::functions`].
pub type FnId = u32;

/// A runtime type test target (for `isInstanceOf` / checked casts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TypeTest {
    /// Always true.
    Any,
    /// Any reference value (object, string, array, null is NOT AnyRef).
    AnyRef,
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// String.
    Str,
    /// Null.
    Null,
    /// Instance of the class (or a subclass / implementing class).
    Class(ClassId),
    /// Any array.
    Array,
}

/// One bytecode instruction.
///
/// Every expression pushes exactly one value; statements are followed by
/// `Pop`.
#[derive(Clone, Debug, PartialEq)]
pub enum Insn {
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a boolean constant.
    ConstBool(bool),
    /// Push a string constant.
    ConstStr(Name),
    /// Push unit.
    ConstUnit,
    /// Push null.
    ConstNull,
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Push object field (receiver on stack). The operand is a *global*
    /// field id; the receiver's class resolves it to a local slot (trait
    /// fields inherited by several classes may land in different slots).
    GetField(u16),
    /// Pop value and receiver, write field (global field id).
    PutField(u16),
    /// Call a static function with `argc` arguments.
    CallStatic(FnId, u16),
    /// Virtual dispatch on the receiver (receiver + args on stack).
    CallVirtual(Name, u16),
    /// Direct (non-virtual) call into a known class's method — `super`
    /// calls and constructor invocations.
    CallDirect(ClassId, Name, u16),
    /// Allocate an instance of a class (fields null/zero-initialized).
    New(ClassId),
    /// Pop length, push a new array of unit values.
    NewArray,
    /// Pop index and array, push element.
    ALoad,
    /// Pop value, index, array; write element, push unit.
    AStore,
    /// Pop array, push length.
    ALen,
    /// Integer arithmetic.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on zero → throws).
    Div,
    /// Integer remainder.
    Mod,
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Universal value equality (numbers by value, strings by content,
    /// objects by reference).
    CmpEq,
    /// Integer comparisons.
    CmpLt,
    /// `>`
    CmpGt,
    /// `<=`
    CmpLe,
    /// `>=`
    CmpGe,
    /// String concatenation (either operand stringified).
    Concat,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a boolean, jump when false.
    JumpIfFalse(u32),
    /// Pop a boolean, jump when true.
    JumpIfTrue(u32),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Return the top of stack.
    Ret,
    /// Pop a value and throw it.
    Throw,
    /// Pop a value, push whether it passes the type test.
    IsInstance(TypeTest),
    /// Pop a value, push it if it passes the test, else throw a cast error.
    Cast(TypeTest),
    /// Pop a value, print it (captured by the VM), push unit.
    Println,
    /// Pop a value, push its runtime class name as a string.
    GetClassName,
    /// Pop a value, push its string rendering (default `toString`).
    ToStr,
    /// Pop a string, push its length.
    SLen,
}

/// An exception-handler region (JVM-style table entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handler {
    /// First covered instruction index.
    pub start: u32,
    /// One past the last covered instruction index.
    pub end: u32,
    /// Jump target; the VM clears the frame stack and pushes the thrown
    /// value before continuing there.
    pub target: u32,
}

/// One compiled function (static function, method or constructor; methods
/// receive `this` in local slot 0).
#[derive(Clone, Debug)]
pub struct Function {
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (including `this` for methods).
    pub n_params: u16,
    /// Total local slots.
    pub n_locals: u16,
    /// The code.
    pub code: Vec<Insn>,
    /// Exception handlers, inner-first.
    pub handlers: Vec<Handler>,
}

/// One runtime class: field layout and virtual dispatch table.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Diagnostic name.
    pub name: String,
    /// All base classes (linearization, self first) as class ids.
    pub linearization: Vec<ClassId>,
    /// Total number of field slots (including inherited).
    pub n_fields: u16,
    /// Global field id → local slot in this class's layout.
    pub field_resolve: std::collections::HashMap<u16, u16>,
    /// Virtual dispatch table.
    pub vtable: std::collections::HashMap<Name, FnId>,
}

/// A complete compiled program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All classes.
    pub classes: Vec<VmClass>,
    /// All functions.
    pub functions: Vec<Function>,
    /// The `main` entry point, if present.
    pub entry: Option<FnId>,
}

impl Program {
    /// True if `sub` is `sup` or derives from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.classes[sub as usize].linearization.contains(&sup)
    }

    /// Total instruction count (diagnostics).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}
