//! # mini-backend — bytecode generation and execution
//!
//! The `GenBCode` analogue of the pipeline plus the runtime it targets: a
//! small stack VM with objects, virtual dispatch (linearization-derived
//! vtables), arrays, exceptions with handler tables, and a captured
//! `println`. Compiled MiniScala programs actually run.

#![warn(missing_docs)]

pub mod bytecode;
pub mod codegen;
pub mod vm;

pub use bytecode::{
    ClassId, Cmp, FnId, Function, Handler, Insn, MethodSlot, Program, TypeTest, VmClass, NO_FIELD,
};
pub use codegen::{fuse, generate, CodegenError};
pub use vm::{Value, Vm, VmError, VmOptions, VmStats, DEFAULT_MAX_FRAMES};

#[cfg(test)]
mod tests;
