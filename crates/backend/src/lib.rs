//! # mini-backend — bytecode generation and execution
//!
//! The `GenBCode` analogue of the pipeline plus the runtime it targets: a
//! small stack VM with objects, virtual dispatch (linearization-derived
//! vtables), arrays, exceptions with handler tables, and a captured
//! `println`. Compiled MiniScala programs actually run.

#![warn(missing_docs)]

pub mod bytecode;
pub mod codegen;
pub mod vm;

pub use bytecode::{ClassId, FnId, Function, Handler, Insn, Program, TypeTest, VmClass};
pub use codegen::{generate, CodegenError};
pub use vm::{Value, Vm, VmError};

#[cfg(test)]
mod tests;
