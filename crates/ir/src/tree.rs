//! Tree nodes.
//!
//! Trees are logically immutable and carry no parent links, exactly as in the
//! paper (§2): this allows subtree sharing between versions of the program
//! and means transformed trees are rebuilt through *copiers*. The copier
//! implements the paper's reuse optimization — "an optimization avoids the
//! copying in the (quite common) case where a transform returns a tree with
//! the same fields as its input" — via [`Tree::map_children`], which returns
//! the original `Arc` when no child changed.
//!
//! Each node carries a [`NodeId`] and a synthetic bump-allocated heap address
//! used by the instrumentation sinks (`gc-sim`, `cache-sim`).

use crate::constant::Constant;
use crate::names::Name;
use crate::span::Span;
use crate::symbol::SymbolId;
use crate::trace;
use crate::types::Type;
use std::fmt;
use std::sync::Arc;

/// Identity of one allocated tree node; doubles as the allocation-order
/// timestamp consumed by the generational-GC simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u64);

/// Shared handle to an immutable tree node.
pub type TreeRef = Arc<Tree>;

/// Enumerates the 32 tree node kinds; the per-kind transform/prepare hooks of
/// the Miniphase framework dispatch on this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NodeKind {
    /// The empty tree.
    Empty = 0,
    /// A literal constant.
    Literal,
    /// A resolved reference to a definition.
    Ident,
    /// An unresolved identifier (parser output; gone after the frontend).
    Unresolved,
    /// A member selection `qual.name`.
    Select,
    /// A function/method application.
    Apply,
    /// A type application `f[T]`.
    TypeApply,
    /// An object allocation `new C`.
    New,
    /// An assignment `lhs = rhs`.
    Assign,
    /// A statement block.
    Block,
    /// A conditional.
    If,
    /// A pattern match.
    Match,
    /// One case of a `Match` or `Try`.
    CaseDef,
    /// A pattern binder `x @ pat`.
    Bind,
    /// A pattern alternative `p1 | p2`.
    Alternative,
    /// A type ascription (or type pattern).
    Typed,
    /// A checked cast (inserted by `Erasure`).
    Cast,
    /// A runtime type test (emitted by `PatternMatcher`).
    IsInstance,
    /// A while loop.
    While,
    /// A try/catch/finally.
    Try,
    /// A throw.
    Throw,
    /// A (possibly non-local) return.
    Return,
    /// An anonymous function.
    Lambda,
    /// A labeled block (jump target).
    Labeled,
    /// A jump to an enclosing label.
    JumpTo,
    /// A sequence literal (from vararg expansion).
    SeqLiteral,
    /// A `val`/`var` definition.
    ValDef,
    /// A `def` definition.
    DefDef,
    /// A class or trait definition.
    ClassDef,
    /// A package's top-level statements.
    PackageDef,
    /// A `this` reference.
    This,
    /// A `super` reference.
    Super,
}

/// Number of distinct node kinds.
pub const NODE_KIND_COUNT: usize = 32;

/// All node kinds in discriminant order.
pub const ALL_NODE_KINDS: [NodeKind; NODE_KIND_COUNT] = [
    NodeKind::Empty,
    NodeKind::Literal,
    NodeKind::Ident,
    NodeKind::Unresolved,
    NodeKind::Select,
    NodeKind::Apply,
    NodeKind::TypeApply,
    NodeKind::New,
    NodeKind::Assign,
    NodeKind::Block,
    NodeKind::If,
    NodeKind::Match,
    NodeKind::CaseDef,
    NodeKind::Bind,
    NodeKind::Alternative,
    NodeKind::Typed,
    NodeKind::Cast,
    NodeKind::IsInstance,
    NodeKind::While,
    NodeKind::Try,
    NodeKind::Throw,
    NodeKind::Return,
    NodeKind::Lambda,
    NodeKind::Labeled,
    NodeKind::JumpTo,
    NodeKind::SeqLiteral,
    NodeKind::ValDef,
    NodeKind::DefDef,
    NodeKind::ClassDef,
    NodeKind::PackageDef,
    NodeKind::This,
    NodeKind::Super,
];

/// A set of node kinds, used by the fusion engine to know which kinds a
/// Miniphase actually transforms or prepares (the Rust equivalent of the
/// paper's `transform == id` test, Listing 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeKindSet(u64);

impl NodeKindSet {
    /// The empty set.
    pub const EMPTY: NodeKindSet = NodeKindSet(0);

    /// The set of all kinds.
    pub const ALL: NodeKindSet = NodeKindSet((1u64 << NODE_KIND_COUNT) - 1);

    /// A singleton set.
    pub fn of(kind: NodeKind) -> NodeKindSet {
        NodeKindSet(1u64 << kind as u8)
    }

    /// Builds a set from an iterator of kinds.
    pub fn from_kinds<I: IntoIterator<Item = NodeKind>>(kinds: I) -> NodeKindSet {
        let mut s = NodeKindSet::EMPTY;
        for k in kinds {
            s = s.with(k);
        }
        s
    }

    /// Returns the set with `kind` added.
    pub fn with(self, kind: NodeKind) -> NodeKindSet {
        NodeKindSet(self.0 | (1u64 << kind as u8))
    }

    /// True if `kind` is a member.
    pub fn contains(self, kind: NodeKind) -> bool {
        self.0 & (1u64 << kind as u8) != 0
    }

    /// Set union.
    pub fn union(self, other: NodeKindSet) -> NodeKindSet {
        NodeKindSet(self.0 | other.0)
    }

    /// True if no kinds are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member kinds.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member kinds in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = NodeKind> {
        ALL_NODE_KINDS
            .into_iter()
            .filter(move |&k| self.contains(k))
    }
}

impl fmt::Debug for NodeKindSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The shape of one tree node.
#[derive(Clone, Debug)]
pub enum TreeKind {
    /// The empty tree (absent else-branch, empty guard, abstract body).
    Empty,
    /// A literal constant.
    Literal {
        /// The constant value.
        value: Constant,
    },
    /// A resolved reference.
    Ident {
        /// The referenced definition.
        sym: SymbolId,
    },
    /// An unresolved identifier produced by the parser.
    Unresolved {
        /// The source name.
        name: Name,
    },
    /// A member selection.
    Select {
        /// The qualifier expression.
        qual: TreeRef,
        /// The selected name.
        name: Name,
        /// The resolved member (NONE before the typer).
        sym: SymbolId,
    },
    /// An application `fun(args)`.
    Apply {
        /// The applied function.
        fun: TreeRef,
        /// Arguments.
        args: Vec<TreeRef>,
    },
    /// A type application `fun[targs]`.
    TypeApply {
        /// The applied (polymorphic) function.
        fun: TreeRef,
        /// Type arguments.
        targs: Vec<Type>,
    },
    /// An object allocation; the node's type is the allocated class type.
    New {
        /// The allocated class type.
        tpe: Type,
    },
    /// An assignment.
    Assign {
        /// The assigned location (Ident or Select).
        lhs: TreeRef,
        /// The assigned value.
        rhs: TreeRef,
    },
    /// A block of statements ending in an expression.
    Block {
        /// Leading statements.
        stats: Vec<TreeRef>,
        /// The result expression.
        expr: TreeRef,
    },
    /// A conditional expression.
    If {
        /// Condition.
        cond: TreeRef,
        /// Then branch.
        then_branch: TreeRef,
        /// Else branch (`Empty` when absent).
        else_branch: TreeRef,
    },
    /// A pattern match; eliminated by `PatternMatcher`.
    Match {
        /// The scrutinee.
        selector: TreeRef,
        /// `CaseDef` children.
        cases: Vec<TreeRef>,
    },
    /// One case clause.
    CaseDef {
        /// The pattern.
        pat: TreeRef,
        /// The guard (`Empty` when absent).
        guard: TreeRef,
        /// The case body.
        body: TreeRef,
    },
    /// A pattern binder.
    Bind {
        /// The bound variable's symbol.
        sym: SymbolId,
        /// The inner pattern.
        pat: TreeRef,
    },
    /// A pattern alternative.
    Alternative {
        /// The alternatives.
        pats: Vec<TreeRef>,
    },
    /// A type ascription, or a type pattern when under a `CaseDef`.
    Typed {
        /// The ascribed expression / inner pattern.
        expr: TreeRef,
        /// The ascribed type.
        tpe: Type,
    },
    /// A checked cast.
    Cast {
        /// The cast expression.
        expr: TreeRef,
        /// The target type.
        tpe: Type,
    },
    /// A runtime type test.
    IsInstance {
        /// The tested expression.
        expr: TreeRef,
        /// The tested-against type.
        tpe: Type,
    },
    /// A while loop.
    While {
        /// Condition.
        cond: TreeRef,
        /// Body.
        body: TreeRef,
    },
    /// Try/catch/finally; catch cases are `CaseDef`s.
    Try {
        /// The protected expression.
        block: TreeRef,
        /// Catch cases.
        cases: Vec<TreeRef>,
        /// Finalizer (`Empty` when absent).
        finalizer: TreeRef,
    },
    /// A throw expression.
    Throw {
        /// The thrown value.
        expr: TreeRef,
    },
    /// A return; `from` is the enclosing method (supports non-local returns).
    Return {
        /// The returned value (`Empty` for unit returns).
        expr: TreeRef,
        /// The method returned from.
        from: SymbolId,
    },
    /// An anonymous function; params are `ValDef`s.
    Lambda {
        /// The parameters.
        params: Vec<TreeRef>,
        /// The body.
        body: TreeRef,
    },
    /// A labeled block, target of `JumpTo` (loops after `TailRec`).
    Labeled {
        /// The label symbol.
        label: SymbolId,
        /// The body.
        body: TreeRef,
    },
    /// A jump to an enclosing `Labeled`, re-binding its parameters.
    JumpTo {
        /// The target label.
        label: SymbolId,
        /// New values for the label's parameters.
        args: Vec<TreeRef>,
    },
    /// A sequence literal produced by `ElimRepeated`.
    SeqLiteral {
        /// Element expressions.
        elems: Vec<TreeRef>,
        /// Element type.
        elem_tpe: Type,
    },
    /// A value definition.
    ValDef {
        /// The defined symbol.
        sym: SymbolId,
        /// The right-hand side (`Empty` for abstract/param).
        rhs: TreeRef,
    },
    /// A method definition.
    DefDef {
        /// The defined symbol.
        sym: SymbolId,
        /// Parameter lists of `ValDef`s.
        paramss: Vec<Vec<TreeRef>>,
        /// The body (`Empty` when abstract).
        rhs: TreeRef,
    },
    /// A class or trait definition.
    ClassDef {
        /// The class symbol (parents and members recorded in the symbol).
        sym: SymbolId,
        /// The template body.
        body: Vec<TreeRef>,
    },
    /// Top-level statements of a compilation unit.
    PackageDef {
        /// The package symbol.
        pkg: SymbolId,
        /// Top-level definitions.
        stats: Vec<TreeRef>,
    },
    /// A `this` reference.
    This {
        /// The referenced class.
        cls: SymbolId,
    },
    /// A `super` reference.
    Super {
        /// The class whose parent is referenced.
        cls: SymbolId,
    },
}

impl TreeKind {
    /// The node kind discriminant.
    pub fn node_kind(&self) -> NodeKind {
        match self {
            TreeKind::Empty => NodeKind::Empty,
            TreeKind::Literal { .. } => NodeKind::Literal,
            TreeKind::Ident { .. } => NodeKind::Ident,
            TreeKind::Unresolved { .. } => NodeKind::Unresolved,
            TreeKind::Select { .. } => NodeKind::Select,
            TreeKind::Apply { .. } => NodeKind::Apply,
            TreeKind::TypeApply { .. } => NodeKind::TypeApply,
            TreeKind::New { .. } => NodeKind::New,
            TreeKind::Assign { .. } => NodeKind::Assign,
            TreeKind::Block { .. } => NodeKind::Block,
            TreeKind::If { .. } => NodeKind::If,
            TreeKind::Match { .. } => NodeKind::Match,
            TreeKind::CaseDef { .. } => NodeKind::CaseDef,
            TreeKind::Bind { .. } => NodeKind::Bind,
            TreeKind::Alternative { .. } => NodeKind::Alternative,
            TreeKind::Typed { .. } => NodeKind::Typed,
            TreeKind::Cast { .. } => NodeKind::Cast,
            TreeKind::IsInstance { .. } => NodeKind::IsInstance,
            TreeKind::While { .. } => NodeKind::While,
            TreeKind::Try { .. } => NodeKind::Try,
            TreeKind::Throw { .. } => NodeKind::Throw,
            TreeKind::Return { .. } => NodeKind::Return,
            TreeKind::Lambda { .. } => NodeKind::Lambda,
            TreeKind::Labeled { .. } => NodeKind::Labeled,
            TreeKind::JumpTo { .. } => NodeKind::JumpTo,
            TreeKind::SeqLiteral { .. } => NodeKind::SeqLiteral,
            TreeKind::ValDef { .. } => NodeKind::ValDef,
            TreeKind::DefDef { .. } => NodeKind::DefDef,
            TreeKind::ClassDef { .. } => NodeKind::ClassDef,
            TreeKind::PackageDef { .. } => NodeKind::PackageDef,
            TreeKind::This { .. } => NodeKind::This,
            TreeKind::Super { .. } => NodeKind::Super,
        }
    }

    /// A deterministic estimate of the node's heap footprint in bytes,
    /// modelling a JVM-style object header plus fields; feeds the allocation
    /// figures (paper Figs 5–6) and the synthetic heap addresses.
    pub fn approx_bytes(&self) -> u32 {
        const HEADER: u32 = 48; // object header + id + span + type slot
        let payload = match self {
            TreeKind::Empty | TreeKind::This { .. } | TreeKind::Super { .. } => 8,
            TreeKind::Literal { .. } | TreeKind::Ident { .. } | TreeKind::Unresolved { .. } => 16,
            TreeKind::Select { .. } => 24,
            TreeKind::Apply { args, .. } => 8 + vec_bytes(args.len()),
            TreeKind::TypeApply { targs, .. } => 8 + vec_bytes(targs.len()),
            TreeKind::New { .. } => 16,
            TreeKind::Assign { .. } | TreeKind::While { .. } | TreeKind::Bind { .. } => 16,
            TreeKind::Block { stats, .. } => 8 + vec_bytes(stats.len()),
            TreeKind::If { .. } | TreeKind::CaseDef { .. } => 24,
            TreeKind::Match { cases, .. } => 8 + vec_bytes(cases.len()),
            TreeKind::Alternative { pats } => vec_bytes(pats.len()),
            TreeKind::Typed { .. } | TreeKind::Cast { .. } | TreeKind::IsInstance { .. } => 24,
            TreeKind::Try { cases, .. } => 16 + vec_bytes(cases.len()),
            TreeKind::Throw { .. } => 8,
            TreeKind::Return { .. } => 16,
            TreeKind::Lambda { params, .. } => 8 + vec_bytes(params.len()),
            TreeKind::Labeled { .. } => 16,
            TreeKind::JumpTo { args, .. } => 8 + vec_bytes(args.len()),
            TreeKind::SeqLiteral { elems, .. } => 16 + vec_bytes(elems.len()),
            TreeKind::ValDef { .. } => 16,
            TreeKind::DefDef { paramss, .. } => {
                16 + paramss.iter().map(|l| vec_bytes(l.len())).sum::<u32>()
            }
            TreeKind::ClassDef { body, .. } => 8 + vec_bytes(body.len()),
            TreeKind::PackageDef { stats, .. } => 8 + vec_bytes(stats.len()),
        };
        HEADER + payload
    }
}

fn vec_bytes(n: usize) -> u32 {
    24 + 8 * n as u32
}

/// One immutable tree node.
///
/// Nodes are only created through [`crate::Ctx::mk`] (or the convenience
/// builders on `Ctx`), which assigns the id, the synthetic heap address and
/// reports the allocation to the instrumentation sinks.
pub struct Tree {
    pub(crate) id: NodeId,
    pub(crate) addr: u64,
    pub(crate) bytes: u32,
    pub(crate) span: Span,
    pub(crate) tpe: Type,
    pub(crate) kind: TreeKind,
}

impl Tree {
    /// The node's identity / allocation timestamp.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's synthetic heap address (bump allocated).
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The node's modelled footprint in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Source span.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The node's type.
    pub fn tpe(&self) -> &Type {
        &self.tpe
    }

    /// The node's shape.
    pub fn kind(&self) -> &TreeKind {
        &self.kind
    }

    /// The kind discriminant.
    pub fn node_kind(&self) -> NodeKind {
        self.kind.node_kind()
    }

    /// True if this is the empty tree.
    pub fn is_empty_tree(&self) -> bool {
        matches!(self.kind, TreeKind::Empty)
    }

    /// True for definition nodes (`ValDef`, `DefDef`, `ClassDef`).
    pub fn is_def(&self) -> bool {
        matches!(
            self.kind,
            TreeKind::ValDef { .. } | TreeKind::DefDef { .. } | TreeKind::ClassDef { .. }
        )
    }

    /// The defined symbol for definition nodes, binders and labels.
    pub fn def_sym(&self) -> SymbolId {
        match &self.kind {
            TreeKind::ValDef { sym, .. }
            | TreeKind::DefDef { sym, .. }
            | TreeKind::ClassDef { sym, .. }
            | TreeKind::Bind { sym, .. } => *sym,
            TreeKind::Labeled { label, .. } => *label,
            _ => SymbolId::NONE,
        }
    }

    /// The referenced symbol for reference nodes.
    pub fn ref_sym(&self) -> SymbolId {
        match &self.kind {
            TreeKind::Ident { sym } => *sym,
            TreeKind::Select { sym, .. } => *sym,
            TreeKind::This { cls } | TreeKind::Super { cls } => *cls,
            TreeKind::JumpTo { label, .. } => *label,
            TreeKind::Return { from, .. } => *from,
            _ => SymbolId::NONE,
        }
    }

    /// Invokes `f` on every direct child, in evaluation order.
    pub fn for_each_child(&self, f: &mut dyn FnMut(&TreeRef)) {
        match &self.kind {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Ident { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => {}
            TreeKind::Select { qual, .. } => f(qual),
            TreeKind::Apply { fun, args } => {
                f(fun);
                args.iter().for_each(&mut *f);
            }
            TreeKind::TypeApply { fun, .. } => f(fun),
            TreeKind::Assign { lhs, rhs } => {
                f(lhs);
                f(rhs);
            }
            TreeKind::Block { stats, expr } => {
                stats.iter().for_each(&mut *f);
                f(expr);
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            TreeKind::Match { selector, cases } => {
                f(selector);
                cases.iter().for_each(&mut *f);
            }
            TreeKind::CaseDef { pat, guard, body } => {
                f(pat);
                f(guard);
                f(body);
            }
            TreeKind::Bind { pat, .. } => f(pat),
            TreeKind::Alternative { pats } => pats.iter().for_each(&mut *f),
            TreeKind::Typed { expr, .. }
            | TreeKind::Cast { expr, .. }
            | TreeKind::IsInstance { expr, .. }
            | TreeKind::Throw { expr }
            | TreeKind::Return { expr, .. } => f(expr),
            TreeKind::While { cond, body } => {
                f(cond);
                f(body);
            }
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => {
                f(block);
                cases.iter().for_each(&mut *f);
                f(finalizer);
            }
            TreeKind::Lambda { params, body } => {
                params.iter().for_each(&mut *f);
                f(body);
            }
            TreeKind::Labeled { body, .. } => f(body),
            TreeKind::JumpTo { args, .. } => args.iter().for_each(&mut *f),
            TreeKind::SeqLiteral { elems, .. } => elems.iter().for_each(&mut *f),
            TreeKind::ValDef { rhs, .. } => f(rhs),
            TreeKind::DefDef { paramss, rhs, .. } => {
                for ps in paramss {
                    ps.iter().for_each(&mut *f);
                }
                f(rhs);
            }
            TreeKind::ClassDef { body, .. } => body.iter().for_each(&mut *f),
            TreeKind::PackageDef { stats, .. } => stats.iter().for_each(&mut *f),
        }
    }

    /// Collects the direct children.
    pub fn children(&self) -> Vec<TreeRef> {
        let mut out = Vec::new();
        self.for_each_child(&mut |c| out.push(Arc::clone(c)));
        out
    }

    /// Number of direct children.
    pub fn child_count(&self) -> usize {
        let mut n = 0;
        self.for_each_child(&mut |_| n += 1);
        n
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree#{}({:?}, tpe={}, {} children)",
            self.id.0,
            self.node_kind(),
            self.tpe,
            self.child_count()
        )
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        trace::record_free(self.id, self.bytes);
    }
}

/// Invokes `macro_name!` with the list of all node kinds, each as
/// `(Variant, transform_method, prepare_method)`.
///
/// This is how downstream crates (notably the `miniphase` framework)
/// generate one hook per node kind without repeating the kind list.
#[macro_export]
macro_rules! with_node_kinds {
    ($m:ident) => {
        $m! {
            (Empty, transform_empty, prepare_empty),
            (Literal, transform_literal, prepare_literal),
            (Ident, transform_ident, prepare_ident),
            (Unresolved, transform_unresolved, prepare_unresolved),
            (Select, transform_select, prepare_select),
            (Apply, transform_apply, prepare_apply),
            (TypeApply, transform_type_apply, prepare_type_apply),
            (New, transform_new, prepare_new),
            (Assign, transform_assign, prepare_assign),
            (Block, transform_block, prepare_block),
            (If, transform_if, prepare_if),
            (Match, transform_match, prepare_match),
            (CaseDef, transform_case_def, prepare_case_def),
            (Bind, transform_bind, prepare_bind),
            (Alternative, transform_alternative, prepare_alternative),
            (Typed, transform_typed, prepare_typed),
            (Cast, transform_cast, prepare_cast),
            (IsInstance, transform_is_instance, prepare_is_instance),
            (While, transform_while, prepare_while),
            (Try, transform_try, prepare_try),
            (Throw, transform_throw, prepare_throw),
            (Return, transform_return, prepare_return),
            (Lambda, transform_lambda, prepare_lambda),
            (Labeled, transform_labeled, prepare_labeled),
            (JumpTo, transform_jump_to, prepare_jump_to),
            (SeqLiteral, transform_seq_literal, prepare_seq_literal),
            (ValDef, transform_val_def, prepare_val_def),
            (DefDef, transform_def_def, prepare_def_def),
            (ClassDef, transform_class_def, prepare_class_def),
            (PackageDef, transform_package_def, prepare_package_def),
            (This, transform_this, prepare_this),
            (Super, transform_super, prepare_super),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn node_kind_set_operations() {
        let s = NodeKindSet::of(NodeKind::ValDef).with(NodeKind::Apply);
        assert!(s.contains(NodeKind::ValDef));
        assert!(s.contains(NodeKind::Apply));
        assert!(!s.contains(NodeKind::If));
        assert_eq!(s.len(), 2);
        assert_eq!(s.union(NodeKindSet::of(NodeKind::If)).len(), 3);
        assert_eq!(NodeKindSet::ALL.len(), NODE_KIND_COUNT);
        let collected: Vec<NodeKind> = s.iter().collect();
        assert_eq!(collected, vec![NodeKind::Apply, NodeKind::ValDef]);
    }

    #[test]
    fn all_node_kinds_have_distinct_discriminants() {
        for (i, k) in ALL_NODE_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn children_follow_evaluation_order() {
        let mut ctx = Ctx::new();
        let a = ctx.lit_int(1);
        let b = ctx.lit_int(2);
        let c = ctx.lit_int(3);
        let ids = [a.id(), b.id(), c.id()];
        let ifn = ctx.mk(
            TreeKind::If {
                cond: a,
                then_branch: b,
                else_branch: c,
            },
            Type::Int,
            Span::SYNTHETIC,
        );
        let got: Vec<NodeId> = ifn.children().iter().map(|t| t.id()).collect();
        assert_eq!(got, ids);
        assert_eq!(ifn.child_count(), 3);
    }

    #[test]
    fn approx_bytes_scales_with_arity() {
        let small = TreeKind::Apply {
            fun: Ctx::new().lit_int(0),
            args: vec![],
        };
        let mut ctx = Ctx::new();
        let big = TreeKind::Apply {
            fun: ctx.lit_int(0),
            args: (0..10).map(|i| ctx.lit_int(i)).collect(),
        };
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn def_and_ref_sym_accessors() {
        let mut ctx = Ctx::new();
        let sym = {
            let b = ctx.symbols.builtins().root_pkg;
            ctx.symbols
                .new_term(b, Name::from("x"), crate::Flags::EMPTY, Type::Int)
        };
        let rhs = ctx.lit_int(1);
        let vd = ctx.mk(TreeKind::ValDef { sym, rhs }, Type::Unit, Span::SYNTHETIC);
        assert_eq!(vd.def_sym(), sym);
        assert!(vd.is_def());
        let id = ctx.ident(sym);
        assert_eq!(id.ref_sym(), sym);
        assert!(!id.is_def());
    }
}
