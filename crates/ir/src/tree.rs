//! Tree nodes.
//!
//! Trees are logically immutable and carry no parent links, exactly as in the
//! paper (§2): this allows subtree sharing between versions of the program
//! and means transformed trees are rebuilt through *copiers*. The copier
//! implements the paper's reuse optimization — "an optimization avoids the
//! copying in the (quite common) case where a transform returns a tree with
//! the same fields as its input" — via [`Tree::map_children`], which returns
//! the original `Arc` when no child changed.
//!
//! Each node carries a [`NodeId`] and a synthetic bump-allocated heap address
//! used by the instrumentation sinks (`gc-sim`, `cache-sim`).

use crate::constant::Constant;
use crate::names::Name;
use crate::span::Span;
use crate::symbol::SymbolId;
use crate::trace;
use crate::types::Type;
use std::fmt;
use std::rc::Rc;

/// Identity of one allocated tree node; doubles as the allocation-order
/// timestamp consumed by the generational-GC simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u64);

/// Shared handle to an immutable tree node.
pub type TreeRef = Rc<Tree>;

/// Child list with inline storage for up to two children.
///
/// Arity profiling on the dotty-like corpus shows the overwhelming majority
/// of variadic child lists (`Apply` args, `Block` stats, `JumpTo` args, …)
/// hold one or two entries, so the traversal hot path was paying a heap
/// `Vec` allocation per rebuilt node for nothing. `Kids` stores 0–2 children
/// inline in the node and only spills to a heap `Vec` at three or more.
///
/// Dereferences to `[TreeRef]`, so read sites (`iter`, `len`, indexing) work
/// exactly as they did when the fields were `Vec<TreeRef>`.
#[derive(Clone, Default)]
pub enum Kids {
    /// No children.
    #[default]
    K0,
    /// One inline child.
    K1([TreeRef; 1]),
    /// Two inline children.
    K2([TreeRef; 2]),
    /// Three or more children, heap-allocated.
    Spilled(Vec<TreeRef>),
}

impl Kids {
    /// The empty list.
    pub const fn new() -> Kids {
        Kids::K0
    }

    /// Appends a child (spilling to the heap on the third).
    pub fn push(&mut self, child: TreeRef) {
        let cur = std::mem::replace(self, Kids::K0);
        *self = match cur {
            Kids::K0 => Kids::K1([child]),
            Kids::K1([a]) => Kids::K2([a, child]),
            Kids::K2([a, b]) => Kids::Spilled(vec![a, b, child]),
            Kids::Spilled(mut v) => {
                v.push(child);
                Kids::Spilled(v)
            }
        }
    }

    /// Consumes the list, feeding each child to `f` (no allocation for the
    /// inline variants — this is the destructor's path).
    pub fn drain(self, f: &mut impl FnMut(TreeRef)) {
        match self {
            Kids::K0 => {}
            Kids::K1([a]) => f(a),
            Kids::K2([a, b]) => {
                f(a);
                f(b);
            }
            Kids::Spilled(v) => {
                for c in v {
                    f(c);
                }
            }
        }
    }
}

impl std::ops::Deref for Kids {
    type Target = [TreeRef];
    fn deref(&self) -> &[TreeRef] {
        match self {
            Kids::K0 => &[],
            Kids::K1(a) => a,
            Kids::K2(a) => a,
            Kids::Spilled(v) => v,
        }
    }
}

impl From<Vec<TreeRef>> for Kids {
    fn from(mut v: Vec<TreeRef>) -> Kids {
        match v.len() {
            0 => Kids::K0,
            1 => Kids::K1([v.pop().expect("len 1")]),
            2 => {
                let b = v.pop().expect("len 2");
                let a = v.pop().expect("len 2");
                Kids::K2([a, b])
            }
            _ => Kids::Spilled(v),
        }
    }
}

impl<const N: usize> From<[TreeRef; N]> for Kids {
    fn from(arr: [TreeRef; N]) -> Kids {
        let mut it = arr.into_iter();
        match N {
            0 => Kids::K0,
            1 => Kids::K1([it.next().expect("len 1")]),
            2 => Kids::K2([it.next().expect("len 2"), it.next().expect("len 2")]),
            _ => Kids::Spilled(it.collect()),
        }
    }
}

impl FromIterator<TreeRef> for Kids {
    fn from_iter<I: IntoIterator<Item = TreeRef>>(iter: I) -> Kids {
        let mut it = iter.into_iter();
        let Some(a) = it.next() else { return Kids::K0 };
        let Some(b) = it.next() else {
            return Kids::K1([a]);
        };
        let Some(c) = it.next() else {
            return Kids::K2([a, b]);
        };
        let mut v = Vec::with_capacity(it.size_hint().0 + 3);
        v.push(a);
        v.push(b);
        v.push(c);
        v.extend(it);
        Kids::Spilled(v)
    }
}

/// Owned iterator over a [`Kids`] list — no heap allocation for the
/// inline variants.
pub enum KidsIntoIter {
    /// Inline children, emitted front to back.
    Inline([Option<TreeRef>; 2]),
    /// Spilled children.
    Heap(std::vec::IntoIter<TreeRef>),
}

impl Iterator for KidsIntoIter {
    type Item = TreeRef;
    fn next(&mut self) -> Option<TreeRef> {
        match self {
            KidsIntoIter::Inline([a, b]) => a.take().or_else(|| b.take()),
            KidsIntoIter::Heap(it) => it.next(),
        }
    }
}

impl Extend<TreeRef> for Kids {
    fn extend<I: IntoIterator<Item = TreeRef>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

impl IntoIterator for Kids {
    type Item = TreeRef;
    type IntoIter = KidsIntoIter;
    fn into_iter(self) -> KidsIntoIter {
        match self {
            Kids::K0 => KidsIntoIter::Inline([None, None]),
            Kids::K1([a]) => KidsIntoIter::Inline([Some(a), None]),
            Kids::K2([a, b]) => KidsIntoIter::Inline([Some(a), Some(b)]),
            Kids::Spilled(v) => KidsIntoIter::Heap(v.into_iter()),
        }
    }
}

impl<'a> IntoIterator for &'a Kids {
    type Item = &'a TreeRef;
    type IntoIter = std::slice::Iter<'a, TreeRef>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for Kids {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Enumerates the 32 tree node kinds; the per-kind transform/prepare hooks of
/// the Miniphase framework dispatch on this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NodeKind {
    /// The empty tree.
    Empty = 0,
    /// A literal constant.
    Literal,
    /// A resolved reference to a definition.
    Ident,
    /// An unresolved identifier (parser output; gone after the frontend).
    Unresolved,
    /// A member selection `qual.name`.
    Select,
    /// A function/method application.
    Apply,
    /// A type application `f[T]`.
    TypeApply,
    /// An object allocation `new C`.
    New,
    /// An assignment `lhs = rhs`.
    Assign,
    /// A statement block.
    Block,
    /// A conditional.
    If,
    /// A pattern match.
    Match,
    /// One case of a `Match` or `Try`.
    CaseDef,
    /// A pattern binder `x @ pat`.
    Bind,
    /// A pattern alternative `p1 | p2`.
    Alternative,
    /// A type ascription (or type pattern).
    Typed,
    /// A checked cast (inserted by `Erasure`).
    Cast,
    /// A runtime type test (emitted by `PatternMatcher`).
    IsInstance,
    /// A while loop.
    While,
    /// A try/catch/finally.
    Try,
    /// A throw.
    Throw,
    /// A (possibly non-local) return.
    Return,
    /// An anonymous function.
    Lambda,
    /// A labeled block (jump target).
    Labeled,
    /// A jump to an enclosing label.
    JumpTo,
    /// A sequence literal (from vararg expansion).
    SeqLiteral,
    /// A `val`/`var` definition.
    ValDef,
    /// A `def` definition.
    DefDef,
    /// A class or trait definition.
    ClassDef,
    /// A package's top-level statements.
    PackageDef,
    /// A `this` reference.
    This,
    /// A `super` reference.
    Super,
}

/// Number of distinct node kinds.
pub const NODE_KIND_COUNT: usize = 32;

/// All node kinds in discriminant order.
pub const ALL_NODE_KINDS: [NodeKind; NODE_KIND_COUNT] = [
    NodeKind::Empty,
    NodeKind::Literal,
    NodeKind::Ident,
    NodeKind::Unresolved,
    NodeKind::Select,
    NodeKind::Apply,
    NodeKind::TypeApply,
    NodeKind::New,
    NodeKind::Assign,
    NodeKind::Block,
    NodeKind::If,
    NodeKind::Match,
    NodeKind::CaseDef,
    NodeKind::Bind,
    NodeKind::Alternative,
    NodeKind::Typed,
    NodeKind::Cast,
    NodeKind::IsInstance,
    NodeKind::While,
    NodeKind::Try,
    NodeKind::Throw,
    NodeKind::Return,
    NodeKind::Lambda,
    NodeKind::Labeled,
    NodeKind::JumpTo,
    NodeKind::SeqLiteral,
    NodeKind::ValDef,
    NodeKind::DefDef,
    NodeKind::ClassDef,
    NodeKind::PackageDef,
    NodeKind::This,
    NodeKind::Super,
];

/// A set of node kinds, used by the fusion engine to know which kinds a
/// Miniphase actually transforms or prepares (the Rust equivalent of the
/// paper's `transform == id` test, Listing 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeKindSet(u64);

impl NodeKindSet {
    /// The empty set.
    pub const EMPTY: NodeKindSet = NodeKindSet(0);

    /// The set of all kinds.
    pub const ALL: NodeKindSet = NodeKindSet((1u64 << NODE_KIND_COUNT) - 1);

    /// A singleton set.
    pub fn of(kind: NodeKind) -> NodeKindSet {
        NodeKindSet(1u64 << kind as u8)
    }

    /// Builds a set from an iterator of kinds.
    pub fn from_kinds<I: IntoIterator<Item = NodeKind>>(kinds: I) -> NodeKindSet {
        let mut s = NodeKindSet::EMPTY;
        for k in kinds {
            s = s.with(k);
        }
        s
    }

    /// Returns the set with `kind` added.
    pub fn with(self, kind: NodeKind) -> NodeKindSet {
        NodeKindSet(self.0 | (1u64 << kind as u8))
    }

    /// True if `kind` is a member.
    pub fn contains(self, kind: NodeKind) -> bool {
        self.0 & (1u64 << kind as u8) != 0
    }

    /// Set union.
    pub fn union(self, other: NodeKindSet) -> NodeKindSet {
        NodeKindSet(self.0 | other.0)
    }

    /// Set intersection. The `Auto` pruning heuristic intersects a fusion
    /// group's hoisted mask with a unit root's kinds-below summary to judge
    /// how much of the unit the group can actually touch.
    pub fn intersect(self, other: NodeKindSet) -> NodeKindSet {
        NodeKindSet(self.0 & other.0)
    }

    /// True if the sets share at least one kind. This is the subtree-pruning
    /// test: one AND against a node's cached kinds-below summary decides
    /// whether a whole subtree can interest a phase group.
    #[inline]
    pub fn intersects(self, other: NodeKindSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no kinds are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member kinds.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member kinds in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = NodeKind> {
        ALL_NODE_KINDS
            .into_iter()
            .filter(move |&k| self.contains(k))
    }
}

impl fmt::Debug for NodeKindSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The shape of one tree node.
#[derive(Clone, Debug)]
pub enum TreeKind {
    /// The empty tree (absent else-branch, empty guard, abstract body).
    Empty,
    /// A literal constant.
    Literal {
        /// The constant value.
        value: Constant,
    },
    /// A resolved reference.
    Ident {
        /// The referenced definition.
        sym: SymbolId,
    },
    /// An unresolved identifier produced by the parser.
    Unresolved {
        /// The source name.
        name: Name,
    },
    /// A member selection.
    Select {
        /// The qualifier expression.
        qual: TreeRef,
        /// The selected name.
        name: Name,
        /// The resolved member (NONE before the typer).
        sym: SymbolId,
    },
    /// An application `fun(args)`.
    Apply {
        /// The applied function.
        fun: TreeRef,
        /// Arguments.
        args: Kids,
    },
    /// A type application `fun[targs]`.
    TypeApply {
        /// The applied (polymorphic) function.
        fun: TreeRef,
        /// Type arguments.
        targs: Vec<Type>,
    },
    /// An object allocation; the node's type is the allocated class type.
    New {
        /// The allocated class type.
        tpe: Type,
    },
    /// An assignment.
    Assign {
        /// The assigned location (Ident or Select).
        lhs: TreeRef,
        /// The assigned value.
        rhs: TreeRef,
    },
    /// A block of statements ending in an expression.
    Block {
        /// Leading statements.
        stats: Kids,
        /// The result expression.
        expr: TreeRef,
    },
    /// A conditional expression.
    If {
        /// Condition.
        cond: TreeRef,
        /// Then branch.
        then_branch: TreeRef,
        /// Else branch (`Empty` when absent).
        else_branch: TreeRef,
    },
    /// A pattern match; eliminated by `PatternMatcher`.
    Match {
        /// The scrutinee.
        selector: TreeRef,
        /// `CaseDef` children.
        cases: Kids,
    },
    /// One case clause.
    CaseDef {
        /// The pattern.
        pat: TreeRef,
        /// The guard (`Empty` when absent).
        guard: TreeRef,
        /// The case body.
        body: TreeRef,
    },
    /// A pattern binder.
    Bind {
        /// The bound variable's symbol.
        sym: SymbolId,
        /// The inner pattern.
        pat: TreeRef,
    },
    /// A pattern alternative.
    Alternative {
        /// The alternatives.
        pats: Kids,
    },
    /// A type ascription, or a type pattern when under a `CaseDef`.
    Typed {
        /// The ascribed expression / inner pattern.
        expr: TreeRef,
        /// The ascribed type.
        tpe: Type,
    },
    /// A checked cast.
    Cast {
        /// The cast expression.
        expr: TreeRef,
        /// The target type.
        tpe: Type,
    },
    /// A runtime type test.
    IsInstance {
        /// The tested expression.
        expr: TreeRef,
        /// The tested-against type.
        tpe: Type,
    },
    /// A while loop.
    While {
        /// Condition.
        cond: TreeRef,
        /// Body.
        body: TreeRef,
    },
    /// Try/catch/finally; catch cases are `CaseDef`s.
    Try {
        /// The protected expression.
        block: TreeRef,
        /// Catch cases.
        cases: Kids,
        /// Finalizer (`Empty` when absent).
        finalizer: TreeRef,
    },
    /// A throw expression.
    Throw {
        /// The thrown value.
        expr: TreeRef,
    },
    /// A return; `from` is the enclosing method (supports non-local returns).
    Return {
        /// The returned value (`Empty` for unit returns).
        expr: TreeRef,
        /// The method returned from.
        from: SymbolId,
    },
    /// An anonymous function; params are `ValDef`s.
    Lambda {
        /// The parameters.
        params: Kids,
        /// The body.
        body: TreeRef,
    },
    /// A labeled block, target of `JumpTo` (loops after `TailRec`).
    Labeled {
        /// The label symbol.
        label: SymbolId,
        /// The body.
        body: TreeRef,
    },
    /// A jump to an enclosing `Labeled`, re-binding its parameters.
    JumpTo {
        /// The target label.
        label: SymbolId,
        /// New values for the label's parameters.
        args: Kids,
    },
    /// A sequence literal produced by `ElimRepeated`.
    SeqLiteral {
        /// Element expressions.
        elems: Kids,
        /// Element type.
        elem_tpe: Type,
    },
    /// A value definition.
    ValDef {
        /// The defined symbol.
        sym: SymbolId,
        /// The right-hand side (`Empty` for abstract/param).
        rhs: TreeRef,
    },
    /// A method definition.
    DefDef {
        /// The defined symbol.
        sym: SymbolId,
        /// Parameter lists of `ValDef`s.
        paramss: Vec<Vec<TreeRef>>,
        /// The body (`Empty` when abstract).
        rhs: TreeRef,
    },
    /// A class or trait definition.
    ClassDef {
        /// The class symbol (parents and members recorded in the symbol).
        sym: SymbolId,
        /// The template body.
        body: Kids,
    },
    /// Top-level statements of a compilation unit.
    PackageDef {
        /// The package symbol.
        pkg: SymbolId,
        /// Top-level definitions.
        stats: Kids,
    },
    /// A `this` reference.
    This {
        /// The referenced class.
        cls: SymbolId,
    },
    /// A `super` reference.
    Super {
        /// The class whose parent is referenced.
        cls: SymbolId,
    },
}

impl TreeKind {
    /// The node kind discriminant.
    pub fn node_kind(&self) -> NodeKind {
        match self {
            TreeKind::Empty => NodeKind::Empty,
            TreeKind::Literal { .. } => NodeKind::Literal,
            TreeKind::Ident { .. } => NodeKind::Ident,
            TreeKind::Unresolved { .. } => NodeKind::Unresolved,
            TreeKind::Select { .. } => NodeKind::Select,
            TreeKind::Apply { .. } => NodeKind::Apply,
            TreeKind::TypeApply { .. } => NodeKind::TypeApply,
            TreeKind::New { .. } => NodeKind::New,
            TreeKind::Assign { .. } => NodeKind::Assign,
            TreeKind::Block { .. } => NodeKind::Block,
            TreeKind::If { .. } => NodeKind::If,
            TreeKind::Match { .. } => NodeKind::Match,
            TreeKind::CaseDef { .. } => NodeKind::CaseDef,
            TreeKind::Bind { .. } => NodeKind::Bind,
            TreeKind::Alternative { .. } => NodeKind::Alternative,
            TreeKind::Typed { .. } => NodeKind::Typed,
            TreeKind::Cast { .. } => NodeKind::Cast,
            TreeKind::IsInstance { .. } => NodeKind::IsInstance,
            TreeKind::While { .. } => NodeKind::While,
            TreeKind::Try { .. } => NodeKind::Try,
            TreeKind::Throw { .. } => NodeKind::Throw,
            TreeKind::Return { .. } => NodeKind::Return,
            TreeKind::Lambda { .. } => NodeKind::Lambda,
            TreeKind::Labeled { .. } => NodeKind::Labeled,
            TreeKind::JumpTo { .. } => NodeKind::JumpTo,
            TreeKind::SeqLiteral { .. } => NodeKind::SeqLiteral,
            TreeKind::ValDef { .. } => NodeKind::ValDef,
            TreeKind::DefDef { .. } => NodeKind::DefDef,
            TreeKind::ClassDef { .. } => NodeKind::ClassDef,
            TreeKind::PackageDef { .. } => NodeKind::PackageDef,
            TreeKind::This { .. } => NodeKind::This,
            TreeKind::Super { .. } => NodeKind::Super,
        }
    }

    /// A deterministic estimate of the node's heap footprint in bytes,
    /// modelling a JVM-style object header plus fields; feeds the allocation
    /// figures (paper Figs 5–6) and the synthetic heap addresses.
    pub fn approx_bytes(&self) -> u32 {
        const HEADER: u32 = 48; // object header + id + span + type slot
        let payload = match self {
            TreeKind::Empty | TreeKind::This { .. } | TreeKind::Super { .. } => 8,
            TreeKind::Literal { .. } | TreeKind::Ident { .. } | TreeKind::Unresolved { .. } => 16,
            TreeKind::Select { .. } => 24,
            TreeKind::Apply { args, .. } => 8 + vec_bytes(args.len()),
            TreeKind::TypeApply { targs, .. } => 8 + vec_bytes(targs.len()),
            TreeKind::New { .. } => 16,
            TreeKind::Assign { .. } | TreeKind::While { .. } | TreeKind::Bind { .. } => 16,
            TreeKind::Block { stats, .. } => 8 + vec_bytes(stats.len()),
            TreeKind::If { .. } | TreeKind::CaseDef { .. } => 24,
            TreeKind::Match { cases, .. } => 8 + vec_bytes(cases.len()),
            TreeKind::Alternative { pats } => vec_bytes(pats.len()),
            TreeKind::Typed { .. } | TreeKind::Cast { .. } | TreeKind::IsInstance { .. } => 24,
            TreeKind::Try { cases, .. } => 16 + vec_bytes(cases.len()),
            TreeKind::Throw { .. } => 8,
            TreeKind::Return { .. } => 16,
            TreeKind::Lambda { params, .. } => 8 + vec_bytes(params.len()),
            TreeKind::Labeled { .. } => 16,
            TreeKind::JumpTo { args, .. } => 8 + vec_bytes(args.len()),
            TreeKind::SeqLiteral { elems, .. } => 16 + vec_bytes(elems.len()),
            TreeKind::ValDef { .. } => 16,
            TreeKind::DefDef { paramss, .. } => {
                16 + paramss.iter().map(|l| vec_bytes(l.len())).sum::<u32>()
            }
            TreeKind::ClassDef { body, .. } => 8 + vec_bytes(body.len()),
            TreeKind::PackageDef { stats, .. } => 8 + vec_bytes(stats.len()),
        };
        HEADER + payload
    }

    /// Rebuilds this kind with the children drawn from `ch`, **moving**
    /// each ref in, in the exact order [`Tree::for_each_child`] /
    /// [`Tree::child_at`] report them. Non-child payload (names, symbols,
    /// types) is cloned from `self`. This is the copier's assembly step: the
    /// iterative executor drains its result stack straight into the rebuilt
    /// node, with no per-child refcount round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `ch` yields fewer children than the node requires.
    pub fn with_children_owned(&self, ch: &mut impl Iterator<Item = TreeRef>) -> TreeKind {
        fn one(ch: &mut impl Iterator<Item = TreeRef>) -> TreeRef {
            ch.next().expect("child iterator exhausted")
        }
        match self {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Ident { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => self.clone(),
            TreeKind::Select { name, sym, .. } => TreeKind::Select {
                qual: one(ch),
                name: *name,
                sym: *sym,
            },
            TreeKind::Apply { .. } => TreeKind::Apply {
                fun: one(ch),
                args: ch.collect(),
            },
            TreeKind::TypeApply { targs, .. } => TreeKind::TypeApply {
                fun: one(ch),
                targs: targs.clone(),
            },
            TreeKind::Assign { .. } => TreeKind::Assign {
                lhs: one(ch),
                rhs: one(ch),
            },
            TreeKind::Block { stats, .. } => TreeKind::Block {
                stats: ch.by_ref().take(stats.len()).collect(),
                expr: one(ch),
            },
            TreeKind::If { .. } => TreeKind::If {
                cond: one(ch),
                then_branch: one(ch),
                else_branch: one(ch),
            },
            TreeKind::Match { .. } => TreeKind::Match {
                selector: one(ch),
                cases: ch.collect(),
            },
            TreeKind::CaseDef { .. } => TreeKind::CaseDef {
                pat: one(ch),
                guard: one(ch),
                body: one(ch),
            },
            TreeKind::Bind { sym, .. } => TreeKind::Bind {
                sym: *sym,
                pat: one(ch),
            },
            TreeKind::Alternative { .. } => TreeKind::Alternative { pats: ch.collect() },
            TreeKind::Typed { tpe, .. } => TreeKind::Typed {
                expr: one(ch),
                tpe: tpe.clone(),
            },
            TreeKind::Cast { tpe, .. } => TreeKind::Cast {
                expr: one(ch),
                tpe: tpe.clone(),
            },
            TreeKind::IsInstance { tpe, .. } => TreeKind::IsInstance {
                expr: one(ch),
                tpe: tpe.clone(),
            },
            TreeKind::While { .. } => TreeKind::While {
                cond: one(ch),
                body: one(ch),
            },
            TreeKind::Try { cases, .. } => TreeKind::Try {
                block: one(ch),
                cases: ch.by_ref().take(cases.len()).collect(),
                finalizer: one(ch),
            },
            TreeKind::Throw { .. } => TreeKind::Throw { expr: one(ch) },
            TreeKind::Return { from, .. } => TreeKind::Return {
                expr: one(ch),
                from: *from,
            },
            TreeKind::Lambda { params, .. } => TreeKind::Lambda {
                params: ch.by_ref().take(params.len()).collect(),
                body: one(ch),
            },
            TreeKind::Labeled { label, .. } => TreeKind::Labeled {
                label: *label,
                body: one(ch),
            },
            TreeKind::JumpTo { label, .. } => TreeKind::JumpTo {
                label: *label,
                args: ch.collect(),
            },
            TreeKind::SeqLiteral { elem_tpe, .. } => TreeKind::SeqLiteral {
                elems: ch.collect(),
                elem_tpe: elem_tpe.clone(),
            },
            TreeKind::ValDef { sym, .. } => TreeKind::ValDef {
                sym: *sym,
                rhs: one(ch),
            },
            TreeKind::DefDef { sym, paramss, .. } => TreeKind::DefDef {
                sym: *sym,
                paramss: paramss
                    .iter()
                    .map(|ps| ch.by_ref().take(ps.len()).collect())
                    .collect(),
                rhs: one(ch),
            },
            TreeKind::ClassDef { sym, .. } => TreeKind::ClassDef {
                sym: *sym,
                body: ch.collect(),
            },
            TreeKind::PackageDef { pkg, .. } => TreeKind::PackageDef {
                pkg: *pkg,
                stats: ch.collect(),
            },
        }
    }

    /// The `i`-th direct child in evaluation order, or `None` past the end.
    ///
    /// Positional access is what lets the executor walk trees with an
    /// external cursor (one frame per open node) instead of internal
    /// `for_each_child` iteration; the order agrees exactly with
    /// [`Tree::for_each_child`] and [`TreeKind::with_children_owned`].
    pub fn child_at(&self, i: usize) -> Option<&TreeRef> {
        fn only(i: usize, c: &TreeRef) -> Option<&TreeRef> {
            (i == 0).then_some(c)
        }
        match self {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Ident { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => None,
            TreeKind::Select { qual, .. } => only(i, qual),
            TreeKind::Apply { fun, args } => {
                if i == 0 {
                    Some(fun)
                } else {
                    args.get(i - 1)
                }
            }
            TreeKind::TypeApply { fun, .. } => only(i, fun),
            TreeKind::Assign { lhs, rhs } => match i {
                0 => Some(lhs),
                1 => Some(rhs),
                _ => None,
            },
            TreeKind::Block { stats, expr } => {
                stats.get(i).or_else(|| (i == stats.len()).then_some(expr))
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => match i {
                0 => Some(cond),
                1 => Some(then_branch),
                2 => Some(else_branch),
                _ => None,
            },
            TreeKind::Match { selector, cases } => {
                if i == 0 {
                    Some(selector)
                } else {
                    cases.get(i - 1)
                }
            }
            TreeKind::CaseDef { pat, guard, body } => match i {
                0 => Some(pat),
                1 => Some(guard),
                2 => Some(body),
                _ => None,
            },
            TreeKind::Bind { pat, .. } => only(i, pat),
            TreeKind::Alternative { pats } => pats.get(i),
            TreeKind::Typed { expr, .. }
            | TreeKind::Cast { expr, .. }
            | TreeKind::IsInstance { expr, .. }
            | TreeKind::Throw { expr }
            | TreeKind::Return { expr, .. } => only(i, expr),
            TreeKind::While { cond, body } => match i {
                0 => Some(cond),
                1 => Some(body),
                _ => None,
            },
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => {
                if i == 0 {
                    Some(block)
                } else {
                    cases
                        .get(i - 1)
                        .or_else(|| (i == 1 + cases.len()).then_some(finalizer))
                }
            }
            TreeKind::Lambda { params, body } => params
                .get(i)
                .or_else(|| (i == params.len()).then_some(body)),
            TreeKind::Labeled { body, .. } => only(i, body),
            TreeKind::JumpTo { args, .. } => args.get(i),
            TreeKind::SeqLiteral { elems, .. } => elems.get(i),
            TreeKind::ValDef { rhs, .. } => only(i, rhs),
            TreeKind::DefDef { paramss, rhs, .. } => {
                let mut at = i;
                for ps in paramss {
                    if at < ps.len() {
                        return Some(&ps[at]);
                    }
                    at -= ps.len();
                }
                (at == 0).then_some(rhs)
            }
            TreeKind::ClassDef { body, .. } => body.get(i),
            TreeKind::PackageDef { stats, .. } => stats.get(i),
        }
    }
}

fn vec_bytes(n: usize) -> u32 {
    24 + 8 * n as u32
}

/// Bit budget of the packed header's `summary` lane: exactly the 32 node
/// kinds (a compile-time guarantee — see the const assert below).
const HEADER_SUMMARY_BITS: u32 = 32;
/// Bit budget of the packed header's `size` lane.
const HEADER_SIZE_BITS: u32 = 24;
/// Bit budget of the packed header's `depth` lane.
const HEADER_DEPTH_BITS: u32 = 24;

const _: () = assert!(
    NODE_KIND_COUNT <= HEADER_SUMMARY_BITS as usize,
    "NodeKindSet outgrew the packed header's 32-bit summary lane"
);

/// Packs the derived node-header trio — kinds-below `summary` (32 bits),
/// saturating subtree `size` (24 bits) and subtree `depth` (24 bits) — into
/// one 128-bit word, lane layout `[.. spare | depth | size | summary]`.
///
/// The 24-bit lanes saturate at [`Tree::SIZE_SATURATED`] /
/// [`Tree::DEPTH_SATURATED`] rather than wrapping; callers must have
/// clamped already (debug-asserted here), which [`crate::Ctx::mk`] does via
/// saturating arithmetic.
pub(crate) fn pack_header(summary: NodeKindSet, size: u32, depth: u32) -> u128 {
    debug_assert!(
        summary.0 >> HEADER_SUMMARY_BITS == 0,
        "summary exceeds its 32-bit header lane"
    );
    debug_assert!(
        size <= Tree::SIZE_SATURATED,
        "size {size} exceeds its 24-bit header lane"
    );
    debug_assert!(
        depth <= Tree::DEPTH_SATURATED,
        "depth {depth} exceeds its 24-bit header lane"
    );
    u128::from(summary.0)
        | (u128::from(size) << HEADER_SUMMARY_BITS)
        | (u128::from(depth) << (HEADER_SUMMARY_BITS + HEADER_SIZE_BITS))
}

/// One immutable tree node.
///
/// Nodes are only created through [`crate::Ctx::mk`] (or the convenience
/// builders on `Ctx`), which assigns the id, the synthetic heap address and
/// reports the allocation to the instrumentation sinks.
pub struct Tree {
    pub(crate) id: NodeId,
    pub(crate) addr: u64,
    pub(crate) bytes: u32,
    /// The packed `summary`/`size`/`depth` trio (see [`pack_header`]):
    /// kinds at-or-below this node, saturating subtree node count, and
    /// subtree height, all computed once at construction (trees are
    /// immutable, so none of them ever change). One 128-bit word instead of
    /// three fields keeps the hot header compact with 48 spare bits for
    /// future per-node derived data.
    pub(crate) header: u128,
    pub(crate) span: Span,
    pub(crate) tpe: Type,
    pub(crate) kind: TreeKind,
}

impl Tree {
    /// Sentinel value of the packed header's 24-bit `size` lane: a subtree
    /// whose structural node count reached this bound has an *unknown* true
    /// size (pathological sharing can push the count past 2²⁴), so pruned
    /// executors must visit it instead of pricing it — pricing a saturated
    /// subtree would corrupt the exact
    /// `node_visits + nodes_pruned == unpruned node_visits` invariant.
    pub const SIZE_SATURATED: u32 = (1 << HEADER_SIZE_BITS) - 1;

    /// Saturation bound of the packed header's 24-bit `depth` lane. Depth
    /// consumers only compare against small constants (the destructor's
    /// 1 000-frame recursion bound, the eager walk's 512 gate), so a
    /// saturated depth still routes such trees to the iterative paths.
    pub const DEPTH_SATURATED: u32 = (1 << HEADER_DEPTH_BITS) - 1;

    /// The node's identity / allocation timestamp.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's synthetic heap address (bump allocated).
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The node's modelled footprint in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Height of this subtree (a leaf is 1), cached at construction in the
    /// packed header; saturates at [`Tree::DEPTH_SATURATED`].
    #[inline]
    pub fn depth(&self) -> u32 {
        ((self.header >> (HEADER_SUMMARY_BITS + HEADER_SIZE_BITS)) as u32) & Tree::DEPTH_SATURATED
    }

    /// Node count of this subtree (a leaf is 1), cached at construction in
    /// the packed header; saturating at [`Tree::SIZE_SATURATED`]. Shared
    /// children count once per occurrence, matching what a traversal would
    /// visit.
    #[inline]
    pub fn subtree_size(&self) -> u32 {
        ((self.header >> HEADER_SUMMARY_BITS) as u32) & Tree::SIZE_SATURATED
    }

    /// The kinds occurring at or below this node, cached at construction in
    /// the packed header. This is the pruning summary: if a phase group's
    /// combined prepare/transform mask does not [`NodeKindSet::intersects`]
    /// it, no hook of the group can fire anywhere in the subtree.
    #[inline]
    pub fn kinds_below(&self) -> NodeKindSet {
        NodeKindSet(u64::from(self.header as u32))
    }

    /// Source span.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The node's type.
    pub fn tpe(&self) -> &Type {
        &self.tpe
    }

    /// The node's shape.
    pub fn kind(&self) -> &TreeKind {
        &self.kind
    }

    /// The kind discriminant.
    pub fn node_kind(&self) -> NodeKind {
        self.kind.node_kind()
    }

    /// True if this is the empty tree.
    pub fn is_empty_tree(&self) -> bool {
        matches!(self.kind, TreeKind::Empty)
    }

    /// True for definition nodes (`ValDef`, `DefDef`, `ClassDef`).
    pub fn is_def(&self) -> bool {
        matches!(
            self.kind,
            TreeKind::ValDef { .. } | TreeKind::DefDef { .. } | TreeKind::ClassDef { .. }
        )
    }

    /// The defined symbol for definition nodes, binders and labels.
    pub fn def_sym(&self) -> SymbolId {
        match &self.kind {
            TreeKind::ValDef { sym, .. }
            | TreeKind::DefDef { sym, .. }
            | TreeKind::ClassDef { sym, .. }
            | TreeKind::Bind { sym, .. } => *sym,
            TreeKind::Labeled { label, .. } => *label,
            _ => SymbolId::NONE,
        }
    }

    /// The referenced symbol for reference nodes.
    pub fn ref_sym(&self) -> SymbolId {
        match &self.kind {
            TreeKind::Ident { sym } => *sym,
            TreeKind::Select { sym, .. } => *sym,
            TreeKind::This { cls } | TreeKind::Super { cls } => *cls,
            TreeKind::JumpTo { label, .. } => *label,
            TreeKind::Return { from, .. } => *from,
            _ => SymbolId::NONE,
        }
    }

    /// The `i`-th direct child in evaluation order (see
    /// [`TreeKind::child_at`]).
    pub fn child_at(&self, i: usize) -> Option<&TreeRef> {
        self.kind.child_at(i)
    }

    /// True if the node holds any child tree references (used by the
    /// iterative destructor to skip leaves without touching a worklist).
    pub fn has_child_refs(&self) -> bool {
        !matches!(
            self.kind,
            TreeKind::Empty
                | TreeKind::Literal { .. }
                | TreeKind::Ident { .. }
                | TreeKind::Unresolved { .. }
                | TreeKind::New { .. }
                | TreeKind::This { .. }
                | TreeKind::Super { .. }
        )
    }

    /// Invokes `f` on every direct child, in evaluation order. The refs
    /// passed to `f` borrow from `self`, so callers may retain them for the
    /// lifetime of the node (the iterative walkers rely on this).
    pub fn for_each_child<'t>(&'t self, f: &mut dyn FnMut(&'t TreeRef)) {
        match &self.kind {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Ident { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => {}
            TreeKind::Select { qual, .. } => f(qual),
            TreeKind::Apply { fun, args } => {
                f(fun);
                args.iter().for_each(&mut *f);
            }
            TreeKind::TypeApply { fun, .. } => f(fun),
            TreeKind::Assign { lhs, rhs } => {
                f(lhs);
                f(rhs);
            }
            TreeKind::Block { stats, expr } => {
                stats.iter().for_each(&mut *f);
                f(expr);
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            TreeKind::Match { selector, cases } => {
                f(selector);
                cases.iter().for_each(&mut *f);
            }
            TreeKind::CaseDef { pat, guard, body } => {
                f(pat);
                f(guard);
                f(body);
            }
            TreeKind::Bind { pat, .. } => f(pat),
            TreeKind::Alternative { pats } => pats.iter().for_each(&mut *f),
            TreeKind::Typed { expr, .. }
            | TreeKind::Cast { expr, .. }
            | TreeKind::IsInstance { expr, .. }
            | TreeKind::Throw { expr }
            | TreeKind::Return { expr, .. } => f(expr),
            TreeKind::While { cond, body } => {
                f(cond);
                f(body);
            }
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => {
                f(block);
                cases.iter().for_each(&mut *f);
                f(finalizer);
            }
            TreeKind::Lambda { params, body } => {
                params.iter().for_each(&mut *f);
                f(body);
            }
            TreeKind::Labeled { body, .. } => f(body),
            TreeKind::JumpTo { args, .. } => args.iter().for_each(&mut *f),
            TreeKind::SeqLiteral { elems, .. } => elems.iter().for_each(&mut *f),
            TreeKind::ValDef { rhs, .. } => f(rhs),
            TreeKind::DefDef { paramss, rhs, .. } => {
                for ps in paramss {
                    ps.iter().for_each(&mut *f);
                }
                f(rhs);
            }
            TreeKind::ClassDef { body, .. } => body.iter().for_each(&mut *f),
            TreeKind::PackageDef { stats, .. } => stats.iter().for_each(&mut *f),
        }
    }

    /// Collects the direct children.
    pub fn children(&self) -> Vec<TreeRef> {
        let mut out = Vec::new();
        self.for_each_child(&mut |c| out.push(Rc::clone(c)));
        out
    }

    /// Number of direct children.
    pub fn child_count(&self) -> usize {
        let mut n = 0;
        self.for_each_child(&mut |_| n += 1);
        n
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree#{}({:?}, tpe={}, {} children)",
            self.id.0,
            self.node_kind(),
            self.tpe,
            self.child_count()
        )
    }
}

/// Depth bound for the destructor's direct recursion; kinds below this
/// depth spill onto an explicit worklist instead of deepening the machine
/// stack.
const DROP_RECURSION_LIMIT: u32 = 1_000;

impl Drop for Tree {
    fn drop(&mut self) {
        trace::record_free(self.id, self.bytes);
        // Ordinary trees (the overwhelming majority) tear down through the
        // compiler-generated recursive field drops — zero bookkeeping.
        // Genuinely deep trees (the 100k-deep `Block` regression corpus)
        // would overflow the machine stack that way, so past the depth bound
        // the destructor switches to an explicit worklist: it steals the
        // kind of every uniquely-owned child, keeping each child's own
        // `drop` shallow.
        if self.depth() <= DROP_RECURSION_LIMIT {
            return;
        }
        let kind = std::mem::replace(&mut self.kind, TreeKind::Empty);
        let mut spill: Vec<TreeKind> = Vec::new();
        drop_kind(kind, 0, &mut spill);
        while let Some(k) = spill.pop() {
            drop_kind(k, 0, &mut spill);
        }
    }
}

/// Moves every child ref out of `kind`; uniquely-owned children with
/// children of their own surrender their kind before their ref drops
/// (keeping the eventual automatic drop shallow), recursing while `depth`
/// allows and spilling beyond.
fn drop_kind(kind: TreeKind, depth: u32, spill: &mut Vec<TreeKind>) {
    let mut sink = |mut c: TreeRef| {
        // Leaf children (the majority) drop directly - no uniqueness probe.
        if c.has_child_refs() {
            if let Some(t) = Rc::get_mut(&mut c) {
                let k = std::mem::replace(&mut t.kind, TreeKind::Empty);
                if depth < DROP_RECURSION_LIMIT {
                    drop_kind(k, depth + 1, spill);
                } else {
                    spill.push(k);
                }
            }
        }
        // `c` drops here: either the shallow unique node or a refcount
        // decrement on a shared subtree.
    };
    match kind {
        TreeKind::Empty
        | TreeKind::Literal { .. }
        | TreeKind::Ident { .. }
        | TreeKind::Unresolved { .. }
        | TreeKind::New { .. }
        | TreeKind::This { .. }
        | TreeKind::Super { .. } => {}
        TreeKind::Select { qual, .. } => sink(qual),
        TreeKind::Apply { fun, args } => {
            sink(fun);
            args.drain(&mut sink);
        }
        TreeKind::TypeApply { fun, .. } => sink(fun),
        TreeKind::Assign { lhs, rhs } => {
            sink(lhs);
            sink(rhs);
        }
        TreeKind::Block { stats, expr } => {
            stats.drain(&mut sink);
            sink(expr);
        }
        TreeKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            sink(cond);
            sink(then_branch);
            sink(else_branch);
        }
        TreeKind::Match { selector, cases } => {
            sink(selector);
            cases.drain(&mut sink);
        }
        TreeKind::CaseDef { pat, guard, body } => {
            sink(pat);
            sink(guard);
            sink(body);
        }
        TreeKind::Bind { pat, .. } => sink(pat),
        TreeKind::Alternative { pats } => pats.drain(&mut sink),
        TreeKind::Typed { expr, .. }
        | TreeKind::Cast { expr, .. }
        | TreeKind::IsInstance { expr, .. }
        | TreeKind::Throw { expr }
        | TreeKind::Return { expr, .. } => sink(expr),
        TreeKind::While { cond, body } => {
            sink(cond);
            sink(body);
        }
        TreeKind::Try {
            block,
            cases,
            finalizer,
        } => {
            sink(block);
            cases.drain(&mut sink);
            sink(finalizer);
        }
        TreeKind::Lambda { params, body } => {
            params.drain(&mut sink);
            sink(body);
        }
        TreeKind::Labeled { body, .. } => sink(body),
        TreeKind::JumpTo { args, .. } => args.drain(&mut sink),
        TreeKind::SeqLiteral { elems, .. } => elems.drain(&mut sink),
        TreeKind::ValDef { rhs, .. } => sink(rhs),
        TreeKind::DefDef { paramss, rhs, .. } => {
            for ps in paramss {
                for p in ps {
                    sink(p);
                }
            }
            sink(rhs);
        }
        TreeKind::ClassDef { body, .. } => body.drain(&mut sink),
        TreeKind::PackageDef { stats, .. } => stats.drain(&mut sink),
    }
}

/// Invokes `macro_name!` with the list of all node kinds, each as
/// `(Variant, transform_method, prepare_method)`.
///
/// This is how downstream crates (notably the `miniphase` framework)
/// generate one hook per node kind without repeating the kind list.
#[macro_export]
macro_rules! with_node_kinds {
    ($m:ident) => {
        $m! {
            (Empty, transform_empty, prepare_empty),
            (Literal, transform_literal, prepare_literal),
            (Ident, transform_ident, prepare_ident),
            (Unresolved, transform_unresolved, prepare_unresolved),
            (Select, transform_select, prepare_select),
            (Apply, transform_apply, prepare_apply),
            (TypeApply, transform_type_apply, prepare_type_apply),
            (New, transform_new, prepare_new),
            (Assign, transform_assign, prepare_assign),
            (Block, transform_block, prepare_block),
            (If, transform_if, prepare_if),
            (Match, transform_match, prepare_match),
            (CaseDef, transform_case_def, prepare_case_def),
            (Bind, transform_bind, prepare_bind),
            (Alternative, transform_alternative, prepare_alternative),
            (Typed, transform_typed, prepare_typed),
            (Cast, transform_cast, prepare_cast),
            (IsInstance, transform_is_instance, prepare_is_instance),
            (While, transform_while, prepare_while),
            (Try, transform_try, prepare_try),
            (Throw, transform_throw, prepare_throw),
            (Return, transform_return, prepare_return),
            (Lambda, transform_lambda, prepare_lambda),
            (Labeled, transform_labeled, prepare_labeled),
            (JumpTo, transform_jump_to, prepare_jump_to),
            (SeqLiteral, transform_seq_literal, prepare_seq_literal),
            (ValDef, transform_val_def, prepare_val_def),
            (DefDef, transform_def_def, prepare_def_def),
            (ClassDef, transform_class_def, prepare_class_def),
            (PackageDef, transform_package_def, prepare_package_def),
            (This, transform_this, prepare_this),
            (Super, transform_super, prepare_super),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn node_kind_set_operations() {
        let s = NodeKindSet::of(NodeKind::ValDef).with(NodeKind::Apply);
        assert!(s.contains(NodeKind::ValDef));
        assert!(s.contains(NodeKind::Apply));
        assert!(!s.contains(NodeKind::If));
        assert_eq!(s.len(), 2);
        assert_eq!(s.union(NodeKindSet::of(NodeKind::If)).len(), 3);
        assert_eq!(NodeKindSet::ALL.len(), NODE_KIND_COUNT);
        let collected: Vec<NodeKind> = s.iter().collect();
        assert_eq!(collected, vec![NodeKind::Apply, NodeKind::ValDef]);
    }

    #[test]
    fn kids_inline_storage_and_iteration() {
        let mut ctx = Ctx::new();
        let mut kids = Kids::new();
        assert!(kids.is_empty());
        for i in 0..4 {
            kids.push(ctx.lit_int(100 + i));
            assert_eq!(kids.len(), i as usize + 1);
            assert!(matches!(
                (&kids, i),
                (Kids::K1(_), 0) | (Kids::K2(_), 1) | (Kids::Spilled(_), _)
            ));
        }
        // Owned iteration preserves order without losing children.
        let vals: Vec<i64> = kids
            .into_iter()
            .filter_map(|t| match t.kind() {
                TreeKind::Literal { value } => value.as_int(),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![100, 101, 102, 103]);
        // Inline variants iterate without spilling to a Vec first.
        let two: Kids = [ctx.lit_int(1000), ctx.lit_int(2000)].into();
        assert!(matches!(two, Kids::K2(_)));
        let got: Vec<i64> = two
            .into_iter()
            .filter_map(|t| match t.kind() {
                TreeKind::Literal { value } => value.as_int(),
                _ => None,
            })
            .collect();
        assert_eq!(got, vec![1000, 2000]);
    }

    #[test]
    fn all_node_kinds_have_distinct_discriminants() {
        for (i, k) in ALL_NODE_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn children_follow_evaluation_order() {
        let mut ctx = Ctx::new();
        let a = ctx.lit_int(1);
        let b = ctx.lit_int(2);
        let c = ctx.lit_int(3);
        let ids = [a.id(), b.id(), c.id()];
        let ifn = ctx.mk(
            TreeKind::If {
                cond: a,
                then_branch: b,
                else_branch: c,
            },
            Type::Int,
            Span::SYNTHETIC,
        );
        let got: Vec<NodeId> = ifn.children().iter().map(|t| t.id()).collect();
        assert_eq!(got, ids);
        assert_eq!(ifn.child_count(), 3);
    }

    #[test]
    fn approx_bytes_scales_with_arity() {
        let small = TreeKind::Apply {
            fun: Ctx::new().lit_int(0),
            args: Kids::new(),
        };
        let mut ctx = Ctx::new();
        let big = TreeKind::Apply {
            fun: ctx.lit_int(0),
            args: (0..10).map(|i| ctx.lit_int(i)).collect(),
        };
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn packed_header_roundtrips_at_budget_edges() {
        // Every lane round-trips independently at its extremes.
        let cases = [
            (NodeKindSet::EMPTY, 1u32, 1u32),
            (
                NodeKindSet::ALL,
                Tree::SIZE_SATURATED,
                Tree::DEPTH_SATURATED,
            ),
            (
                NodeKindSet::of(NodeKind::Super),
                Tree::SIZE_SATURATED - 1,
                3,
            ),
            (
                NodeKindSet::of(NodeKind::Empty),
                7,
                Tree::DEPTH_SATURATED - 1,
            ),
        ];
        for (summary, size, depth) in cases {
            let header = pack_header(summary, size, depth);
            let t = Tree {
                id: NodeId(1),
                addr: 0,
                bytes: 0,
                header,
                span: Span::SYNTHETIC,
                tpe: Type::NoType,
                kind: TreeKind::Empty,
            };
            assert_eq!(t.kinds_below(), summary);
            assert_eq!(t.subtree_size(), size);
            assert_eq!(t.depth(), depth);
        }
    }

    #[test]
    fn header_size_lane_saturates_instead_of_wrapping() {
        // Two saturated children sum past the 24-bit lane; the parent must
        // pin at the sentinel (unknown), not wrap into a small bogus count.
        let mut ctx = Ctx::new();
        let mut wide = ctx.lit_int(0);
        // Doubling a shared child each level reaches 2^24 nodes in 24 steps
        // while allocating only 24 parents.
        for _ in 0..26 {
            let (a, b) = (wide.clone(), wide.clone());
            wide = ctx.mk(
                TreeKind::Block {
                    stats: vec![a].into(),
                    expr: b,
                },
                Type::Unit,
                Span::SYNTHETIC,
            );
        }
        assert_eq!(wide.subtree_size(), Tree::SIZE_SATURATED);
        // Depth stayed exact: 26 blocks over a leaf.
        assert_eq!(wide.depth(), 27);
    }

    #[test]
    fn node_kind_set_intersect() {
        let a = NodeKindSet::of(NodeKind::ValDef).with(NodeKind::Apply);
        let b = NodeKindSet::of(NodeKind::Apply).with(NodeKind::If);
        let i = a.intersect(b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(NodeKind::Apply));
        assert!(a.intersect(NodeKindSet::EMPTY).is_empty());
    }

    #[test]
    fn def_and_ref_sym_accessors() {
        let mut ctx = Ctx::new();
        let sym = {
            let b = ctx.symbols.builtins().root_pkg;
            ctx.symbols
                .new_term(b, Name::from("x"), crate::Flags::EMPTY, Type::Int)
        };
        let rhs = ctx.lit_int(1);
        let vd = ctx.mk(TreeKind::ValDef { sym, rhs }, Type::Unit, Span::SYNTHETIC);
        assert_eq!(vd.def_sym(), sym);
        assert!(vd.is_def());
        let id = ctx.ident(sym);
        assert_eq!(id.ref_sym(), sym);
        assert!(!id.is_def());
    }
}
