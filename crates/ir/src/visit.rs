//! Read-only tree traversal utilities.

use crate::tree::{Tree, TreeRef};

/// Applies `f` to every subtree of `t` (including `t` itself) in post-order —
/// the traversal order the Miniphase framework imposes (§4).
///
/// Iterative (explicit stack): safe on arbitrarily deep trees, matching the
/// executor's stack-overflow guarantee.
pub fn for_each_subtree<'a>(t: &'a TreeRef, f: &mut impl FnMut(&'a TreeRef)) {
    // (node, expanded): a node is emitted only after its children.
    let mut stack: Vec<(&'a TreeRef, bool)> = vec![(t, false)];
    while let Some((n, expanded)) = stack.pop() {
        if expanded {
            f(n);
        } else {
            stack.push((n, true));
            let first_child = stack.len();
            n.for_each_child(&mut |c| stack.push((c, false)));
            stack[first_child..].reverse();
        }
    }
}

/// True if any subtree (including `t`) satisfies `pred`. Iterative, with
/// early exit on the first hit.
pub fn exists_subtree<'a>(t: &'a TreeRef, pred: &mut impl FnMut(&Tree) -> bool) -> bool {
    let mut stack: Vec<&'a TreeRef> = vec![t];
    while let Some(n) = stack.pop() {
        if pred(n) {
            return true;
        }
        n.for_each_child(&mut |c| stack.push(c));
    }
    false
}

/// Number of nodes in the tree.
pub fn count_nodes(t: &TreeRef) -> usize {
    let mut n = 0;
    for_each_subtree(t, &mut |_| n += 1);
    n
}

/// Maximum depth of the tree (a leaf has depth 1).
///
/// O(1): every node caches its subtree height at construction (the
/// destructor's depth gate relies on the same field).
pub fn depth(t: &TreeRef) -> usize {
    t.depth() as usize
}

/// Collects clones of all subtrees satisfying `pred`, in post-order.
pub fn collect_subtrees(t: &TreeRef, pred: &mut impl FnMut(&Tree) -> bool) -> Vec<TreeRef> {
    let mut out = Vec::new();
    for_each_subtree(t, &mut |s| {
        if pred(s) {
            out.push(s.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::tree::{NodeKind, TreeKind};
    use crate::types::Type;
    use crate::Span;

    fn sample(ctx: &mut Ctx) -> TreeRef {
        let a = ctx.lit_int(1);
        let b = ctx.lit_int(2);
        let inner = ctx.block(vec![a], b);
        let c = ctx.lit_bool(true);
        let e = ctx.empty();
        ctx.mk(
            TreeKind::If {
                cond: c,
                then_branch: inner,
                else_branch: e,
            },
            Type::Int,
            Span::SYNTHETIC,
        )
    }

    #[test]
    fn traversal_is_post_order() {
        let mut ctx = Ctx::new();
        let t = sample(&mut ctx);
        let mut kinds = Vec::new();
        for_each_subtree(&t, &mut |s| kinds.push(s.node_kind()));
        // Root must come last in post-order.
        assert_eq!(*kinds.last().unwrap(), NodeKind::If);
        // Children of the block come before the block.
        let block_pos = kinds.iter().position(|k| *k == NodeKind::Block).unwrap();
        let first_lit = kinds.iter().position(|k| *k == NodeKind::Literal).unwrap();
        assert!(first_lit < block_pos);
    }

    #[test]
    fn count_and_depth() {
        let mut ctx = Ctx::new();
        let t = sample(&mut ctx);
        assert_eq!(count_nodes(&t), 6); // if, cond, block, 2 lits, empty
        assert_eq!(depth(&t), 3);
    }

    #[test]
    fn exists_and_collect() {
        let mut ctx = Ctx::new();
        let t = sample(&mut ctx);
        assert!(exists_subtree(&t, &mut |s| s.node_kind() == NodeKind::Block));
        assert!(!exists_subtree(&t, &mut |s| s.node_kind() == NodeKind::Match));
        let lits = collect_subtrees(&t, &mut |s| s.node_kind() == NodeKind::Literal);
        assert_eq!(lits.len(), 3); // two ints and the bool condition
    }
}
