//! Symbol flags.
//!
//! A compact bit set describing properties of a definition: whether it is a
//! method, mutable, lazy, a trait, and so on. The phases in the pipeline both
//! read these (e.g. `LazyVals` looks for `LAZY`) and write them (e.g.
//! `Getters` marks synthesized accessors).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A set of symbol property flags.
///
/// # Examples
///
/// ```
/// use mini_ir::Flags;
/// let f = Flags::METHOD | Flags::PRIVATE;
/// assert!(f.is(Flags::METHOD));
/// assert!(!f.is(Flags::LAZY));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(u32);

macro_rules! flag_consts {
    ($($(#[$doc:meta])* $name:ident = $bit:expr;)*) => {
        impl Flags {
            $( $(#[$doc])* pub const $name: Flags = Flags(1 << $bit); )*

            /// All flag names paired with their values, for debugging.
            pub const ALL_NAMED: &'static [(&'static str, Flags)] = &[
                $( (stringify!($name), Flags::$name), )*
            ];

            /// The raw bit pattern — stable input for the interface
            /// fingerprints ([`crate::fingerprint`]).
            pub const fn bits(self) -> u32 {
                self.0
            }
        }
    };
}

flag_consts! {
    /// A method definition (`def`).
    METHOD = 0;
    /// A mutable variable (`var`).
    MUTABLE = 1;
    /// A lazy value (`lazy val`).
    LAZY = 2;
    /// A trait.
    TRAIT = 3;
    /// A (term or type) parameter.
    PARAM = 4;
    /// Synthesized by the compiler rather than written by the user.
    SYNTHETIC = 5;
    /// `private` visibility.
    PRIVATE = 6;
    /// Definition overrides a member of a parent.
    OVERRIDE = 7;
    /// A singleton object definition.
    MODULE = 8;
    /// A synthesized accessor method for a field.
    ACCESSOR = 9;
    /// A backing field synthesized by `Memoize`.
    FIELD = 10;
    /// A label symbol introduced by `TailRec`/`PatternMatcher`.
    LABEL = 11;
    /// A by-name parameter (`=> T`).
    BY_NAME = 12;
    /// A repeated (vararg) parameter (`T*`).
    REPEATED = 13;
    /// A package.
    PACKAGE = 14;
    /// A type parameter.
    TYPE_PARAM = 15;
    /// A class or trait that is statically known never to be subclassed here.
    FINAL = 16;
    /// `abstract` member without a body.
    DEFERRED = 17;
    /// Captured by a nested closure and therefore heap-boxed by `CapturedVars`.
    CAPTURED = 18;
    /// A definition lifted to the enclosing class by `LambdaLift`.
    LIFTED = 19;
    /// Entry point (`def main`).
    ENTRY_POINT = 20;
    /// Symbol for a primary constructor.
    CONSTRUCTOR = 21;
    /// Marker that `ExpandPrivate` widened this symbol's access.
    NOT_PRIVATE_ANYMORE = 22;
    /// The self/this pseudo-parameter of a method.
    SELF = 23;
}

impl Flags {
    /// The empty flag set.
    pub const EMPTY: Flags = Flags(0);

    /// True if *all* flags in `other` are present in `self`.
    pub fn is(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if *any* flag in `other` is present in `self`.
    pub fn is_any(self, other: Flags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `self` with the flags of `other` removed.
    pub fn without(self, other: Flags) -> Flags {
        Flags(self.0 & !other.0)
    }

    /// Returns `self` with the flags of `other` added.
    pub fn with(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Flags {
    type Output = Flags;
    fn bitand(self, rhs: Flags) -> Flags {
        Flags(self.0 & rhs.0)
    }
}

impl Not for Flags {
    type Output = Flags;
    fn not(self) -> Flags {
        Flags(!self.0)
    }
}

impl fmt::Debug for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Flags()");
        }
        let mut first = true;
        write!(f, "Flags(")?;
        for (name, flag) in Flags::ALL_NAMED {
            if self.is(*flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_membership() {
        let f = Flags::METHOD | Flags::LAZY;
        assert!(f.is(Flags::METHOD));
        assert!(f.is(Flags::LAZY));
        assert!(f.is(Flags::METHOD | Flags::LAZY));
        assert!(!f.is(Flags::METHOD | Flags::TRAIT));
        assert!(f.is_any(Flags::METHOD | Flags::TRAIT));
    }

    #[test]
    fn without_removes_only_named_bits() {
        let f = (Flags::METHOD | Flags::PRIVATE).without(Flags::PRIVATE);
        assert!(f.is(Flags::METHOD));
        assert!(!f.is(Flags::PRIVATE));
    }

    #[test]
    fn debug_lists_set_flags() {
        let s = format!("{:?}", Flags::METHOD | Flags::LAZY);
        assert!(s.contains("METHOD"));
        assert!(s.contains("LAZY"));
        assert_eq!(format!("{:?}", Flags::EMPTY), "Flags()");
    }

    #[test]
    fn all_flags_are_distinct() {
        for (i, (_, a)) in Flags::ALL_NAMED.iter().enumerate() {
            for (_, b) in &Flags::ALL_NAMED[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
