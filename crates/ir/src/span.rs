//! Source spans.

use std::fmt;

/// A half-open byte range into a compilation unit's source text.
///
/// # Examples
///
/// ```
/// use mini_ir::Span;
/// let s = Span::new(3, 9);
/// assert_eq!(s.len(), 6);
/// assert!(s.contains(3));
/// assert!(!s.contains(9));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span. `start` must not exceed `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Span {
        assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// The zero-width span used for synthetic trees.
    pub const SYNTHETIC: Span = Span { start: 0, end: 0 };

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// True if this span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// True if `pos` falls inside the half-open range.
    pub fn contains(self, pos: u32) -> bool {
        self.start <= pos && pos < self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn union(self, other: Span) -> Span {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_disjoint_spans_covers_both() {
        let u = Span::new(1, 3).union(Span::new(10, 12));
        assert_eq!(u, Span::new(1, 12));
    }

    #[test]
    fn union_with_synthetic_is_identity() {
        let s = Span::new(4, 8);
        assert_eq!(s.union(Span::SYNTHETIC), s);
        assert_eq!(Span::SYNTHETIC.union(s), s);
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 2);
    }
}
