//! A source-like tree pretty-printer for debugging and golden tests.

use crate::symbol::SymbolTable;
use crate::tree::{TreeKind, TreeRef};
use crate::types::Type;

/// Renders `t` as indented pseudo-source.
///
/// The output is stable and intended for debugging and golden tests, not for
/// re-parsing. Symbols in both term and *type* position render as their
/// names (via [`print_type`]), never as raw ids: ids depend on allocation
/// order — and, under parallel compilation, on the worker id shard — while
/// names are reproducible, which is what lets the determinism property
/// tests compare printed output byte for byte across `jobs` values.
pub fn print_tree(t: &TreeRef, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    let mut p = Printer {
        symbols,
        out: &mut out,
        indent: 0,
    };
    p.tree(t);
    out
}

/// Renders a type with symbol references resolved to names through
/// `symbols` (the id-based [`std::fmt::Display`] on [`Type`] remains for
/// contexts without a table).
pub fn print_type(t: &Type, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    type_into(t, symbols, &mut out);
    out
}

fn sym_name(symbols: &SymbolTable, sym: crate::SymbolId, out: &mut String) {
    if sym.exists() {
        out.push_str(symbols.sym(sym).name.as_str());
    } else {
        out.push_str("<none>");
    }
}

fn types_into(ts: &[Type], symbols: &SymbolTable, sep: &str, out: &mut String) {
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        type_into(t, symbols, out);
    }
}

fn type_into(t: &Type, symbols: &SymbolTable, out: &mut String) {
    match t {
        Type::Class { sym, targs } => {
            sym_name(symbols, *sym, out);
            if !targs.is_empty() {
                out.push('[');
                types_into(targs, symbols, ", ", out);
                out.push(']');
            }
        }
        Type::TypeParam(s) => sym_name(symbols, *s, out),
        Type::TermRef(s) => {
            sym_name(symbols, *s, out);
            out.push_str(".type");
        }
        Type::Method { params, ret } => {
            for ps in params {
                out.push('(');
                types_into(ps, symbols, ", ", out);
                out.push(')');
            }
            type_into(ret, symbols, out);
        }
        Type::Poly {
            tparams,
            underlying,
        } => {
            out.push('[');
            for (i, tp) in tparams.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                sym_name(symbols, *tp, out);
            }
            out.push(']');
            type_into(underlying, symbols, out);
        }
        Type::ByName(t) => {
            out.push_str("=> ");
            type_into(t, symbols, out);
        }
        Type::Repeated(t) => {
            type_into(t, symbols, out);
            out.push('*');
        }
        Type::Array(t) => {
            out.push_str("Array[");
            type_into(t, symbols, out);
            out.push(']');
        }
        Type::Function { params, ret } => {
            out.push('(');
            types_into(params, symbols, ", ", out);
            out.push_str(") => ");
            type_into(ret, symbols, out);
        }
        Type::Or(a, b) => {
            type_into(a, symbols, out);
            out.push_str(" | ");
            type_into(b, symbols, out);
        }
        // Nullary structural types render exactly as their `Display`.
        other => out.push_str(&other.to_string()),
    }
}

struct Printer<'a> {
    symbols: &'a SymbolTable,
    out: &'a mut String,
    indent: usize,
}

impl Printer<'_> {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn name_of(&self, sym: crate::SymbolId) -> String {
        if sym.exists() {
            self.symbols.sym(sym).name.as_str().to_owned()
        } else {
            "<none>".to_owned()
        }
    }

    fn type_str(&self, t: &Type) -> String {
        print_type(t, self.symbols)
    }

    fn trees(&mut self, ts: &[TreeRef], sep: &str) {
        for (i, t) in ts.iter().enumerate() {
            if i > 0 {
                self.out.push_str(sep);
            }
            self.tree(t);
        }
    }

    fn tree(&mut self, t: &TreeRef) {
        match t.kind() {
            TreeKind::Empty => self.out.push_str("<empty>"),
            TreeKind::Literal { value } => self.out.push_str(&value.to_string()),
            TreeKind::Ident { sym } => self.out.push_str(&self.name_of(*sym)),
            TreeKind::Unresolved { name } => {
                self.out.push('?');
                self.out.push_str(name.as_str());
            }
            TreeKind::Select { qual, name, .. } => {
                self.tree(qual);
                self.out.push('.');
                self.out.push_str(name.as_str());
            }
            TreeKind::Apply { fun, args } => {
                self.tree(fun);
                self.out.push('(');
                self.trees(args, ", ");
                self.out.push(')');
            }
            TreeKind::TypeApply { fun, targs } => {
                self.tree(fun);
                self.out.push('[');
                for (i, ta) in targs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    let t = self.type_str(ta);
                    self.out.push_str(&t);
                }
                self.out.push(']');
            }
            TreeKind::New { tpe } => {
                self.out.push_str("new ");
                let t = self.type_str(tpe);
                self.out.push_str(&t);
            }
            TreeKind::Assign { lhs, rhs } => {
                self.tree(lhs);
                self.out.push_str(" = ");
                self.tree(rhs);
            }
            TreeKind::Block { stats, expr } => {
                self.out.push('{');
                self.indent += 1;
                for s in stats {
                    self.nl();
                    self.tree(s);
                }
                self.nl();
                self.tree(expr);
                self.indent -= 1;
                self.nl();
                self.out.push('}');
            }
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.out.push_str("if (");
                self.tree(cond);
                self.out.push_str(") ");
                self.tree(then_branch);
                if !else_branch.is_empty_tree() {
                    self.out.push_str(" else ");
                    self.tree(else_branch);
                }
            }
            TreeKind::Match { selector, cases } => {
                self.tree(selector);
                self.out.push_str(" match {");
                self.indent += 1;
                for c in cases {
                    self.nl();
                    self.tree(c);
                }
                self.indent -= 1;
                self.nl();
                self.out.push('}');
            }
            TreeKind::CaseDef { pat, guard, body } => {
                self.out.push_str("case ");
                self.tree(pat);
                if !guard.is_empty_tree() {
                    self.out.push_str(" if ");
                    self.tree(guard);
                }
                self.out.push_str(" => ");
                self.tree(body);
            }
            TreeKind::Bind { sym, pat } => {
                self.out.push_str(&self.name_of(*sym));
                self.out.push_str(" @ ");
                self.tree(pat);
            }
            TreeKind::Alternative { pats } => self.trees(pats, " | "),
            TreeKind::Typed { expr, tpe } => {
                self.out.push('(');
                self.tree(expr);
                self.out.push_str(": ");
                let t = self.type_str(tpe);
                self.out.push_str(&t);
                self.out.push(')');
            }
            TreeKind::Cast { expr, tpe } => {
                self.tree(expr);
                self.out.push_str(".asInstanceOf[");
                let t = self.type_str(tpe);
                self.out.push_str(&t);
                self.out.push(']');
            }
            TreeKind::IsInstance { expr, tpe } => {
                self.tree(expr);
                self.out.push_str(".isInstanceOf[");
                let t = self.type_str(tpe);
                self.out.push_str(&t);
                self.out.push(']');
            }
            TreeKind::While { cond, body } => {
                self.out.push_str("while (");
                self.tree(cond);
                self.out.push_str(") ");
                self.tree(body);
            }
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => {
                self.out.push_str("try ");
                self.tree(block);
                if !cases.is_empty() {
                    self.out.push_str(" catch {");
                    self.indent += 1;
                    for c in cases {
                        self.nl();
                        self.tree(c);
                    }
                    self.indent -= 1;
                    self.nl();
                    self.out.push('}');
                }
                if !finalizer.is_empty_tree() {
                    self.out.push_str(" finally ");
                    self.tree(finalizer);
                }
            }
            TreeKind::Throw { expr } => {
                self.out.push_str("throw ");
                self.tree(expr);
            }
            TreeKind::Return { expr, .. } => {
                self.out.push_str("return ");
                self.tree(expr);
            }
            TreeKind::Lambda { params, body } => {
                self.out.push('(');
                self.trees(params, ", ");
                self.out.push_str(") => ");
                self.tree(body);
            }
            TreeKind::Labeled { label, body } => {
                self.out.push_str(&self.name_of(*label));
                self.out.push_str(": ");
                self.tree(body);
            }
            TreeKind::JumpTo { label, args } => {
                self.out.push_str("jump ");
                self.out.push_str(&self.name_of(*label));
                self.out.push('(');
                self.trees(args, ", ");
                self.out.push(')');
            }
            TreeKind::SeqLiteral { elems, .. } => {
                self.out.push('[');
                self.trees(elems, ", ");
                self.out.push(']');
            }
            TreeKind::ValDef { sym, rhs } => {
                let flags = self.symbols.sym(*sym).flags;
                if flags.is(crate::Flags::MUTABLE) {
                    self.out.push_str("var ");
                } else if flags.is(crate::Flags::LAZY) {
                    self.out.push_str("lazy val ");
                } else {
                    self.out.push_str("val ");
                }
                self.out.push_str(&self.name_of(*sym));
                self.out.push_str(": ");
                let t = self.type_str(&self.symbols.sym(*sym).info);
                self.out.push_str(&t);
                if !rhs.is_empty_tree() {
                    self.out.push_str(" = ");
                    self.tree(rhs);
                }
            }
            TreeKind::DefDef { sym, paramss, rhs } => {
                self.out.push_str("def ");
                self.out.push_str(&self.name_of(*sym));
                for ps in paramss {
                    self.out.push('(');
                    self.trees(ps, ", ");
                    self.out.push(')');
                }
                self.out.push_str(": ");
                let t = self.type_str(self.symbols.sym(*sym).info.final_result());
                self.out.push_str(&t);
                if !rhs.is_empty_tree() {
                    self.out.push_str(" = ");
                    self.tree(rhs);
                }
            }
            TreeKind::ClassDef { sym, body } => {
                let flags = self.symbols.sym(*sym).flags;
                if flags.is(crate::Flags::TRAIT) {
                    self.out.push_str("trait ");
                } else {
                    self.out.push_str("class ");
                }
                self.out.push_str(&self.name_of(*sym));
                self.out.push_str(" {");
                self.indent += 1;
                for b in body {
                    self.nl();
                    self.tree(b);
                }
                self.indent -= 1;
                self.nl();
                self.out.push('}');
            }
            TreeKind::PackageDef { stats, .. } => {
                for (i, s) in stats.iter().enumerate() {
                    if i > 0 {
                        self.nl();
                    }
                    self.tree(s);
                }
            }
            TreeKind::This { .. } => self.out.push_str("this"),
            TreeKind::Super { .. } => self.out.push_str("super"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn prints_simple_expressions() {
        let mut ctx = Ctx::new();
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let blk = ctx.block(vec![one], two);
        let s = print_tree(&blk, &ctx.symbols);
        assert!(s.contains('1'));
        assert!(s.contains('2'));
        assert!(s.starts_with('{'));
    }

    #[test]
    fn prints_val_defs_with_symbols() {
        let mut ctx = Ctx::new();
        let root = ctx.symbols.builtins().root_pkg;
        let sym = ctx.symbols.new_term(
            root,
            crate::Name::from("answer"),
            crate::Flags::EMPTY,
            crate::Type::Int,
        );
        let rhs = ctx.lit_int(42);
        let vd = ctx.val_def(sym, rhs);
        let s = print_tree(&vd, &ctx.symbols);
        assert!(s.contains("val answer"));
        assert!(s.contains("42"));
    }
}
