//! Interned names.
//!
//! Every identifier in the compiler is interned into a global table and
//! referred to by a compact [`Name`] handle. Interned strings are leaked into
//! `'static` storage, which is the usual trade-off for a batch compiler: the
//! set of distinct identifiers is small and lives for the whole process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A handle to an interned identifier.
///
/// `Name`s are cheap to copy and compare; resolving one back to its string is
/// a lock-free read of a leaked `'static` slice.
///
/// # Examples
///
/// ```
/// use mini_ir::Name;
/// let a = Name::from("foo");
/// let b = Name::from("foo");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "foo");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
}

static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();

fn interner() -> &'static Mutex<Interner> {
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strs: Vec::new(),
        })
    })
}

impl Name {
    /// Interns `s` and returns its handle.
    pub fn intern(s: &str) -> Name {
        let mut i = interner().lock().expect("name interner poisoned");
        if let Some(&id) = i.map.get(s) {
            return Name(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = i.strs.len() as u32;
        i.strs.push(leaked);
        i.map.insert(leaked, id);
        Name(id)
    }

    /// Resolves the handle back to the interned string.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("name interner poisoned");
        i.strs[self.0 as usize]
    }

    /// Returns a fresh name of the form `{base}${n}` guaranteed not to have
    /// been interned via a previous `fresh` call with the same counter.
    pub fn fresh(base: &str, n: u32) -> Name {
        Name::intern(&format!("{base}${n}"))
    }

    /// The raw handle index, for use as a dense map key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::intern(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::intern(&s)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.as_str())
    }
}

/// Well-known names used throughout the pipeline.
pub mod std_names {
    use super::Name;

    macro_rules! known {
        ($($fn_name:ident => $text:expr;)*) => {
            $(
                #[doc = concat!("The interned name `", $text, "`.")]
                pub fn $fn_name() -> Name { Name::intern($text) }
            )*
        };
    }

    known! {
        init => "<init>";
        main => "main";
        apply => "apply";
        wildcard => "_";
        this_ => "this";
        outer => "$outer";
        eq_eq => "==";
        neq => "!=";
        get_class => "getClass";
        equals => "equals";
        to_string => "toString";
        println => "println";
        plus => "+";
        minus => "-";
        times => "*";
        div => "/";
        modulo => "%";
        lt => "<";
        gt => ">";
        le => "<=";
        ge => ">=";
        amp_amp => "&&";
        bar_bar => "||";
        bang => "!";
        any => "Any";
        any_ref => "AnyRef";
        nothing => "Nothing";
        null_ => "Null";
        unit => "Unit";
        int => "Int";
        boolean => "Boolean";
        string => "String";
        array => "Array";
        seq => "Seq";
        function0 => "Function0";
        function1 => "Function1";
        function2 => "Function2";
        object_ => "Object";
        root_pkg => "<root>";
        empty_pkg => "<empty>";
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Name::intern("alpha");
        let b = Name::intern("alpha");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_names() {
        assert_ne!(Name::intern("x1"), Name::intern("x2"));
    }

    #[test]
    fn resolve_round_trips() {
        let n = Name::intern("round_trip_me");
        assert_eq!(n.as_str(), "round_trip_me");
        assert_eq!(n.to_string(), "round_trip_me");
    }

    #[test]
    fn fresh_names_embed_counter() {
        let n = Name::fresh("liftedTry", 7);
        assert_eq!(n.as_str(), "liftedTry$7");
    }

    #[test]
    fn std_names_are_stable() {
        assert_eq!(std_names::init().as_str(), "<init>");
        assert_eq!(std_names::apply(), Name::intern("apply"));
    }
}
