//! Stable structural fingerprints.
//!
//! The incremental compile session ([`mini_driver`]'s `CompileSession`)
//! keys its per-unit caches on content hashes, so the hashes must be
//! **stable across runs and across allocation histories**: two structurally
//! identical trees must fingerprint equal even though their [`crate::NodeId`]s,
//! heap addresses and [`crate::SymbolId`] values differ (ids are allocator
//! artifacts — they depend on how many units compiled before this one and,
//! under parallel compilation, on the worker shard). Everything here
//! therefore hashes *names and rendered types*, never raw ids, and uses an
//! explicit FNV-1a implementation rather than `DefaultHasher` (whose
//! algorithm is unspecified).
//!
//! Three fingerprint families:
//!
//! * [`source_fingerprint`] — raw source text, the cheap first-level cache
//!   key;
//! * [`tree_fingerprint`] — a structural hash of a typed tree (kinds,
//!   constants, names, rendered types; ids and spans ignored), for
//!   cache-consistency diagnostics and tests;
//! * [`symbol_interface_hash`] / [`export_interface_hash`] — a symbol's
//!   *exported interface* (name, flags, kind, rendered type; for classes
//!   also type-parameter names, rendered parents and the member surface),
//!   the hash whose change — and only whose change — cascades invalidation
//!   to dependent units. A body-only edit re-types to the same interface
//!   hash, so dependents stay cached.

use crate::printer::print_type;
use crate::symbol::{SymKind, SymbolId, SymbolTable};
use crate::tree::{Tree, TreeKind};
use crate::types::Type;

/// An incremental FNV-1a 64-bit hasher with explicit, stable semantics.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a length-delimited string (so `("ab","c")` ≠ `("a","bc")`).
    pub fn str(&mut self, s: &str) -> &mut Fnv64 {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// Folds one byte.
    pub fn u8(&mut self, v: u8) -> &mut Fnv64 {
        self.bytes(&[v])
    }

    /// Folds a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Fnv64 {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Fnv64 {
        self.bytes(&v.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes raw source text (the first-level cache key of a compile session).
pub fn source_fingerprint(src: &str) -> u64 {
    let mut h = Fnv64::new();
    h.str(src);
    h.finish()
}

fn sym_name_str(symbols: &SymbolTable, sym: SymbolId) -> &str {
    if sym.exists() {
        symbols.sym(sym).name.as_str()
    } else {
        "<none>"
    }
}

fn kind_tag(kind: SymKind) -> u8 {
    match kind {
        SymKind::Term => 0,
        SymKind::Class => 1,
        SymKind::Package => 2,
        SymKind::TypeParam => 3,
        SymKind::Label => 4,
    }
}

/// A structural fingerprint of a typed tree: node kinds, constants, names,
/// referenced/defined symbol *names* and rendered types, combined in
/// traversal order. [`crate::NodeId`]s, heap addresses, raw [`SymbolId`]
/// values and source spans are deliberately **ignored** — they are
/// allocator/layout artifacts that differ between an incremental recompile
/// and a from-scratch compile of the same program.
///
/// Iterative (explicit work stack), so arbitrarily deep trees fingerprint
/// in constant machine-stack space like every other production walk.
pub fn tree_fingerprint(root: &Tree, symbols: &SymbolTable) -> u64 {
    let mut h = Fnv64::new();
    let mut stack: Vec<&Tree> = vec![root];
    while let Some(t) = stack.pop() {
        h.u8(t.node_kind() as u8);
        h.str(&print_type(t.tpe(), symbols));
        match t.kind() {
            TreeKind::Empty
            | TreeKind::Apply { .. }
            | TreeKind::Assign { .. }
            | TreeKind::Block { .. }
            | TreeKind::If { .. }
            | TreeKind::Match { .. }
            | TreeKind::CaseDef { .. }
            | TreeKind::Alternative { .. }
            | TreeKind::While { .. }
            | TreeKind::Try { .. }
            | TreeKind::Throw { .. }
            | TreeKind::Lambda { .. } => {}
            TreeKind::Literal { value } => {
                h.str(&value.to_string());
            }
            TreeKind::Ident { sym } => {
                h.str(sym_name_str(symbols, *sym));
            }
            TreeKind::Unresolved { name } => {
                h.str(name.as_str());
            }
            TreeKind::Select { name, sym, .. } => {
                h.str(name.as_str());
                h.str(sym_name_str(symbols, *sym));
            }
            TreeKind::TypeApply { targs, .. } => {
                for ta in targs {
                    h.str(&print_type(ta, symbols));
                }
            }
            TreeKind::New { tpe } => {
                h.str(&print_type(tpe, symbols));
            }
            TreeKind::Bind { sym, .. } => {
                h.str(sym_name_str(symbols, *sym));
            }
            TreeKind::Typed { tpe, .. }
            | TreeKind::Cast { tpe, .. }
            | TreeKind::IsInstance { tpe, .. } => {
                h.str(&print_type(tpe, symbols));
            }
            TreeKind::Return { from, .. } => {
                h.str(sym_name_str(symbols, *from));
            }
            TreeKind::Labeled { label, .. } | TreeKind::JumpTo { label, .. } => {
                h.str(sym_name_str(symbols, *label));
            }
            TreeKind::SeqLiteral { elem_tpe, .. } => {
                h.str(&print_type(elem_tpe, symbols));
            }
            TreeKind::ValDef { sym, .. }
            | TreeKind::DefDef { sym, .. }
            | TreeKind::ClassDef { sym, .. } => {
                h.str(sym_name_str(symbols, *sym));
                if sym.exists() {
                    h.u32(symbols.sym(*sym).flags.bits());
                }
            }
            TreeKind::PackageDef { pkg, .. } => {
                h.str(sym_name_str(symbols, *pkg));
            }
            TreeKind::This { cls } | TreeKind::Super { cls } => {
                h.str(sym_name_str(symbols, *cls));
            }
        }
        // Delimit the child list, then push children in reverse so they pop
        // in evaluation order.
        let n = t.child_count();
        h.u64(n as u64);
        for i in (0..n).rev() {
            stack.push(t.child_at(i).expect("child index below count"));
        }
    }
    h.finish()
}

fn hash_type_ids(h: &mut Fnv64, t: &Type) {
    match t {
        Type::Class { sym, targs } => {
            h.u8(1);
            h.u32(sym.index());
            h.u64(targs.len() as u64);
            for ta in targs {
                hash_type_ids(h, ta);
            }
        }
        Type::TypeParam(sym) => {
            h.u8(2);
            h.u32(sym.index());
        }
        Type::TermRef(sym) => {
            h.u8(3);
            h.u32(sym.index());
        }
        Type::Method { params, ret } => {
            h.u8(4);
            for list in params {
                h.u64(list.len() as u64);
                for p in list {
                    hash_type_ids(h, p);
                }
            }
            hash_type_ids(h, ret);
        }
        Type::Poly {
            tparams,
            underlying,
        } => {
            h.u8(5);
            h.u64(tparams.len() as u64);
            for tp in tparams {
                h.u32(tp.index());
            }
            hash_type_ids(h, underlying);
        }
        Type::ByName(t) => {
            h.u8(6);
            hash_type_ids(h, t);
        }
        Type::Repeated(t) => {
            h.u8(7);
            hash_type_ids(h, t);
        }
        Type::Array(t) => {
            h.u8(8);
            hash_type_ids(h, t);
        }
        Type::Function { params, ret } => {
            h.u8(9);
            h.u64(params.len() as u64);
            for p in params {
                hash_type_ids(h, p);
            }
            hash_type_ids(h, ret);
        }
        Type::Or(a, b) => {
            h.u8(20);
            hash_type_ids(h, a);
            hash_type_ids(h, b);
        }
        // Nullary variants: a distinct tag each (no wildcard — a new
        // variant must make a conscious choice here).
        Type::NoType => {
            h.u8(10);
        }
        Type::Error => {
            h.u8(11);
        }
        Type::Any => {
            h.u8(12);
        }
        Type::AnyRef => {
            h.u8(13);
        }
        Type::Nothing => {
            h.u8(14);
        }
        Type::Null => {
            h.u8(15);
        }
        Type::Unit => {
            h.u8(16);
        }
        Type::Int => {
            h.u8(17);
        }
        Type::Boolean => {
            h.u8(18);
        }
        Type::Str => {
            h.u8(19);
        }
    }
}

/// The **id-environment fingerprint** of a typed tree: every raw
/// [`SymbolId`] the tree references (node symbols and ids embedded in
/// types), each paired with its interned name, folded in traversal order.
///
/// This is deliberately the *opposite* sensitivity of
/// [`tree_fingerprint`]: where that hash erases allocator artifacts so
/// equivalent trees compare equal, this one **pins** them. A shared
/// cross-session artifact is not self-contained — its post-pipeline tree
/// and symbol delta resolve dependency and member symbols by raw id — so a
/// consumer may only adopt it if the producer typed the unit against the
/// *exact same id assignment*. Two sessions that cold-compile the same
/// corpus from the same state agree on every id and share; a session whose
/// edit history drifted the assignment fingerprints differently and safely
/// misses.
pub fn binding_fingerprint(root: &Tree, symbols: &SymbolTable) -> u64 {
    let mut h = Fnv64::new();
    let mut stack: Vec<&Tree> = vec![root];
    while let Some(t) = stack.pop() {
        h.u8(t.node_kind() as u8);
        hash_type_ids(&mut h, t.tpe());
        let sym = |h: &mut Fnv64, s: SymbolId| {
            h.u32(s.index());
            h.str(sym_name_str(symbols, s));
        };
        match t.kind() {
            TreeKind::Ident { sym: s }
            | TreeKind::Bind { sym: s, .. }
            | TreeKind::Return { from: s, .. }
            | TreeKind::Labeled { label: s, .. }
            | TreeKind::JumpTo { label: s, .. }
            | TreeKind::ValDef { sym: s, .. }
            | TreeKind::DefDef { sym: s, .. }
            | TreeKind::ClassDef { sym: s, .. }
            | TreeKind::PackageDef { pkg: s, .. }
            | TreeKind::This { cls: s }
            | TreeKind::Super { cls: s } => sym(&mut h, *s),
            TreeKind::Select { name, sym: s, .. } => {
                h.str(name.as_str());
                sym(&mut h, *s);
            }
            TreeKind::Literal { value } => {
                h.str(&value.to_string());
            }
            TreeKind::Unresolved { name } => {
                h.str(name.as_str());
            }
            TreeKind::TypeApply { targs, .. } => {
                for ta in targs {
                    hash_type_ids(&mut h, ta);
                }
            }
            TreeKind::New { tpe } => hash_type_ids(&mut h, tpe),
            TreeKind::Typed { tpe, .. }
            | TreeKind::Cast { tpe, .. }
            | TreeKind::IsInstance { tpe, .. }
            | TreeKind::SeqLiteral { elem_tpe: tpe, .. } => hash_type_ids(&mut h, tpe),
            _ => {}
        }
        let n = t.child_count();
        h.u64(n as u64);
        for i in (0..n).rev() {
            stack.push(t.child_at(i).expect("child index below count"));
        }
    }
    h.finish()
}

/// Folds one symbol's externally visible surface into `h`: name, kind,
/// flags, rendered type, type-parameter names and rendered parents. For
/// classes the member surface (each member's name/kind/flags/rendered type,
/// in name order so declaration reordering is interface-neutral) is folded
/// in too — a change to any member signature must cascade to units that
/// select members through this class.
fn hash_symbol_surface(h: &mut Fnv64, symbols: &SymbolTable, sym: SymbolId) {
    let d = symbols.sym(sym);
    h.str(d.name.as_str());
    h.u8(kind_tag(d.kind));
    h.u32(d.flags.bits());
    h.str(&print_type(&d.info, symbols));
    h.u64(d.tparams.len() as u64);
    for &tp in &d.tparams {
        h.str(sym_name_str(symbols, tp));
    }
    for p in &d.parents {
        h.str(&print_type(p, symbols));
    }
    if d.kind == SymKind::Class {
        let mut members: Vec<SymbolId> = d
            .decls
            .iter()
            .copied()
            .filter(|&m| symbols.sym(m).kind != SymKind::TypeParam)
            .collect();
        members.sort_by(|&a, &b| {
            symbols
                .sym(a)
                .name
                .as_str()
                .cmp(symbols.sym(b).name.as_str())
        });
        h.u64(members.len() as u64);
        for m in members {
            let md = symbols.sym(m);
            h.str(md.name.as_str());
            h.u8(kind_tag(md.kind));
            h.u32(md.flags.bits());
            h.str(&print_type(&md.info, symbols));
        }
    }
}

/// The exported-interface hash of one symbol (see [`export_interface_hash`]
/// for hashing a unit's whole top-level surface).
pub fn symbol_interface_hash(symbols: &SymbolTable, sym: SymbolId) -> u64 {
    let mut h = Fnv64::new();
    hash_symbol_surface(&mut h, symbols, sym);
    h.finish()
}

/// The exported-interface hash of a compilation unit: its top-level symbols'
/// surfaces combined in *name order*, so source-level reordering of
/// definitions does not change the unit's interface. This is the hash the
/// compile session compares to decide whether an edited unit's dependents
/// must recompile: body-only edits reproduce it bit for bit, signature
/// edits (changed types, flags, added/removed definitions or members)
/// change it.
pub fn export_interface_hash(symbols: &SymbolTable, top_syms: &[SymbolId]) -> u64 {
    let mut sorted: Vec<SymbolId> = top_syms.to_vec();
    sorted.sort_by(|&a, &b| {
        symbols
            .sym(a)
            .name
            .as_str()
            .cmp(symbols.sym(b).name.as_str())
    });
    sorted.dedup();
    let mut h = Fnv64::new();
    h.u64(sorted.len() as u64);
    for s in sorted {
        hash_symbol_surface(&mut h, symbols, s);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Flags, Name, Span, Type};

    #[test]
    fn source_fingerprint_is_content_addressed() {
        assert_eq!(source_fingerprint("def f(): Int = 1"), {
            source_fingerprint("def f(): Int = 1")
        });
        assert_ne!(
            source_fingerprint("def f(): Int = 1"),
            source_fingerprint("def f(): Int = 2")
        );
    }

    #[test]
    fn tree_fingerprint_ignores_allocation_history() {
        let build = |ctx: &mut Ctx| {
            let a = ctx.lit_int(1);
            let b = ctx.lit_int(2);
            ctx.block(vec![a], b)
        };
        let mut ctx1 = Ctx::new();
        let t1 = build(&mut ctx1);
        let mut ctx2 = Ctx::new();
        // Skew ctx2's id/address allocators before building.
        for i in 0..100 {
            let _ = ctx2.lit(crate::Constant::Int(1000 + i), Span::new(1, 1));
        }
        let t2 = build(&mut ctx2);
        assert_ne!(t1.id(), t2.id(), "allocation histories differ");
        assert_eq!(
            tree_fingerprint(&t1, &ctx1.symbols),
            tree_fingerprint(&t2, &ctx2.symbols)
        );
        let three = ctx1.lit_int(3);
        let four = ctx1.lit_int(4);
        let other = ctx1.block(vec![three], four);
        assert_ne!(
            tree_fingerprint(&t1, &ctx1.symbols),
            tree_fingerprint(&other, &ctx1.symbols)
        );
    }

    #[test]
    fn binding_fingerprint_pins_raw_symbol_ids() {
        // Same structure and names, skewed id assignment: tree_fingerprint
        // must agree, binding_fingerprint must not — it exists to detect
        // exactly this drift before a cross-session artifact is adopted.
        let build = |skew: usize| {
            let mut ctx = Ctx::new();
            let root = ctx.symbols.builtins().root_pkg;
            for i in 0..skew {
                ctx.symbols.new_term(
                    root,
                    Name::intern(&format!("pad{i}")),
                    Flags::EMPTY,
                    Type::Int,
                );
            }
            let f = ctx
                .symbols
                .new_term(root, Name::intern("f"), Flags::EMPTY, Type::Int);
            let id = ctx.ident(f);
            let lit = ctx.lit_int(7);
            let tree = ctx.block(vec![id], lit);
            (
                tree_fingerprint(&tree, &ctx.symbols),
                binding_fingerprint(&tree, &ctx.symbols),
            )
        };
        let (t0, b0) = build(0);
        let (t0b, b0b) = build(0);
        let (t5, b5) = build(5);
        assert_eq!(t0, t0b);
        assert_eq!(b0, b0b, "deterministic for identical histories");
        assert_eq!(t0, t5, "structural hash erases the id skew");
        assert_ne!(b0, b5, "binding hash pins the id skew");
    }

    #[test]
    fn interface_hash_tracks_signatures_not_ids() {
        let mk = |ret: Type, skew: usize| {
            let mut ctx = Ctx::new();
            let root = ctx.symbols.builtins().root_pkg;
            for i in 0..skew {
                ctx.symbols.new_term(
                    root,
                    Name::intern(&format!("pad{i}")),
                    Flags::EMPTY,
                    Type::Int,
                );
            }
            let f = ctx.symbols.new_term(
                root,
                Name::intern("f"),
                Flags::METHOD,
                Type::Method {
                    params: vec![vec![Type::Int]],
                    ret: Box::new(ret),
                },
            );
            symbol_interface_hash(&ctx.symbols, f)
        };
        // Same signature, different symbol ids ⇒ same hash.
        assert_eq!(mk(Type::Int, 0), mk(Type::Int, 7));
        // Different return type ⇒ different hash.
        assert_ne!(mk(Type::Int, 0), mk(Type::Str, 0));
    }

    #[test]
    fn export_hash_is_declaration_order_insensitive() {
        let mut ctx = Ctx::new();
        let root = ctx.symbols.builtins().root_pkg;
        let a = ctx
            .symbols
            .new_term(root, Name::intern("a"), Flags::METHOD, Type::Int);
        let b = ctx
            .symbols
            .new_term(root, Name::intern("b"), Flags::METHOD, Type::Str);
        assert_eq!(
            export_interface_hash(&ctx.symbols, &[a, b]),
            export_interface_hash(&ctx.symbols, &[b, a])
        );
        assert_ne!(
            export_interface_hash(&ctx.symbols, &[a, b]),
            export_interface_hash(&ctx.symbols, &[a])
        );
    }
}
