//! Literal constants carried by `Literal` tree nodes.

use crate::names::Name;
use std::fmt;

/// A compile-time constant value.
///
/// The paper notes that in Dotty "types also encode constants"; we keep the
/// simpler arrangement of scalac where constants live on literal trees, which
/// is all the transformation pipeline needs.
///
/// # Examples
///
/// ```
/// use mini_ir::Constant;
/// assert!(Constant::Bool(true).as_bool().unwrap());
/// assert_eq!(Constant::Int(41).as_int(), Some(41));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// The unit value `()`.
    Unit,
    /// A boolean literal.
    Bool(bool),
    /// An integer literal (MiniScala has a single 64-bit integer type `Int`).
    Int(i64),
    /// A string literal, interned.
    Str(Name),
    /// The `null` reference.
    Null,
}

impl Constant {
    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Constant::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Constant::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(self) -> Option<&'static str> {
        match self {
            Constant::Str(n) => Some(n.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Unit => write!(f, "()"),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{:?}", s.as_str()),
            Constant::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reject_wrong_variants() {
        assert_eq!(Constant::Unit.as_bool(), None);
        assert_eq!(Constant::Bool(true).as_int(), None);
        assert_eq!(Constant::Int(3).as_str(), None);
    }

    #[test]
    fn display_is_source_like() {
        assert_eq!(Constant::Int(-7).to_string(), "-7");
        assert_eq!(Constant::Str(Name::intern("hi")).to_string(), "\"hi\"");
        assert_eq!(Constant::Unit.to_string(), "()");
        assert_eq!(Constant::Null.to_string(), "null");
    }
}
