//! The compilation context.
//!
//! [`Ctx`] owns the symbol table, the node-id/heap-address allocators, the
//! diagnostics buffer and the optional memory-access sink used by the cache
//! simulator. All tree nodes are created through it, so it is also where the
//! copier (with the paper's same-fields reuse optimization) lives.

use crate::constant::Constant;
use crate::names::Name;
use crate::span::Span;
use crate::symbol::{SymbolId, SymbolTable};
use crate::trace;
use crate::tree::{Kids, NodeId, Tree, TreeKind, TreeRef};
use crate::types::Type;
use std::fmt;
use std::rc::Rc;

/// Consumer of the memory-access stream (reads/writes of tree nodes,
/// instruction fetches of phase code). Drives the cache simulator.
pub trait AccessSink {
    /// A data read of `bytes` bytes at `addr`.
    fn read(&mut self, addr: u64, bytes: u32);
    /// A data write of `bytes` bytes at `addr`.
    fn write(&mut self, addr: u64, bytes: u32);
    /// An instruction fetch of `bytes` bytes at `addr`.
    fn exec(&mut self, addr: u64, bytes: u32);
}

/// Tunables of the IR layer.
#[derive(Clone, Copy, Debug)]
pub struct IrOptions {
    /// Enables the copier's "same fields ⇒ reuse original node" optimization
    /// (§2 of the paper). The `legacy` pipeline mode disables it to imitate
    /// scalac-era tree plumbing (Fig 9).
    pub copier_reuse: bool,
    /// Interns synthetic common literals (unit, booleans, small ints and
    /// strings) so phase-created constants share one node instead of
    /// allocating per rewrite. Off in `legacy` mode, which imitates
    /// scalac-era plumbing.
    pub intern_literals: bool,
    /// Lower bound (inclusive) of the interned small-int range. Per-`Ctx`
    /// tunable; the default mirrors JVM `Integer.valueOf` caching shifted
    /// toward the non-negative constants phases actually synthesize.
    pub intern_int_min: i64,
    /// Upper bound (inclusive) of the interned small-int range. Setting
    /// `intern_int_max < intern_int_min` disables small-int interning
    /// without touching the other literal kinds.
    pub intern_int_max: i64,
    /// Resource budget: maximum tree depth [`Ctx::mk`] accepts before
    /// reporting a `"budget"` diagnostic (once per context — a latch, so a
    /// runaway construction costs one error, not one per node). `None`
    /// (the default) is unguarded. Limits at or above
    /// [`Tree::DEPTH_SATURATED`] cannot fire, because the packed header
    /// lane saturates there.
    pub max_tree_depth: Option<u32>,
    /// Resource budget: maximum subtree size (node count) [`Ctx::mk`]
    /// accepts, with the same latch/reporting rules as `max_tree_depth`
    /// and the same saturation caveat at [`Tree::SIZE_SATURATED`].
    pub max_tree_size: Option<u32>,
}

impl Default for IrOptions {
    fn default() -> IrOptions {
        IrOptions {
            copier_reuse: true,
            intern_literals: true,
            intern_int_min: -8,
            intern_int_max: 63,
            max_tree_depth: None,
            max_tree_size: None,
        }
    }
}

/// Cache of shared synthetic nodes (the empty tree and common literals).
///
/// String literals are keyed by their (already-interned) [`Name`], so the
/// map is bounded by the number of distinct string constants the program and
/// its phases ever synthesize. The int cache records the range it was built
/// for; retuning [`IrOptions::intern_int_min`]/[`IrOptions::intern_int_max`]
/// mid-flight simply drops the stale cache.
#[derive(Default)]
struct InternCache {
    empty: Option<TreeRef>,
    unit: Option<TreeRef>,
    bools: [Option<TreeRef>; 2],
    ints: Vec<Option<TreeRef>>,
    /// The `intern_int_min` the `ints` slots were allocated for.
    ints_min: i64,
    strs: std::collections::HashMap<Name, TreeRef>,
}

/// Always-on cheap allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of tree nodes allocated.
    pub nodes: u64,
    /// Modelled bytes allocated.
    pub bytes: u64,
}

/// A reported compile error.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Where in the source.
    pub span: Span,
    /// Human-readable message.
    pub msg: String,
    /// Which component reported it.
    pub phase: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] error at {}: {}", self.phase, self.span, self.msg)
    }
}

/// The compilation context threaded through the whole pipeline.
///
/// # Examples
///
/// ```
/// use mini_ir::{Ctx, Type};
/// let mut ctx = Ctx::new();
/// let one = ctx.lit_int(1);
/// assert_eq!(*one.tpe(), Type::Int);
/// assert_eq!(ctx.stats.nodes, 1);
/// ```
pub struct Ctx {
    /// The symbol table.
    pub symbols: SymbolTable,
    /// IR tunables.
    pub options: IrOptions,
    /// Optional memory-access sink (cache simulator).
    pub access: Option<Box<dyn AccessSink>>,
    /// Allocation counters.
    pub stats: AllocStats,
    /// Accumulated compile errors.
    pub errors: Vec<Diagnostic>,
    next_id: u64,
    heap_cursor: u64,
    fresh: u32,
    interned: InternCache,
    /// One-shot latch for the tree depth/size budgets: the first breach
    /// reports a `"budget"` diagnostic, later nodes build silently (the
    /// compile already carries the error; per-node repeats would flood).
    budget_breached: bool,
}

impl Ctx {
    /// Creates a context with a fresh symbol table.
    pub fn new() -> Ctx {
        Ctx {
            symbols: SymbolTable::new(),
            options: IrOptions::default(),
            access: None,
            stats: AllocStats::default(),
            errors: Vec::new(),
            next_id: 1,
            heap_cursor: 0x1000, // keep address 0 unused
            fresh: 0,
            interned: InternCache::default(),
            budget_breached: false,
        }
    }

    /// Builds a worker-private context for parallel compilation: a forked
    /// symbol table (see [`SymbolTable::fork_for_worker`]), the origin's IR
    /// tunables, and node-id/heap allocators started at caller-chosen
    /// watermarks so ids never collide across workers. The literal-intern
    /// cache starts empty (interned nodes are `Rc`-shared and must never
    /// cross threads) and no access sink is installed.
    pub fn worker(symbols: SymbolTable, options: IrOptions, next_id: u64, heap_cursor: u64) -> Ctx {
        Ctx {
            symbols,
            options,
            access: None,
            stats: AllocStats::default(),
            errors: Vec::new(),
            next_id,
            heap_cursor,
            fresh: 0,
            interned: InternCache::default(),
            budget_breached: false,
        }
    }

    /// The node-id and heap-address allocation watermarks, for carving
    /// disjoint per-worker allocation ranges.
    pub fn alloc_watermarks(&self) -> (u64, u64) {
        (self.next_id, self.heap_cursor)
    }

    /// Raises the allocators to at least the given watermarks (no-op for
    /// values already passed). Called after a parallel run so subsequent
    /// sequential allocations land above every worker's range.
    pub fn advance_watermarks(&mut self, next_id: u64, heap_cursor: u64) {
        self.next_id = self.next_id.max(next_id);
        self.heap_cursor = self.heap_cursor.max(heap_cursor);
    }

    /// Consumes a worker context into the symbol-table delta its origin
    /// needs for the merge ([`SymbolTable::adopt`]); everything else — the
    /// intern cache in particular — drops here, on the worker's own thread.
    ///
    /// # Panics
    ///
    /// Panics if the context was not built by [`Ctx::worker`] over a forked
    /// table.
    pub fn into_symbol_delta(self) -> crate::symbol::SymbolDelta {
        self.symbols.into_delta()
    }

    /// Swaps the fresh-name counter with `scope`. The executors scope the
    /// counter **per compilation unit** (swap in before a unit's traversal,
    /// swap out after): a unit's fresh names then depend only on its own
    /// rewrite history, never on how many names *other* units consumed —
    /// the invariant that makes parallel compilation byte-identical to the
    /// sequential pipeline. Fresh names from different units may repeat;
    /// symbols stay distinct (lookup is by [`SymbolId`], names are labels).
    pub fn swap_fresh_scope(&mut self, scope: &mut u32) {
        std::mem::swap(&mut self.fresh, scope);
    }

    /// Deep-copies a tree that lives in *another* context's arena into this
    /// one, allocating every node afresh through [`Ctx::mk`] (new ids,
    /// addresses and alloc accounting here) while preserving within-tree
    /// node sharing via a pointer memo. This is the hand-off primitive of
    /// parallel compilation: the original tree's `Rc` handles are only ever
    /// *read* (never cloned or dropped), so the copy is safe to build on a
    /// different thread from the one that owns the original, and the result
    /// is wholly owned by this context's thread.
    pub fn import_tree(&mut self, root: &Tree) -> TreeRef {
        struct ImportFrame<'t> {
            node: &'t Tree,
            next_child: usize,
            results_base: usize,
        }
        let mut memo: std::collections::HashMap<*const Tree, TreeRef> =
            std::collections::HashMap::new();
        let mut frames = vec![ImportFrame {
            node: root,
            next_child: 0,
            results_base: 0,
        }];
        let mut results: Vec<TreeRef> = Vec::new();
        while !frames.is_empty() {
            let (node, i) = {
                let top = frames.last_mut().expect("loop condition");
                let r = (top.node, top.next_child);
                top.next_child += 1;
                r
            };
            if let Some(c) = node.child_at(i) {
                let key = Rc::as_ptr(c);
                if let Some(hit) = memo.get(&key) {
                    results.push(Rc::clone(hit));
                } else {
                    frames.push(ImportFrame {
                        node: c,
                        next_child: 0,
                        results_base: results.len(),
                    });
                }
                continue;
            }
            let ImportFrame {
                node, results_base, ..
            } = frames.pop().expect("loop condition");
            let kind = node
                .kind()
                .with_children_owned(&mut results.drain(results_base..));
            let imported = self.mk(kind, node.tpe().clone(), node.span());
            memo.insert(node as *const Tree, Rc::clone(&imported));
            results.push(imported);
        }
        results.pop().expect("import produces exactly one root")
    }

    /// Creates a tree node: assigns id and heap address, reports the
    /// allocation to the instrumentation sinks.
    pub fn mk(&mut self, kind: TreeKind, tpe: Type, span: Span) -> TreeRef {
        let bytes = kind.approx_bytes();
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let addr = self.heap_cursor;
        self.heap_cursor += u64::from((bytes + 7) & !7);
        self.stats.nodes += 1;
        self.stats.bytes += u64::from(bytes);
        trace::record_alloc(id, bytes);
        if let Some(sink) = self.access.as_mut() {
            sink.write(addr, bytes);
        }
        let mut depth = 0u32;
        let mut size = 0u32;
        let mut summary = crate::tree::NodeKindSet::of(kind.node_kind());
        let mut i = 0usize;
        while let Some(c) = kind.child_at(i) {
            depth = depth.max(c.depth());
            size = size.saturating_add(c.subtree_size());
            summary = summary.union(c.kinds_below());
            i += 1;
        }
        // Both 24-bit header lanes saturate at their sentinel rather than
        // wrap: a saturated size means "unknown, never prune", a saturated
        // depth still exceeds every small depth gate.
        let depth = depth.saturating_add(1).min(Tree::DEPTH_SATURATED);
        let size = size.saturating_add(1).min(Tree::SIZE_SATURATED);
        if self.options.max_tree_depth.is_some() || self.options.max_tree_size.is_some() {
            self.check_tree_budgets(depth, size, span);
        }
        Rc::new(Tree {
            id,
            addr,
            bytes,
            header: crate::tree::pack_header(summary, size, depth),
            span,
            tpe,
            kind,
        })
    }

    /// Cold path of the [`Ctx::mk`] budget gate: reports the first
    /// depth/size breach as a `"budget"` diagnostic and latches. The node
    /// is still built — budgets degrade the compile into a structured
    /// error at the driver boundary, they never tear the pipeline mid-walk.
    #[cold]
    fn check_tree_budgets(&mut self, depth: u32, size: u32, span: Span) {
        if self.budget_breached {
            return;
        }
        if let Some(limit) = self.options.max_tree_depth {
            if depth > limit {
                self.budget_breached = true;
                self.error(
                    span,
                    "budget",
                    format!("tree depth budget exceeded: depth {depth} > limit {limit}"),
                );
                return;
            }
        }
        if let Some(limit) = self.options.max_tree_size {
            if size > limit {
                self.budget_breached = true;
                self.error(
                    span,
                    "budget",
                    format!("tree size budget exceeded: {size} nodes > limit {limit}"),
                );
            }
        }
    }

    /// Records a data read of node `t` into the access sink, if installed.
    #[inline]
    pub fn trace_read(&mut self, t: &Tree) {
        if let Some(sink) = self.access.as_mut() {
            sink.read(t.addr(), t.bytes());
        }
    }

    /// Records an instruction fetch into the access sink, if installed.
    #[inline]
    pub fn trace_exec(&mut self, addr: u64, bytes: u32) {
        if let Some(sink) = self.access.as_mut() {
            sink.exec(addr, bytes);
        }
    }

    /// Records a raw data read (used for symbol-table accesses, which live
    /// in their own synthetic region).
    #[inline]
    pub fn trace_read_at(&mut self, addr: u64, bytes: u32) {
        if let Some(sink) = self.access.as_mut() {
            sink.read(addr, bytes);
        }
    }

    /// The synthetic address of a symbol's table entry. Symbols are "the
    /// major internal data structures" next to trees (§2 of the paper);
    /// traversals read them alongside the nodes that reference them.
    pub fn symbol_addr(sym: SymbolId) -> u64 {
        (1 << 39) + u64::from(sym.index()) * 112
    }

    /// Reports a compile error.
    pub fn error(&mut self, span: Span, phase: &'static str, msg: impl Into<String>) {
        self.errors.push(Diagnostic {
            span,
            msg: msg.into(),
            phase,
        });
    }

    /// True if any error has been reported.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Returns a fresh synthetic name `{base}$N`.
    pub fn fresh_name(&mut self, base: &str) -> Name {
        self.fresh += 1;
        Name::fresh(base, self.fresh)
    }

    // ---- convenience builders -------------------------------------------

    /// The shared empty tree.
    pub fn empty(&mut self) -> TreeRef {
        if let Some(e) = &self.interned.empty {
            return Rc::clone(e);
        }
        let e = self.mk(TreeKind::Empty, Type::NoType, Span::SYNTHETIC);
        self.interned.empty = Some(Rc::clone(&e));
        e
    }

    /// A literal node. Synthetic common constants (unit, booleans, small
    /// ints) are interned: phases rewriting literals on the hot path share
    /// one node per value instead of allocating per rewrite. Literals with a
    /// real source span are never interned (their spans must stay distinct).
    pub fn lit(&mut self, c: Constant, span: Span) -> TreeRef {
        if self.options.intern_literals && span == Span::SYNTHETIC {
            if let Some(hit) = self.interned_lit(&c) {
                return hit;
            }
        }
        let tpe = Self::lit_type(&c);
        let made = self.mk(TreeKind::Literal { value: c }, tpe, span);
        if self.options.intern_literals && span == Span::SYNTHETIC {
            self.intern_lit(&made);
        }
        made
    }

    fn lit_type(c: &Constant) -> Type {
        match c {
            Constant::Unit => Type::Unit,
            Constant::Bool(_) => Type::Boolean,
            Constant::Int(_) => Type::Int,
            Constant::Str(_) => Type::Str,
            Constant::Null => Type::Null,
        }
    }

    /// Hard cap on int-intern slots: a pathological tunable range (say the
    /// whole `i64` domain) interns only its first `MAX_INT_SLOTS` values
    /// instead of allocating an unbounded cache.
    const MAX_INT_SLOTS: usize = 1 << 16;

    /// Number of slots the tuned small-int range needs (0 when the range is
    /// empty, i.e. small-int interning is disabled), capped at
    /// [`Self::MAX_INT_SLOTS`].
    fn intern_int_slots(&self) -> usize {
        let span = self.options.intern_int_max as i128 - self.options.intern_int_min as i128 + 1;
        span.clamp(0, Self::MAX_INT_SLOTS as i128) as usize
    }

    /// Slot index of `i` in the tuned range, or `None` when `i` is outside
    /// the range (or past the slot cap). Overflow-safe for any tunables.
    fn intern_int_slot_of(&self, i: i64) -> Option<usize> {
        let (min, max) = (self.options.intern_int_min, self.options.intern_int_max);
        if !(min..=max).contains(&i) {
            return None;
        }
        let off = i as i128 - min as i128;
        (off < self.intern_int_slots() as i128).then_some(off as usize)
    }

    fn interned_lit(&self, c: &Constant) -> Option<TreeRef> {
        let slot = match c {
            Constant::Unit => &self.interned.unit,
            Constant::Bool(b) => &self.interned.bools[usize::from(*b)],
            Constant::Int(i) => {
                // A retuned range invalidates the cache (slots are indexed
                // relative to the min it was built for).
                if self.interned.ints_min != self.options.intern_int_min {
                    return None;
                }
                self.interned.ints.get(self.intern_int_slot_of(*i)?)?
            }
            Constant::Str(n) => return self.interned.strs.get(n).map(Rc::clone),
            _ => return None,
        };
        slot.as_ref().map(Rc::clone)
    }

    fn intern_lit(&mut self, t: &TreeRef) {
        let TreeKind::Literal { value } = t.kind() else {
            return;
        };
        match value {
            Constant::Unit => self.interned.unit = Some(Rc::clone(t)),
            Constant::Bool(b) => self.interned.bools[usize::from(*b)] = Some(Rc::clone(t)),
            Constant::Int(i) => {
                let Some(slot) = self.intern_int_slot_of(*i) else {
                    return;
                };
                let slots = self.intern_int_slots();
                let min = self.options.intern_int_min;
                if self.interned.ints.len() != slots || self.interned.ints_min != min {
                    self.interned.ints = vec![None; slots];
                    self.interned.ints_min = min;
                }
                self.interned.ints[slot] = Some(Rc::clone(t));
            }
            Constant::Str(n) => {
                self.interned.strs.insert(*n, Rc::clone(t));
            }
            _ => {}
        }
    }

    /// An integer literal.
    pub fn lit_int(&mut self, v: i64) -> TreeRef {
        self.lit(Constant::Int(v), Span::SYNTHETIC)
    }

    /// A boolean literal.
    pub fn lit_bool(&mut self, v: bool) -> TreeRef {
        self.lit(Constant::Bool(v), Span::SYNTHETIC)
    }

    /// The unit literal.
    pub fn lit_unit(&mut self) -> TreeRef {
        self.lit(Constant::Unit, Span::SYNTHETIC)
    }

    /// A synthetic string literal (interned per distinct [`Name`]).
    pub fn lit_str(&mut self, s: &str) -> TreeRef {
        self.lit(Constant::Str(Name::intern(s)), Span::SYNTHETIC)
    }

    /// A reference to `sym`, typed with the symbol's info.
    pub fn ident(&mut self, sym: SymbolId) -> TreeRef {
        let tpe = self.symbols.sym(sym).info.clone();
        self.mk(TreeKind::Ident { sym }, tpe, Span::SYNTHETIC)
    }

    /// A `ValDef` node (its type is `Unit` as a statement).
    pub fn val_def(&mut self, sym: SymbolId, rhs: TreeRef) -> TreeRef {
        self.mk(TreeKind::ValDef { sym, rhs }, Type::Unit, Span::SYNTHETIC)
    }

    /// A block; its type is the type of the final expression.
    pub fn block(&mut self, stats: impl Into<Kids>, expr: TreeRef) -> TreeRef {
        let stats = stats.into();
        if stats.is_empty() {
            return expr;
        }
        let tpe = expr.tpe().clone();
        self.mk(TreeKind::Block { stats, expr }, tpe, Span::SYNTHETIC)
    }

    /// An application node with the given result type.
    pub fn apply(&mut self, fun: TreeRef, args: impl Into<Kids>, tpe: Type) -> TreeRef {
        self.mk(
            TreeKind::Apply {
                fun,
                args: args.into(),
            },
            tpe,
            Span::SYNTHETIC,
        )
    }

    /// A selection node.
    pub fn select(&mut self, qual: TreeRef, name: Name, sym: SymbolId, tpe: Type) -> TreeRef {
        self.mk(TreeKind::Select { qual, name, sym }, tpe, Span::SYNTHETIC)
    }

    /// A `this` reference typed as the class's self type.
    pub fn this_ref(&mut self, cls: SymbolId) -> TreeRef {
        let tpe = self.symbols.self_type(cls);
        self.mk(TreeKind::This { cls }, tpe, Span::SYNTHETIC)
    }

    /// A `this` reference typed with the *monomorphic* class type — for
    /// phases that run after erasure, where self types must carry no type
    /// arguments.
    pub fn this_mono(&mut self, cls: SymbolId) -> TreeRef {
        let tpe = self.symbols.class_type(cls);
        self.mk(TreeKind::This { cls }, tpe, Span::SYNTHETIC)
    }

    // ---- copiers ---------------------------------------------------------

    /// Copies `t` with a new type (fresh node, same kind and span).
    pub fn retyped(&mut self, t: &TreeRef, tpe: Type) -> TreeRef {
        if *t.tpe() == tpe && self.options.copier_reuse {
            return Rc::clone(t);
        }
        self.mk(t.kind().clone(), tpe, t.span())
    }

    /// Copies `t` with a new kind, keeping the type and span.
    pub fn with_kind(&mut self, t: &TreeRef, kind: TreeKind) -> TreeRef {
        self.mk(kind, t.tpe().clone(), t.span())
    }

    /// The copier: rebuilds `t` with every direct child passed through `f`.
    ///
    /// Implements the reuse optimization from §2 of the paper: when every
    /// mapped child is pointer-identical to the original (and
    /// [`IrOptions::copier_reuse`] is on), the original node is returned and
    /// no allocation happens.
    pub fn map_children(
        &mut self,
        t: &TreeRef,
        f: &mut dyn FnMut(&mut Ctx, &TreeRef) -> TreeRef,
    ) -> TreeRef {
        let mut changed = false;
        let mut map1 = |ctx: &mut Ctx, changed: &mut bool, c: &TreeRef| -> TreeRef {
            let n = f(ctx, c);
            if !Rc::ptr_eq(&n, c) {
                *changed = true;
            }
            n
        };
        let new_kind = match t.kind() {
            TreeKind::Empty
            | TreeKind::Literal { .. }
            | TreeKind::Ident { .. }
            | TreeKind::Unresolved { .. }
            | TreeKind::New { .. }
            | TreeKind::This { .. }
            | TreeKind::Super { .. } => t.kind().clone(),
            TreeKind::Select { qual, name, sym } => TreeKind::Select {
                qual: map1(self, &mut changed, qual),
                name: *name,
                sym: *sym,
            },
            TreeKind::Apply { fun, args } => TreeKind::Apply {
                fun: map1(self, &mut changed, fun),
                args: args.iter().map(|a| map1(self, &mut changed, a)).collect(),
            },
            TreeKind::TypeApply { fun, targs } => TreeKind::TypeApply {
                fun: map1(self, &mut changed, fun),
                targs: targs.clone(),
            },
            TreeKind::Assign { lhs, rhs } => TreeKind::Assign {
                lhs: map1(self, &mut changed, lhs),
                rhs: map1(self, &mut changed, rhs),
            },
            TreeKind::Block { stats, expr } => TreeKind::Block {
                stats: stats.iter().map(|s| map1(self, &mut changed, s)).collect(),
                expr: map1(self, &mut changed, expr),
            },
            TreeKind::If {
                cond,
                then_branch,
                else_branch,
            } => TreeKind::If {
                cond: map1(self, &mut changed, cond),
                then_branch: map1(self, &mut changed, then_branch),
                else_branch: map1(self, &mut changed, else_branch),
            },
            TreeKind::Match { selector, cases } => TreeKind::Match {
                selector: map1(self, &mut changed, selector),
                cases: cases.iter().map(|c| map1(self, &mut changed, c)).collect(),
            },
            TreeKind::CaseDef { pat, guard, body } => TreeKind::CaseDef {
                pat: map1(self, &mut changed, pat),
                guard: map1(self, &mut changed, guard),
                body: map1(self, &mut changed, body),
            },
            TreeKind::Bind { sym, pat } => TreeKind::Bind {
                sym: *sym,
                pat: map1(self, &mut changed, pat),
            },
            TreeKind::Alternative { pats } => TreeKind::Alternative {
                pats: pats.iter().map(|p| map1(self, &mut changed, p)).collect(),
            },
            TreeKind::Typed { expr, tpe } => TreeKind::Typed {
                expr: map1(self, &mut changed, expr),
                tpe: tpe.clone(),
            },
            TreeKind::Cast { expr, tpe } => TreeKind::Cast {
                expr: map1(self, &mut changed, expr),
                tpe: tpe.clone(),
            },
            TreeKind::IsInstance { expr, tpe } => TreeKind::IsInstance {
                expr: map1(self, &mut changed, expr),
                tpe: tpe.clone(),
            },
            TreeKind::While { cond, body } => TreeKind::While {
                cond: map1(self, &mut changed, cond),
                body: map1(self, &mut changed, body),
            },
            TreeKind::Try {
                block,
                cases,
                finalizer,
            } => TreeKind::Try {
                block: map1(self, &mut changed, block),
                cases: cases.iter().map(|c| map1(self, &mut changed, c)).collect(),
                finalizer: map1(self, &mut changed, finalizer),
            },
            TreeKind::Throw { expr } => TreeKind::Throw {
                expr: map1(self, &mut changed, expr),
            },
            TreeKind::Return { expr, from } => TreeKind::Return {
                expr: map1(self, &mut changed, expr),
                from: *from,
            },
            TreeKind::Lambda { params, body } => TreeKind::Lambda {
                params: params.iter().map(|p| map1(self, &mut changed, p)).collect(),
                body: map1(self, &mut changed, body),
            },
            TreeKind::Labeled { label, body } => TreeKind::Labeled {
                label: *label,
                body: map1(self, &mut changed, body),
            },
            TreeKind::JumpTo { label, args } => TreeKind::JumpTo {
                label: *label,
                args: args.iter().map(|a| map1(self, &mut changed, a)).collect(),
            },
            TreeKind::SeqLiteral { elems, elem_tpe } => TreeKind::SeqLiteral {
                elems: elems.iter().map(|e| map1(self, &mut changed, e)).collect(),
                elem_tpe: elem_tpe.clone(),
            },
            TreeKind::ValDef { sym, rhs } => TreeKind::ValDef {
                sym: *sym,
                rhs: map1(self, &mut changed, rhs),
            },
            TreeKind::DefDef { sym, paramss, rhs } => TreeKind::DefDef {
                sym: *sym,
                paramss: paramss
                    .iter()
                    .map(|ps| ps.iter().map(|p| map1(self, &mut changed, p)).collect())
                    .collect(),
                rhs: map1(self, &mut changed, rhs),
            },
            TreeKind::ClassDef { sym, body } => TreeKind::ClassDef {
                sym: *sym,
                body: body.iter().map(|b| map1(self, &mut changed, b)).collect(),
            },
            TreeKind::PackageDef { pkg, stats } => TreeKind::PackageDef {
                pkg: *pkg,
                stats: stats.iter().map(|s| map1(self, &mut changed, s)).collect(),
            },
        };
        if !changed && self.options.copier_reuse {
            Rc::clone(t)
        } else {
            self.mk(new_kind, t.tpe().clone(), t.span())
        }
    }

    /// Splices `new_children` into a copy of `t`, comparing each against the
    /// original children by pointer identity first: when nothing changed
    /// (and [`IrOptions::copier_reuse`] is on) the original node is returned
    /// without constructing a kind at all — the fast path the iterative
    /// executor hits on every untouched subtree. The children are **moved**
    /// into the rebuilt node.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields fewer children than `t` has.
    pub fn rebuild_with_children(
        &mut self,
        t: &TreeRef,
        changed: bool,
        new_children: &mut impl Iterator<Item = TreeRef>,
    ) -> TreeRef {
        if !changed && self.options.copier_reuse {
            return Rc::clone(t);
        }
        let kind = t.kind().with_children_owned(new_children);
        self.mk(kind, t.tpe().clone(), t.span())
    }
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx::new()
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ctx(nodes={}, bytes={}, errors={})",
            self.stats.nodes,
            self.stats.bytes,
            self.errors.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_children_reuses_unchanged_nodes() {
        let mut ctx = Ctx::new();
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let blk = ctx.block(vec![one], two);
        let before = ctx.stats.nodes;
        let mapped = ctx.map_children(&blk, &mut |_, c| Rc::clone(c));
        assert!(Rc::ptr_eq(&mapped, &blk), "identity map reuses node");
        assert_eq!(ctx.stats.nodes, before, "no allocation on reuse");
    }

    #[test]
    fn map_children_rebuilds_on_change() {
        let mut ctx = Ctx::new();
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let blk = ctx.block(vec![one], two);
        let mapped = ctx.map_children(&blk, &mut |ctx, c| {
            if let TreeKind::Literal { .. } = c.kind() {
                ctx.lit_int(42)
            } else {
                Rc::clone(c)
            }
        });
        assert!(!Rc::ptr_eq(&mapped, &blk));
        let kids = mapped.children();
        for k in kids {
            assert_eq!(k.kind().node_kind(), crate::tree::NodeKind::Literal);
            if let TreeKind::Literal { value } = k.kind() {
                assert_eq!(value.as_int(), Some(42));
            }
        }
    }

    #[test]
    fn legacy_mode_always_copies() {
        let mut ctx = Ctx::new();
        ctx.options.copier_reuse = false;
        let one = ctx.lit_int(1);
        let two = ctx.lit_int(2);
        let blk = ctx.block(vec![one], two);
        let mapped = ctx.map_children(&blk, &mut |_, c| Rc::clone(c));
        assert!(!Rc::ptr_eq(&mapped, &blk), "legacy mode reallocates");
    }

    #[test]
    fn heap_addresses_are_bump_allocated() {
        let mut ctx = Ctx::new();
        let a = ctx.lit_int(1);
        let b = ctx.lit_int(2);
        assert!(b.addr() > a.addr());
        assert!(b.addr() - a.addr() >= u64::from(a.bytes() & !7));
    }

    #[test]
    fn shared_empty_is_a_single_node() {
        let mut ctx = Ctx::new();
        let e1 = ctx.empty();
        let before = ctx.stats.nodes;
        let e2 = ctx.empty();
        assert!(Rc::ptr_eq(&e1, &e2));
        assert_eq!(ctx.stats.nodes, before);
    }

    #[test]
    fn string_literals_are_interned() {
        let mut ctx = Ctx::new();
        let a = ctx.lit_str("hello");
        let before = ctx.stats.nodes;
        let b = ctx.lit_str("hello");
        assert!(Rc::ptr_eq(&a, &b), "same name shares one node");
        assert_eq!(ctx.stats.nodes, before, "no allocation on the hit");
        let c = ctx.lit_str("world");
        assert!(!Rc::ptr_eq(&a, &c));
        // Literals with real source spans keep distinct nodes.
        let spanned = ctx.lit(Constant::Str(Name::intern("hello")), Span::new(1, 6));
        assert!(!Rc::ptr_eq(&a, &spanned));
    }

    #[test]
    fn small_int_range_is_per_ctx_tunable() {
        let mut ctx = Ctx::new();
        // Default range −8..=63.
        let a = ctx.lit_int(63);
        let b = ctx.lit_int(63);
        assert!(Rc::ptr_eq(&a, &b));
        let wide1 = ctx.lit_int(1000);
        let wide2 = ctx.lit_int(1000);
        assert!(
            !Rc::ptr_eq(&wide1, &wide2),
            "1000 outside the default range"
        );

        // Widen the range: 1000 now interns; the stale −8-based cache must
        // not serve hits for the new range.
        ctx.options.intern_int_min = 0;
        ctx.options.intern_int_max = 1023;
        let w1 = ctx.lit_int(1000);
        let w2 = ctx.lit_int(1000);
        assert!(Rc::ptr_eq(&w1, &w2));
        let re63a = ctx.lit_int(63);
        let re63b = ctx.lit_int(63);
        assert!(Rc::ptr_eq(&re63a, &re63b), "rebuilt cache serves new range");

        // An empty range disables small-int interning entirely.
        ctx.options.intern_int_min = 0;
        ctx.options.intern_int_max = -1;
        let n1 = ctx.lit_int(5);
        let n2 = ctx.lit_int(5);
        assert!(!Rc::ptr_eq(&n1, &n2));
    }

    #[test]
    fn legacy_mode_interns_nothing() {
        let mut ctx = Ctx::new();
        ctx.options.intern_literals = false;
        let a = ctx.lit_str("x");
        let b = ctx.lit_str("x");
        assert!(!Rc::ptr_eq(&a, &b));
        let i1 = ctx.lit_int(0);
        let i2 = ctx.lit_int(0);
        assert!(!Rc::ptr_eq(&i1, &i2));
    }

    #[test]
    fn diagnostics_accumulate() {
        let mut ctx = Ctx::new();
        assert!(!ctx.has_errors());
        ctx.error(Span::new(1, 2), "typer", "kaboom");
        assert!(ctx.has_errors());
        assert!(ctx.errors[0].to_string().contains("kaboom"));
    }
}
