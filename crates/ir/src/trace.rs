//! Heap-lifetime instrumentation.
//!
//! The generational-GC simulator (paper Figs 5–6) needs the *allocation and
//! death stream* of tree nodes as produced by the real pipelines. Allocations
//! flow through [`crate::Ctx::mk`]; deaths happen wherever the last `Arc`
//! reference is dropped, which is why the hook is a thread-local sink reached
//! from `Tree`'s `Drop` impl. When no sink is installed the cost is a single
//! thread-local flag check per event.

use crate::tree::NodeId;
use std::cell::{Cell, RefCell};

/// Consumer of the node allocation/death stream.
///
/// Events arrive in program order; `alloc` carries the node's modelled byte
/// size, and the matching `free` fires when the node becomes unreachable.
pub trait HeapSink {
    /// A node was allocated.
    fn alloc(&mut self, id: NodeId, bytes: u32);
    /// A node became unreachable.
    fn free(&mut self, id: NodeId, bytes: u32);
}

thread_local! {
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Box<dyn HeapSink>>> = const { RefCell::new(None) };
}

/// Installs a heap sink for the current thread, returning any previous one.
///
/// While installed, every tree node allocation and death on this thread is
/// reported to the sink.
pub fn install_heap_sink(sink: Box<dyn HeapSink>) -> Option<Box<dyn HeapSink>> {
    TRACING.with(|t| t.set(true));
    SINK.with(|s| s.borrow_mut().replace(sink))
}

/// Removes and returns the current thread's heap sink, if any.
pub fn take_heap_sink() -> Option<Box<dyn HeapSink>> {
    TRACING.with(|t| t.set(false));
    SINK.with(|s| s.borrow_mut().take())
}

/// True if a heap sink is currently installed on this thread.
pub fn heap_tracing_enabled() -> bool {
    TRACING.with(|t| t.get())
}

#[inline]
pub(crate) fn record_alloc(id: NodeId, bytes: u32) {
    if TRACING.with(|t| t.get()) {
        SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                sink.alloc(id, bytes);
            }
        });
    }
}

#[inline]
pub(crate) fn record_free(id: NodeId, bytes: u32) {
    if TRACING.with(|t| t.get()) {
        SINK.with(|s| {
            // `try` borrow defends against re-entrant drops from inside the
            // sink itself; such nodes are simply not reported.
            if let Ok(mut guard) = s.try_borrow_mut() {
                if let Some(sink) = guard.as_mut() {
                    sink.free(id, bytes);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Recorder {
        events: Arc<Mutex<Vec<(char, u64)>>>,
    }

    impl HeapSink for Recorder {
        fn alloc(&mut self, id: NodeId, _bytes: u32) {
            self.events.lock().unwrap().push(('a', id.0));
        }
        fn free(&mut self, id: NodeId, _bytes: u32) {
            self.events.lock().unwrap().push(('f', id.0));
        }
    }

    #[test]
    fn alloc_and_free_events_are_observed() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let prev = install_heap_sink(Box::new(Recorder {
            events: Arc::clone(&events),
        }));
        assert!(prev.is_none());
        assert!(heap_tracing_enabled());

        let mut ctx = Ctx::new();
        let id = {
            // 1000 is outside the interned small-int range, so the node is
            // uniquely owned and dies with the binding.
            let t = ctx.lit_int(1000);
            t.id().0
        }; // dropped here

        take_heap_sink().expect("sink was installed");
        assert!(!heap_tracing_enabled());

        let ev = events.lock().unwrap();
        assert!(ev.contains(&('a', id)));
        assert!(ev.contains(&('f', id)));
        let ai = ev.iter().position(|e| *e == ('a', id)).unwrap();
        let fi = ev.iter().position(|e| *e == ('f', id)).unwrap();
        assert!(ai < fi, "alloc precedes free");
    }

    #[test]
    fn no_events_without_sink() {
        let mut ctx = Ctx::new();
        let _ = ctx.lit_int(5);
        // Nothing to assert beyond "does not panic": the fast path is a flag
        // check.
        assert!(!heap_tracing_enabled());
    }
}
