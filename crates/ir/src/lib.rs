//! # mini-ir — the tree intermediate representation
//!
//! The data layer shared by every component of the Miniphases reproduction:
//!
//! * immutable [`Tree`] nodes with copiers implementing the paper's
//!   same-fields reuse optimization (§2),
//! * [`Type`]s including singleton [`Type::TermRef`] references,
//! * [`SymbolTable`] with linearization, subtyping, least upper bounds,
//!   member lookup and erasure,
//! * the [`Ctx`] compilation context through which all nodes are created,
//! * instrumentation hooks: [`trace::HeapSink`] for the allocation/death
//!   stream (GC figures) and [`AccessSink`] for the memory-access stream
//!   (cache figures).
//!
//! # Examples
//!
//! ```
//! use mini_ir::{Ctx, Type, visit};
//! let mut ctx = Ctx::new();
//! let one = ctx.lit_int(1);
//! let two = ctx.lit_int(2);
//! let block = ctx.block(vec![one], two);
//! assert_eq!(*block.tpe(), Type::Int);
//! assert_eq!(visit::count_nodes(&block), 3);
//! ```

#![warn(missing_docs)]

mod constant;
mod ctx;
pub mod fingerprint;
mod flags;
mod names;
pub mod printer;
mod span;
mod symbol;
pub mod trace;
mod tree;
pub mod types;
pub mod visit;

pub use constant::Constant;
pub use ctx::{AccessSink, AllocStats, Ctx, Diagnostic, IrOptions};
pub use flags::Flags;
pub use names::{std_names, Name};
pub use span::Span;
pub use symbol::{Builtins, ShardGrowth, SymKind, SymbolData, SymbolDelta, SymbolId, SymbolTable};
pub use tree::{
    Kids, NodeId, NodeKind, NodeKindSet, Tree, TreeKind, TreeRef, ALL_NODE_KINDS, NODE_KIND_COUNT,
};
pub use types::Type;
