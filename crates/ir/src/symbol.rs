//! Symbols and the symbol table.
//!
//! Symbols are unique identifiers for definitions — classes, methods, fields,
//! parameters, locals — exactly as in the paper (§2). The [`SymbolTable`] is
//! an arena indexed by [`SymbolId`]; it also owns the class hierarchy and
//! therefore hosts the hierarchy-dependent type operations: subtyping, least
//! upper bounds, linearization, member lookup and erasure.

use crate::flags::Flags;
use crate::names::{std_names, Name};
use crate::span::Span;
use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A compact handle identifying one definition.
///
/// `SymbolId::NONE` is the null symbol, used for not-yet-resolved references.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The null symbol.
    pub const NONE: SymbolId = SymbolId(0);

    /// True if this is the null symbol.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True if this refers to an actual definition.
    pub fn exists(self) -> bool {
        self.0 != 0
    }

    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index (for dense side tables and tests).
    pub fn from_index(i: u32) -> SymbolId {
        SymbolId(i)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// What sort of definition a symbol names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymKind {
    /// A term definition: `val`, `var`, `def`, parameter, local.
    Term,
    /// A class or trait.
    Class,
    /// A package.
    Package,
    /// A type parameter.
    TypeParam,
    /// A jump label (introduced by `TailRec` / `PatternMatcher`).
    Label,
}

/// The data stored for one symbol.
#[derive(Clone, Debug)]
pub struct SymbolData {
    /// The definition's name.
    pub name: Name,
    /// Property flags.
    pub flags: Flags,
    /// The enclosing definition.
    pub owner: SymbolId,
    /// The sort of definition.
    pub kind: SymKind,
    /// The symbol's type: a method type for `def`s, the value type for
    /// `val`s. `NoType` for packages.
    pub info: Type,
    /// Source location of the definition.
    pub span: Span,
    /// Class only: parent types, superclass first.
    pub parents: Vec<Type>,
    /// Class/package only: member symbols in declaration order.
    pub decls: Vec<SymbolId>,
    /// Class only: type parameters.
    pub tparams: Vec<SymbolId>,
}

/// Well-known symbols created at table construction.
#[derive(Clone, Copy, Debug)]
pub struct Builtins {
    /// The root package.
    pub root_pkg: SymbolId,
    /// A pseudo-class holding the universal members of `Any`
    /// (`equals`, `toString`, `getClass`).
    pub any_class: SymbolId,
    /// `equals(that: Any): Boolean` on `Any`.
    pub equals_meth: SymbolId,
    /// `toString(): String` on `Any`.
    pub to_string_meth: SymbolId,
    /// `getClass(): String` on `Any` (returns the runtime class name).
    pub get_class_meth: SymbolId,
    /// `println(x: Any): Unit`, the single built-in I/O primitive.
    pub println_fn: SymbolId,
    /// `Function0` .. `Function3` classes.
    pub function_classes: [SymbolId; 4],
}

/// A contiguous block of symbols whose ids start at `start` instead of
/// extending the base arena — the unit of symbol-id space handed to one
/// parallel-compilation worker (see [`SymbolTable::fork_for_worker`]).
#[derive(Clone, Debug)]
struct Shard {
    /// First id of the shard; slot `k` holds id `start + k`.
    start: u32,
    /// Exclusive upper bound on ids this shard may allocate.
    capacity: u32,
    syms: Vec<SymbolData>,
}

impl Shard {
    fn contains(&self, id: u32) -> bool {
        id >= self.start && ((id - self.start) as usize) < self.syms.len()
    }
}

/// Index into a `start`-sorted, disjoint shard list of the shard containing
/// `id`, or `None`. The one definition of shard resolution shared by every
/// read, write, and fork-snapshot path — a boundary fix here fixes all of
/// them at once.
fn find_shard(shards: &[Shard], id: u32) -> Option<usize> {
    let at = shards.partition_point(|s| s.start + s.syms.len() as u32 <= id);
    shards.get(at).filter(|s| s.contains(id)).map(|_| at)
}

/// Where a worker fork carves **overflow shards** once its primary shard
/// fills. A symbol-heavy unit chunk no longer aborts the compile: the fork
/// chains a fresh shard at `next_start`, then advances `next_start` by
/// `step`. The scheduler interleaves forks' overflow regions (fork `c` of
/// `k` concurrent forks steps by `k × capacity`), so chained ids stay
/// globally unique without any cross-thread coordination.
#[derive(Clone, Copy, Debug)]
pub struct ShardGrowth {
    /// First id of this fork's next overflow shard.
    pub next_start: u32,
    /// Id distance between this fork's consecutive overflow shards.
    pub step: u32,
    /// Capacity of each overflow shard.
    pub capacity: u32,
}

/// Everything a parallel-compilation worker did to its forked
/// [`SymbolTable`], packaged for the deterministic merge back into the
/// origin table: the shards of newly created symbols (globally unique ids,
/// adopted verbatim; a primary shard plus any chained overflow shards) and
/// the base symbols it mutated (fork-time snapshot + final value, merged
/// field-wise with append-aware `decls` handling).
#[derive(Clone)]
pub struct SymbolDelta {
    shards: Vec<Shard>,
    /// `(id, fork-time snapshot, final value)`, ascending by id.
    dirty: Vec<(SymbolId, SymbolData, SymbolData)>,
}

impl SymbolDelta {
    /// True when the delta carries neither new symbols nor mutations.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty() && self.dirty.is_empty()
    }

    /// One past the highest symbol id this delta's shards occupy (0 when it
    /// created no symbols). Compile sessions use this to advance their
    /// shard cursor so the next fork's id range clears every cached delta.
    pub fn max_id_end(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.start + s.syms.len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Looks up a symbol **created by this delta** (i.e. living in one of
    /// its shards); `None` for pre-fork ids.
    pub fn new_symbol(&self, id: SymbolId) -> Option<&SymbolData> {
        find_shard(&self.shards, id.index()).map(|at| {
            let sh = &self.shards[at];
            &sh.syms[(id.index() - sh.start) as usize]
        })
    }

    /// The *final* value this delta records for a mutated pre-fork symbol,
    /// or `None` if the fork never wrote it.
    pub fn dirty_final(&self, id: SymbolId) -> Option<&SymbolData> {
        self.dirty
            .binary_search_by_key(&id, |(d, _, _)| *d)
            .ok()
            .map(|at| &self.dirty[at].2)
    }

    /// The dirty entries — mutated pre-fork symbols — as `(id, final
    /// value)` pairs, ascending by id.
    pub fn dirty_entries(&self) -> impl Iterator<Item = (SymbolId, &SymbolData)> {
        self.dirty.iter().map(|(id, _, fin)| (*id, fin))
    }

    /// Drops every dirty (mutated pre-fork symbol) entry for which `keep`
    /// returns false; `keep` receives the id and the recorded final value.
    /// Compile sessions use this to discard a cached unit's whole-table
    /// sweep residue over *other* units' symbols — entries that would go
    /// stale (and poison a later table rebuild) as soon as those units are
    /// re-typed. New-symbol shards are never filtered: their ids are born
    /// unit-private.
    pub fn retain_dirty(&mut self, mut keep: impl FnMut(SymbolId, &SymbolData) -> bool) {
        self.dirty.retain(|(id, _, fin)| keep(*id, fin));
    }
}

/// The arena of all symbols plus hierarchy-dependent type operations.
///
/// # Examples
///
/// ```
/// use mini_ir::{Flags, Name, SymKind, SymbolTable, Type};
/// let mut tab = SymbolTable::new();
/// let owner = tab.builtins().root_pkg;
/// let c = tab.new_class(owner, Name::from("C"), Flags::EMPTY, vec![Type::AnyRef], vec![]);
/// assert!(tab.is_subtype(&tab.class_type(c), &Type::AnyRef));
/// ```
///
/// Cloning is cheap (`Arc`-shared base arena and adopted shards) until the
/// clone — or the original — first mutates, at which point `Arc::make_mut`
/// copies the touched region. The incremental compile session leans on
/// this: every `compile()` clones the pristine frontend table and splices
/// cached per-unit deltas into the clone.
#[derive(Clone)]
pub struct SymbolTable {
    /// The base arena. `Arc`-shared so [`SymbolTable::fork_for_worker`] is
    /// O(1) in base-table size: forks alias the same frozen snapshot, and
    /// ordinary tables mutate through [`Arc::make_mut`] (free while no fork
    /// is alive, which the fork/merge protocol guarantees at mutation time).
    syms: Arc<Vec<SymbolData>>,
    builtins: Builtins,
    /// Worker tables only: where this fork allocates new symbols — the
    /// primary shard plus any chained overflow shards, ascending by
    /// `start`. Empty on ordinary tables, which extend `syms` contiguously.
    shards: Vec<Shard>,
    /// Worker tables only: where overflow shards carve fresh id ranges once
    /// the primary shard fills.
    growth: Option<ShardGrowth>,
    /// Shards merged in from finished workers, sorted by `start`. Resolved
    /// read-only; a table with adopted shards keeps allocating in the gap
    /// between `syms.len()` and the first shard. `Arc`-shared with forks
    /// for the same O(1)-fork reason as `syms`.
    adopted: Arc<Vec<Shard>>,
    /// Worker tables only: copy-on-write overlay holding this fork's
    /// mutations of pre-fork symbols (base arena **or** previously adopted
    /// shards), keyed by id. The shared base is never written; the
    /// fork-time snapshot a [`SymbolDelta`] needs *is* the frozen base
    /// value. `None` on ordinary tables.
    overlay: Option<BTreeMap<u32, SymbolData>>,
}

impl SymbolTable {
    /// Creates a table pre-populated with the built-in definitions.
    pub fn new() -> SymbolTable {
        let mut tab = SymbolTable {
            syms: Arc::new(vec![SymbolData {
                // Index 0 is the NONE sentinel.
                name: std_names::root_pkg(),
                flags: Flags::EMPTY,
                owner: SymbolId::NONE,
                kind: SymKind::Package,
                info: Type::NoType,
                span: Span::SYNTHETIC,
                parents: Vec::new(),
                decls: Vec::new(),
                tparams: Vec::new(),
            }]),
            builtins: Builtins {
                root_pkg: SymbolId::NONE,
                any_class: SymbolId::NONE,
                equals_meth: SymbolId::NONE,
                to_string_meth: SymbolId::NONE,
                get_class_meth: SymbolId::NONE,
                println_fn: SymbolId::NONE,
                function_classes: [SymbolId::NONE; 4],
            },
            shards: Vec::new(),
            growth: None,
            adopted: Arc::new(Vec::new()),
            overlay: None,
        };
        let root = tab.alloc(SymbolData {
            name: std_names::root_pkg(),
            flags: Flags::PACKAGE,
            owner: SymbolId::NONE,
            kind: SymKind::Package,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        });
        tab.builtins.root_pkg = root;

        // `Any`'s universal members live on a pseudo-class.
        let any_class = tab.new_class(root, std_names::any(), Flags::SYNTHETIC, vec![], vec![]);
        let equals_meth = tab.new_term(
            any_class,
            std_names::equals(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![Type::Any]],
                ret: Box::new(Type::Boolean),
            },
        );
        let to_string_meth = tab.new_term(
            any_class,
            std_names::to_string(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Str),
            },
        );
        let get_class_meth = tab.new_term(
            any_class,
            std_names::get_class(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Str),
            },
        );
        let println_fn = tab.new_term(
            root,
            std_names::println(),
            Flags::METHOD | Flags::SYNTHETIC,
            Type::Method {
                params: vec![vec![Type::Any]],
                ret: Box::new(Type::Unit),
            },
        );

        // Function0..Function3 with their `apply` methods.
        let mut function_classes = [SymbolId::NONE; 4];
        for (n, slot) in function_classes.iter_mut().enumerate() {
            let cls_name = Name::intern(&format!("Function{n}"));
            let cls = tab.new_class(
                root,
                cls_name,
                Flags::TRAIT | Flags::SYNTHETIC,
                vec![Type::AnyRef],
                vec![],
            );
            let mut tparams = Vec::new();
            for i in 0..n {
                let tp = tab.alloc(SymbolData {
                    name: Name::intern(&format!("T{}", i + 1)),
                    flags: Flags::TYPE_PARAM,
                    owner: cls,
                    kind: SymKind::TypeParam,
                    info: Type::Any,
                    span: Span::SYNTHETIC,
                    parents: Vec::new(),
                    decls: Vec::new(),
                    tparams: Vec::new(),
                });
                tparams.push(tp);
            }
            let r = tab.alloc(SymbolData {
                name: Name::intern("R"),
                flags: Flags::TYPE_PARAM,
                owner: cls,
                kind: SymKind::TypeParam,
                info: Type::Any,
                span: Span::SYNTHETIC,
                parents: Vec::new(),
                decls: Vec::new(),
                tparams: Vec::new(),
            });
            let apply_info = Type::Method {
                params: vec![tparams.iter().map(|&tp| Type::TypeParam(tp)).collect()],
                ret: Box::new(Type::TypeParam(r)),
            };
            tab.new_term(
                cls,
                std_names::apply(),
                Flags::METHOD | Flags::DEFERRED,
                apply_info,
            );
            let mut all_tparams = tparams;
            all_tparams.push(r);
            tab.sym_mut(cls).tparams = all_tparams;
            *slot = cls;
        }

        tab.builtins = Builtins {
            root_pkg: root,
            any_class,
            equals_meth,
            to_string_meth,
            get_class_meth,
            println_fn,
            function_classes,
        };
        tab
    }

    /// The well-known symbols.
    pub fn builtins(&self) -> &Builtins {
        &self.builtins
    }

    /// Total number of symbols allocated (including builtins and any worker
    /// shards this table allocated or adopted). Mutated pre-fork symbols in
    /// a fork's overlay shadow base entries, so they do not count twice.
    pub fn len(&self) -> usize {
        self.syms.len()
            + self.shards.iter().map(|s| s.syms.len()).sum::<usize>()
            + self.adopted.iter().map(|s| s.syms.len()).sum::<usize>()
    }

    /// True if only the sentinel exists (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Every resolvable symbol id except the `NONE` sentinel, ascending:
    /// the base arena, then adopted shards, then this table's own shards
    /// (a fork's own shards always start above every shard it inherited
    /// and chain upward, so this chain *is* ascending id order — the
    /// deterministic sweep order the parallel-determinism guarantee relies
    /// on). Whole-table sweeps (`ElimByName`, `Erasure`, `Flatten`) must
    /// use this rather than `1..len()` — ids are **not** contiguous once a
    /// table has a worker shard.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> + '_ {
        let base = 1..self.syms.len() as u32;
        let own = self
            .shards
            .iter()
            .flat_map(|s| s.start..s.start + s.syms.len() as u32);
        let adopted = self
            .adopted
            .iter()
            .flat_map(|s| s.start..s.start + s.syms.len() as u32);
        base.chain(adopted).chain(own).map(SymbolId)
    }

    /// The lowest id guaranteed to be above every symbol this table can
    /// resolve — the floor from which fresh worker shards may be carved.
    pub fn id_ceiling(&self) -> u32 {
        let base = self.syms.len() as u32;
        self.adopted
            .iter()
            .chain(self.shards.iter())
            .map(|s| s.start + s.syms.len() as u32)
            .fold(base, u32::max)
    }

    /// True if `self` and `other` alias the same frozen base arena and
    /// adopted-shard list — i.e. no symbol data was copied between them.
    /// This is the copy-on-write fork invariant the fork-cost regression
    /// test pins: [`SymbolTable::fork_for_worker`] is O(1) in base-table
    /// size precisely because this holds for every fresh fork.
    pub fn base_shared_with(&self, other: &SymbolTable) -> bool {
        Arc::ptr_eq(&self.syms, &other.syms) && Arc::ptr_eq(&self.adopted, &other.adopted)
    }

    /// Forks a worker-private table for parallel compilation in **O(1)**:
    /// the fork aliases the origin's frozen base arena and adopted shards
    /// (no symbol is copied), *new* allocations receive ids in
    /// `start..start + capacity` — chaining overflow shards per `growth`
    /// when the primary shard fills — and mutations of pre-fork symbols go
    /// to a private copy-on-write overlay, so every worker's ids stay
    /// globally unique and every worker's writes stay invisible to its
    /// siblings without coordination. Ship the result back through
    /// [`SymbolTable::into_delta`] / [`SymbolTable::adopt`].
    ///
    /// The origin table must not allocate or mutate symbols while forks are
    /// alive (the parallel scheduler forks before spawning workers and
    /// merges after joining them, so this holds by construction); ordinary
    /// mutation resumes for free once every fork has been consumed.
    ///
    /// # Panics
    ///
    /// Panics if `start` is below [`SymbolTable::id_ceiling`] (the shard
    /// would shadow resolvable ids), if the overflow region overlaps the
    /// primary shard, if a capacity is zero, or if called on a table that
    /// is itself a worker fork.
    pub fn fork_for_worker(&self, start: u32, capacity: u32, growth: ShardGrowth) -> SymbolTable {
        assert!(self.overlay.is_none(), "cannot fork a worker fork");
        assert!(start >= self.id_ceiling(), "worker shard shadows live ids");
        assert!(
            capacity > 0 && growth.capacity > 0 && growth.step >= growth.capacity,
            "degenerate shard capacities"
        );
        assert!(
            growth.next_start >= start.saturating_add(capacity),
            "overflow region overlaps the primary shard"
        );
        SymbolTable {
            syms: Arc::clone(&self.syms),
            builtins: self.builtins,
            shards: vec![Shard {
                start,
                capacity,
                syms: Vec::new(),
            }],
            growth: Some(growth),
            adopted: Arc::clone(&self.adopted),
            overlay: Some(BTreeMap::new()),
        }
    }

    /// Resolves `id` in the frozen pre-fork state only (base arena and
    /// adopted shards), bypassing the overlay — the fork-time snapshot of a
    /// mutated symbol.
    fn pre_fork_sym(&self, id: SymbolId) -> &SymbolData {
        let i = id.0 as usize;
        if i < self.syms.len() {
            return &self.syms[i];
        }
        match find_shard(&self.adopted, id.0) {
            Some(at) => {
                let sh = &self.adopted[at];
                &sh.syms[(id.0 - sh.start) as usize]
            }
            None => panic!("dangling {id:?} (not in base or any adopted shard)"),
        }
    }

    /// Consumes a worker fork into the delta its origin table needs for the
    /// merge: the shards of new symbols plus every overlay mutation as a
    /// `(fork snapshot, final value)` pair. The snapshot is read straight
    /// from the shared frozen base — it *is* the fork-time value, because
    /// the base never changes while a fork is alive.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a worker fork.
    pub fn into_delta(mut self) -> SymbolDelta {
        let overlay = self.overlay.take().expect("into_delta on a non-fork table");
        let shards = std::mem::take(&mut self.shards)
            .into_iter()
            .filter(|s| !s.syms.is_empty())
            .collect();
        let dirty = overlay
            .into_iter()
            .map(|(id, fin)| {
                let fork = self.pre_fork_sym(SymbolId(id)).clone();
                (SymbolId(id), fork, fin)
            })
            .collect();
        SymbolDelta { shards, dirty }
    }

    /// Merges one worker's [`SymbolDelta`] back in. Call once per worker
    /// fork, in unit order (forks own contiguous unit chunks, so chunk
    /// order *is* unit order); the merge is then deterministic:
    ///
    /// * the shards of worker-created symbols are adopted verbatim — their
    ///   ids were globally unique from birth, so trees referencing them
    ///   resolve with no rewriting;
    /// * mutated pre-fork symbols (base arena or previously adopted shards)
    ///   merge field-wise against the fork snapshot: only fields the worker
    ///   actually changed overwrite, and a `decls` list that grew by
    ///   appends re-appends just the new ids (preserving appends merged
    ///   from earlier workers); a reordered/rewritten list replaces
    ///   wholesale.
    ///
    /// Known, deliberate divergence: for owners shared across unit chunks
    /// (in practice only the root package), the merged `decls` order is
    /// *chunk-major* — all of chunk 0's appends across every phase group,
    /// then chunk 1's — while the sequential pipeline interleaves appends
    /// *group-major*. The membership set is identical either way, printed
    /// trees and codegen never consume package-decls order (codegen walks
    /// unit trees; `RestoreScopes` guards with `decls.contains`), and
    /// first-match [`SymbolTable::decl`] lookups on the root package are
    /// not used to disambiguate the per-unit synthetic classes that share
    /// names. Reconstructing the exact sequential interleaving would need
    /// per-(group, unit) deltas; do that before adding any consumer that
    /// reads shared-owner decls order.
    pub fn adopt(&mut self, delta: SymbolDelta) {
        for (id, fork, fin) in delta.dirty {
            let cur = self.sym_mut(id);
            if fin.name != fork.name {
                cur.name = fin.name;
            }
            if fin.flags != fork.flags {
                cur.flags = fin.flags;
            }
            if fin.owner != fork.owner {
                cur.owner = fin.owner;
            }
            if fin.kind != fork.kind {
                cur.kind = fin.kind;
            }
            if fin.info != fork.info {
                cur.info = fin.info;
            }
            if fin.span != fork.span {
                cur.span = fin.span;
            }
            if fin.parents != fork.parents {
                cur.parents = fin.parents;
            }
            if fin.tparams != fork.tparams {
                cur.tparams = fin.tparams;
            }
            if fin.decls.len() >= fork.decls.len()
                && fin.decls[..fork.decls.len()] == fork.decls[..]
            {
                cur.decls.extend_from_slice(&fin.decls[fork.decls.len()..]);
            } else if fin.decls != fork.decls {
                cur.decls = fin.decls;
            }
        }
        if delta.shards.iter().any(|s| !s.syms.is_empty()) {
            let adopted = Arc::make_mut(&mut self.adopted);
            adopted.extend(delta.shards.into_iter().filter(|s| !s.syms.is_empty()));
            adopted.sort_by_key(|s| s.start);
        }
    }

    fn alloc(&mut self, data: SymbolData) -> SymbolId {
        let owner = data.owner;
        let id = if self.overlay.is_some() {
            // Worker fork: allocate in the current own shard, chaining a
            // fresh overflow shard from the growth plan when it fills —
            // a symbol-heavy chunk grows instead of aborting the compile.
            if self
                .shards
                .last()
                .is_none_or(|s| s.syms.len() as u32 >= s.capacity)
            {
                let g = self.growth.as_mut().expect("worker fork has a growth plan");
                let start = g.next_start;
                g.next_start = start.checked_add(g.step).expect(
                    "symbol id space exhausted: overflow shard chain wrapped the u32 id domain",
                );
                self.shards.push(Shard {
                    start,
                    capacity: g.capacity,
                    syms: Vec::new(),
                });
            }
            let sh = self.shards.last_mut().expect("shard chained above");
            let id = SymbolId(sh.start + sh.syms.len() as u32);
            sh.syms.push(data);
            id
        } else {
            let id = SymbolId(self.syms.len() as u32);
            assert!(
                self.adopted.iter().all(|s| id.0 < s.start),
                "base symbol region collided with an adopted worker shard"
            );
            Arc::make_mut(&mut self.syms).push(data);
            id
        };
        if owner.exists() {
            self.sym_mut(owner).decls.push(id);
        }
        id
    }

    /// Creates a new term symbol (val/var/def/param/local) owned by `owner`
    /// and enters it into the owner's declarations.
    pub fn new_term(&mut self, owner: SymbolId, name: Name, flags: Flags, info: Type) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags,
            owner,
            kind: SymKind::Term,
            info,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a new class (or trait, if `flags` contains `TRAIT`).
    pub fn new_class(
        &mut self,
        owner: SymbolId,
        name: Name,
        flags: Flags,
        parents: Vec<Type>,
        tparams: Vec<SymbolId>,
    ) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags,
            owner,
            kind: SymKind::Class,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents,
            decls: Vec::new(),
            tparams,
        })
    }

    /// Creates a type-parameter symbol owned by `owner`.
    pub fn new_type_param(&mut self, owner: SymbolId, name: Name) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::TYPE_PARAM,
            owner,
            kind: SymKind::TypeParam,
            info: Type::Any,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a label symbol for jumps.
    pub fn new_label(&mut self, owner: SymbolId, name: Name, info: Type) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::LABEL | Flags::SYNTHETIC,
            owner,
            kind: SymKind::Label,
            info,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a package symbol.
    pub fn new_package(&mut self, owner: SymbolId, name: Name) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::PACKAGE,
            owner,
            kind: SymKind::Package,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Read access to a symbol's data. On a worker fork, mutated pre-fork
    /// symbols resolve from the copy-on-write overlay; everything else
    /// reads the shared frozen base.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `NONE` or out of range.
    #[inline]
    pub fn sym(&self, id: SymbolId) -> &SymbolData {
        assert!(id.exists(), "dereferencing SymbolId::NONE");
        if let Some(ov) = &self.overlay {
            if let Some(d) = ov.get(&id.0) {
                return d;
            }
        }
        let i = id.0 as usize;
        if i < self.syms.len() {
            &self.syms[i]
        } else {
            self.shard_sym(id)
        }
    }

    /// Out-of-base lookup: the table's own shards, then adopted shards.
    #[cold]
    fn shard_sym(&self, id: SymbolId) -> &SymbolData {
        if let Some(sh) = self.shards.iter().find(|s| s.contains(id.0)) {
            return &sh.syms[(id.0 - sh.start) as usize];
        }
        match find_shard(&self.adopted, id.0) {
            Some(at) => {
                let sh = &self.adopted[at];
                &sh.syms[(id.0 - sh.start) as usize]
            }
            None => panic!("dangling {id:?} (not in base, own shard, or any adopted shard)"),
        }
    }

    /// Mutable access to a symbol's data. On a worker fork, the first
    /// mutation of any pre-fork symbol — base arena **or** a shard adopted
    /// from an earlier parallel run — copies it into the fork's private
    /// overlay and mutates the copy; the shared frozen base is never
    /// written, which is what makes the O(1) fork sound and gives
    /// [`SymbolTable::into_delta`] its fork-time snapshots for free. Only
    /// the fork's own shards mutate in place (they ship back wholesale).
    ///
    /// # Panics
    ///
    /// Panics if `id` is `NONE` or out of range.
    pub fn sym_mut(&mut self, id: SymbolId) -> &mut SymbolData {
        assert!(id.exists(), "dereferencing SymbolId::NONE");
        let SymbolTable {
            syms,
            shards,
            adopted,
            overlay,
            ..
        } = self;
        // Fork-created symbols (own shards) mutate in place on both table
        // kinds; their ids are disjoint from everything pre-fork.
        if let Some(sh) = shards.iter_mut().find(|s| s.contains(id.0)) {
            return &mut sh.syms[(id.0 - sh.start) as usize];
        }
        if let Some(ov) = overlay {
            // Worker fork touching a pre-fork symbol: copy-on-write.
            return ov.entry(id.0).or_insert_with(|| {
                let i = id.0 as usize;
                if i < syms.len() {
                    syms[i].clone()
                } else {
                    match find_shard(adopted, id.0) {
                        Some(at) => {
                            let sh = &adopted[at];
                            sh.syms[(id.0 - sh.start) as usize].clone()
                        }
                        None => {
                            panic!("dangling {id:?} (not in base, own shard, or any adopted shard)")
                        }
                    }
                }
            });
        }
        // Ordinary table: mutate the base arena or an adopted shard via
        // copy-on-write `Arc`s (free while no fork aliases them).
        let i = id.0 as usize;
        if i < syms.len() {
            return &mut Arc::make_mut(syms)[i];
        }
        let adopted = Arc::make_mut(adopted);
        match find_shard(adopted, id.0) {
            Some(at) => {
                let sh = &mut adopted[at];
                &mut sh.syms[(id.0 - sh.start) as usize]
            }
            None => panic!("dangling {id:?} (not in base, own shard, or any adopted shard)"),
        }
    }

    /// The monomorphic class type of `cls` (empty type arguments).
    pub fn class_type(&self, cls: SymbolId) -> Type {
        Type::Class {
            sym: cls,
            targs: Vec::new(),
        }
    }

    /// The fully-applied class type of `cls` with its own type parameters as
    /// arguments (the "this type" for checking purposes).
    pub fn self_type(&self, cls: SymbolId) -> Type {
        let tps = &self.sym(cls).tparams;
        Type::Class {
            sym: cls,
            targs: tps.iter().map(|&t| Type::TypeParam(t)).collect(),
        }
    }

    /// The chain of owners from `sym` (exclusive) to the root.
    pub fn owner_chain(&self, sym: SymbolId) -> Vec<SymbolId> {
        let mut out = Vec::new();
        let mut cur = self.sym(sym).owner;
        while cur.exists() {
            out.push(cur);
            cur = self.sym(cur).owner;
        }
        out
    }

    /// The innermost enclosing class of `sym` (or `NONE`).
    pub fn enclosing_class(&self, sym: SymbolId) -> SymbolId {
        let mut cur = sym;
        while cur.exists() {
            if self.sym(cur).kind == SymKind::Class {
                return cur;
            }
            cur = self.sym(cur).owner;
        }
        SymbolId::NONE
    }

    /// Class linearization: the class itself followed by all base classes,
    /// traits linearized right-to-left, duplicates keeping the first
    /// occurrence.
    pub fn linearization(&self, cls: SymbolId) -> Vec<SymbolId> {
        let mut out = vec![cls];
        let parents: Vec<SymbolId> = self
            .sym(cls)
            .parents
            .iter()
            .filter_map(|p| p.class_sym())
            .collect();
        for p in parents.iter().rev() {
            for s in self.linearization(*p) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// True if `sub` is `sup` or inherits from it (symbol level).
    pub fn is_subclass(&self, sub: SymbolId, sup: SymbolId) -> bool {
        self.linearization(sub).contains(&sup)
    }

    /// The instantiation of base class `target` as seen from class type `t`,
    /// or `None` if `t` does not derive from `target`.
    pub fn base_type(&self, t: &Type, target: SymbolId) -> Option<Type> {
        match t {
            Type::Class { sym, targs } => {
                if *sym == target {
                    return Some(t.clone());
                }
                let data = self.sym(*sym);
                let tparams = data.tparams.clone();
                for parent in data.parents.clone() {
                    let seen = parent.subst(&tparams, targs);
                    if let Some(bt) = self.base_type(&seen, target) {
                        return Some(bt);
                    }
                }
                None
            }
            Type::Function { params, ret } => {
                let n = params.len();
                if n < self.builtins.function_classes.len() {
                    let cls = self.builtins.function_classes[n];
                    let mut targs = params.clone();
                    targs.push((**ret).clone());
                    self.base_type(&Type::Class { sym: cls, targs }, target)
                } else {
                    None
                }
            }
            Type::TermRef(s) => self.base_type(&self.widen(t.clone()), target).or_else(|| {
                let _ = s;
                None
            }),
            _ => None,
        }
    }

    /// Widens singleton types to their underlying type.
    pub fn widen(&self, t: Type) -> Type {
        match t {
            Type::TermRef(s) => {
                let info = self.sym(s).info.clone();
                self.widen(info)
            }
            other => other,
        }
    }

    /// Structural subtyping with nominal class subtyping (invariant type
    /// arguments, contravariant function parameters).
    pub fn is_subtype(&self, a: &Type, b: &Type) -> bool {
        if a == b {
            return true;
        }
        match (a, b) {
            (Type::Error, _) | (_, Type::Error) => true,
            (_, Type::Any) => true,
            (Type::Nothing, _) => true,
            (Type::Null, t) if t.is_ref_like() => true,
            (Type::TermRef(_), _) => self.is_subtype(&self.widen(a.clone()), b),
            (_, Type::AnyRef) if a.is_ref_like() => true,
            (Type::Or(x, y), _) => self.is_subtype(x, b) && self.is_subtype(y, b),
            (_, Type::Or(x, y)) => self.is_subtype(a, x) || self.is_subtype(a, y),
            (Type::Class { .. }, Type::Class { sym: bs, targs: bt }) => {
                match self.base_type(a, *bs) {
                    Some(Type::Class { targs: at, .. }) => at == *bt,
                    _ => false,
                }
            }
            (Type::Function { .. }, Type::Class { sym: bs, .. }) => match self.base_type(a, *bs) {
                Some(Type::Class { targs: at, .. }) => {
                    // Compare against the base instance; invariant args.
                    match self.base_type(a, *bs) {
                        Some(Type::Class { targs, .. }) => targs == at,
                        _ => false,
                    }
                }
                _ => false,
            },
            (
                Type::Function {
                    params: pa,
                    ret: ra,
                },
                Type::Function {
                    params: pb,
                    ret: rb,
                },
            ) => {
                pa.len() == pb.len()
                    && pb
                        .iter()
                        .zip(pa.iter())
                        .all(|(b_p, a_p)| self.is_subtype(b_p, a_p))
                    && self.is_subtype(ra, rb)
            }
            (Type::Array(ea), Type::Array(eb)) => ea == eb,
            (Type::ByName(x), Type::ByName(y)) => self.is_subtype(x, y),
            (Type::ByName(x), _) => self.is_subtype(x, b),
            (Type::Repeated(x), Type::Repeated(y)) => self.is_subtype(x, y),
            _ => false,
        }
    }

    /// Least upper bound, approximated: exact when one side subsumes the
    /// other; otherwise the most specific common base class, falling back to
    /// `AnyRef`/`Any`.
    pub fn lub(&self, a: &Type, b: &Type) -> Type {
        if self.is_subtype(a, b) {
            return b.clone();
        }
        if self.is_subtype(b, a) {
            return a.clone();
        }
        let wa = self.widen(a.clone());
        let wb = self.widen(b.clone());
        if let (Type::Class { sym: sa, .. }, Type::Class { .. }) = (&wa, &wb) {
            for base in self.linearization(*sa) {
                if let Some(bt) = self.base_type(&wa, base) {
                    if self.is_subtype(&wb, &bt) {
                        return bt;
                    }
                }
            }
        }
        if wa.is_ref_like() && wb.is_ref_like() {
            Type::AnyRef
        } else {
            Type::Any
        }
    }

    /// Type erasure (the `Erasure` phase's type map):
    /// * type parameters erase to `Any`;
    /// * class types lose their type arguments;
    /// * function types erase to the corresponding `FunctionN` class;
    /// * by-name types erase to `Function0`;
    /// * repeated types erase to arrays;
    /// * polymorphic methods lose their binders;
    /// * union members erase to their join.
    pub fn erase(&self, t: &Type) -> Type {
        match t {
            Type::TypeParam(_) => Type::Any,
            Type::TermRef(_) => self.erase(&self.widen(t.clone())),
            Type::Class { sym, .. } => Type::Class {
                sym: *sym,
                targs: Vec::new(),
            },
            Type::Function { params, .. } => {
                let n = params.len().min(self.builtins.function_classes.len() - 1);
                Type::Class {
                    sym: self.builtins.function_classes[n],
                    targs: Vec::new(),
                }
            }
            Type::ByName(_) => Type::Class {
                sym: self.builtins.function_classes[0],
                targs: Vec::new(),
            },
            Type::Repeated(e) => Type::Array(Box::new(self.erase(e))),
            Type::Array(e) => Type::Array(Box::new(self.erase(e))),
            Type::Method { params, ret } => {
                let flat: Vec<Type> = params.iter().flatten().map(|p| self.erase(p)).collect();
                Type::Method {
                    params: vec![flat],
                    ret: Box::new(self.erase(ret)),
                }
            }
            Type::Poly { underlying, .. } => self.erase(underlying),
            Type::Or(x, y) => {
                let ex = self.erase(x);
                let ey = self.erase(y);
                if ex == ey {
                    ex
                } else if ex.is_ref_like() && ey.is_ref_like() {
                    self.lub(&ex, &ey)
                } else {
                    Type::Any
                }
            }
            other => other.clone(),
        }
    }

    /// Looks up a declaration of `name` directly in `owner`.
    pub fn decl(&self, owner: SymbolId, name: Name) -> Option<SymbolId> {
        self.sym(owner)
            .decls
            .iter()
            .copied()
            .find(|&d| self.sym(d).name == name)
    }

    /// Member lookup on a type: walks the linearization of the underlying
    /// class and returns the first member named `name` together with its info
    /// *as seen from* `t` (type arguments substituted).
    pub fn member(&self, t: &Type, name: Name) -> Option<(SymbolId, Type)> {
        match t {
            Type::TermRef(_) => self.member(&self.widen(t.clone()), name),
            Type::Class { sym, .. } => {
                for base in self.linearization(*sym) {
                    if let Some(d) = self.decl(base, name) {
                        let info = self.sym(d).info.clone();
                        let seen = match self.base_type(t, base) {
                            Some(Type::Class { targs, .. }) => {
                                let tps = self.sym(base).tparams.clone();
                                if tps.len() == targs.len() {
                                    info.subst(&tps, &targs)
                                } else {
                                    info
                                }
                            }
                            _ => info,
                        };
                        return Some((d, seen));
                    }
                }
                self.universal_member(name)
            }
            Type::Function { params, ret } => {
                let n = params.len();
                if n < self.builtins.function_classes.len() {
                    let mut targs = params.clone();
                    targs.push((**ret).clone());
                    self.member(
                        &Type::Class {
                            sym: self.builtins.function_classes[n],
                            targs,
                        },
                        name,
                    )
                } else {
                    None
                }
            }
            Type::Any
            | Type::AnyRef
            | Type::Int
            | Type::Boolean
            | Type::Unit
            | Type::Str
            | Type::Array(_) => self.universal_member(name),
            Type::Or(x, _) => {
                // Selections on union types are the Splitter phase's business;
                // for lookup we use the left member (checked symmetric by the
                // typer).
                self.member(x, name)
            }
            _ => None,
        }
    }

    fn universal_member(&self, name: Name) -> Option<(SymbolId, Type)> {
        self.decl(self.builtins.any_class, name)
            .map(|d| (d, self.sym(d).info.clone()))
    }

    /// The member of a parent class that `m` (a member of `cls`) overrides,
    /// if any: same name, same number of value parameters.
    pub fn overridden(&self, cls: SymbolId, m: SymbolId) -> Option<SymbolId> {
        let md = self.sym(m);
        let nparams = md.info.param_count();
        for base in self.linearization(cls).into_iter().skip(1) {
            if let Some(d) = self.decl(base, md.name) {
                if self.sym(d).info.param_count() == nparams {
                    return Some(d);
                }
            }
        }
        None
    }

    /// All symbols whose owner is `owner` (snapshot).
    pub fn decls_of(&self, owner: SymbolId) -> Vec<SymbolId> {
        self.sym(owner).decls.clone()
    }

    /// Human-readable qualified name for diagnostics.
    pub fn full_name(&self, sym: SymbolId) -> String {
        if !sym.exists() {
            return "<none>".to_owned();
        }
        let mut parts = vec![self.sym(sym).name.as_str().to_owned()];
        for o in self.owner_chain(sym) {
            if o == self.builtins.root_pkg || !o.exists() {
                break;
            }
            parts.push(self.sym(o).name.as_str().to_owned());
        }
        parts.reverse();
        parts.join(".")
    }
}

impl Default for SymbolTable {
    fn default() -> SymbolTable {
        SymbolTable::new()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (SymbolTable, SymbolId, SymbolId, SymbolId) {
        // trait A; class B extends A; class C extends B
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let a = tab.new_class(
            pkg,
            Name::from("A"),
            Flags::TRAIT,
            vec![Type::AnyRef],
            vec![],
        );
        let b = {
            let at = tab.class_type(a);
            tab.new_class(pkg, Name::from("B"), Flags::EMPTY, vec![at], vec![])
        };
        let c = {
            let bt = tab.class_type(b);
            tab.new_class(pkg, Name::from("C"), Flags::EMPTY, vec![bt], vec![])
        };
        (tab, a, b, c)
    }

    #[test]
    fn linearization_orders_self_first() {
        let (tab, a, b, c) = fixture();
        let lin = tab.linearization(c);
        assert_eq!(lin[0], c);
        assert!(lin.contains(&b));
        assert!(lin.contains(&a));
        let pos = |s| lin.iter().position(|&x| x == s).unwrap();
        assert!(pos(c) < pos(b) && pos(b) < pos(a));
    }

    #[test]
    fn subclass_and_subtype_follow_parents() {
        let (tab, a, _b, c) = fixture();
        assert!(tab.is_subclass(c, a));
        assert!(!tab.is_subclass(a, c));
        assert!(tab.is_subtype(&tab.class_type(c), &tab.class_type(a)));
        assert!(tab.is_subtype(&tab.class_type(c), &Type::AnyRef));
        assert!(tab.is_subtype(&tab.class_type(c), &Type::Any));
        assert!(!tab.is_subtype(&Type::Int, &Type::AnyRef));
    }

    #[test]
    fn generic_base_type_substitutes_args() {
        // class Box[T]; class IntBox extends Box[Int]
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let box_cls = tab.new_class(
            pkg,
            Name::from("Box"),
            Flags::EMPTY,
            vec![Type::AnyRef],
            vec![],
        );
        let t = tab.new_type_param(box_cls, Name::from("T"));
        tab.sym_mut(box_cls).tparams = vec![t];
        let int_box = tab.new_class(
            pkg,
            Name::from("IntBox"),
            Flags::EMPTY,
            vec![Type::Class {
                sym: box_cls,
                targs: vec![Type::Int],
            }],
            vec![],
        );
        let bt = tab
            .base_type(&tab.class_type(int_box), box_cls)
            .expect("IntBox derives Box");
        assert_eq!(
            bt,
            Type::Class {
                sym: box_cls,
                targs: vec![Type::Int]
            }
        );
        // Member as seen from IntBox substitutes T := Int.
        let v = tab.new_term(
            box_cls,
            Name::from("value"),
            Flags::EMPTY,
            Type::TypeParam(t),
        );
        let (found, seen) = tab
            .member(&tab.class_type(int_box), Name::from("value"))
            .unwrap();
        assert_eq!(found, v);
        assert_eq!(seen, Type::Int);
    }

    #[test]
    fn lub_finds_common_base() {
        let (tab, a, b, c) = fixture();
        let l = tab.lub(&tab.class_type(c), &tab.class_type(b));
        assert_eq!(l, tab.class_type(b));
        let l2 = tab.lub(&tab.class_type(c), &tab.class_type(a));
        assert_eq!(l2, tab.class_type(a));
        assert_eq!(tab.lub(&Type::Int, &Type::Str), Type::Any);
        assert_eq!(tab.lub(&Type::Nothing, &Type::Int), Type::Int);
    }

    #[test]
    fn erasure_produces_erased_types() {
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let cls = tab.new_class(
            pkg,
            Name::from("Box"),
            Flags::EMPTY,
            vec![Type::AnyRef],
            vec![],
        );
        let t = tab.new_type_param(cls, Name::from("T"));
        tab.sym_mut(cls).tparams = vec![t];
        let generic = Type::Class {
            sym: cls,
            targs: vec![Type::Int],
        };
        assert!(tab.erase(&generic).is_erased());
        let f = Type::Function {
            params: vec![Type::Int],
            ret: Box::new(Type::Boolean),
        };
        let ef = tab.erase(&f);
        assert_eq!(ef.class_sym(), Some(tab.builtins().function_classes[1]));
        let m = Type::Method {
            params: vec![vec![Type::TypeParam(t)], vec![Type::Int]],
            ret: Box::new(Type::Repeated(Box::new(Type::TypeParam(t)))),
        };
        let em = tab.erase(&m);
        assert!(em.is_erased(), "{em}");
        assert_eq!(em.param_lists().len(), 1);
    }

    #[test]
    fn function_types_subtype_function_classes() {
        let tab = SymbolTable::new();
        let f1 = Type::Function {
            params: vec![Type::Int],
            ret: Box::new(Type::Boolean),
        };
        let cls = Type::Class {
            sym: tab.builtins().function_classes[1],
            targs: vec![Type::Int, Type::Boolean],
        };
        assert!(tab.is_subtype(&f1, &cls));
        let apply = tab.member(&f1, std_names::apply()).expect("apply member");
        assert_eq!(
            apply.1,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Boolean)
            }
        );
    }

    #[test]
    fn overridden_member_is_found() {
        let (mut tab, a, _b, c) = fixture();
        let base_m = tab.new_term(
            a,
            Name::from("m"),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Int),
            },
        );
        let sub_m = tab.new_term(
            c,
            Name::from("m"),
            Flags::METHOD | Flags::OVERRIDE,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Int),
            },
        );
        assert_eq!(tab.overridden(c, sub_m), Some(base_m));
    }

    #[test]
    fn full_name_walks_owners() {
        let (tab, _a, _b, c) = fixture();
        assert_eq!(tab.full_name(c), "C");
        assert_eq!(tab.full_name(SymbolId::NONE), "<none>");
    }

    #[test]
    fn union_subtyping() {
        let tab = SymbolTable::new();
        let u = Type::Or(Box::new(Type::Int), Box::new(Type::Str));
        assert!(tab.is_subtype(&Type::Int, &u));
        assert!(tab.is_subtype(&Type::Str, &u));
        assert!(tab.is_subtype(&u, &Type::Any));
        assert!(!tab.is_subtype(&u, &Type::Int));
    }

    /// A generous growth plan for tests that don't exercise overflow.
    fn roomy_growth(start: u32, capacity: u32) -> ShardGrowth {
        ShardGrowth {
            next_start: start + capacity,
            step: capacity,
            capacity,
        }
    }

    #[test]
    fn worker_fork_and_adopt_round_trip() {
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let base_len = tab.id_ceiling();

        // Run 1: worker creates a shard symbol and mutates a base symbol.
        let mut fork = tab.fork_for_worker(base_len + 100, 50, roomy_growth(base_len + 150, 50));
        let c = fork.new_class(
            pkg,
            Name::from("W1"),
            Flags::EMPTY,
            vec![Type::AnyRef],
            vec![],
        );
        assert_eq!(c.index(), base_len + 100, "shard ids start at the carve");
        fork.sym_mut(pkg).flags |= Flags::SYNTHETIC;
        tab.adopt(fork.into_delta());
        assert_eq!(tab.sym(c).name, Name::from("W1"), "shard adopted verbatim");
        assert!(
            tab.sym(pkg).flags.is(Flags::SYNTHETIC),
            "base mutation merged"
        );
        assert!(tab.sym(pkg).decls.contains(&c), "owner decls append merged");
        assert!(tab.ids().any(|i| i == c), "ids() covers adopted shards");

        // Run 2: a later fork mutates the symbol that lives in run 1's
        // adopted shard — the overlay must carry it back (regression:
        // adopted-shard mutations were once silently dropped at merge).
        let start2 = tab.id_ceiling() + 100;
        let mut fork2 = tab.fork_for_worker(start2, 50, roomy_growth(start2, 50));
        fork2.sym_mut(c).flags |= Flags::LIFTED;
        tab.adopt(fork2.into_delta());
        assert!(
            tab.sym(c).flags.is(Flags::LIFTED),
            "adopted-shard mutation survives the merge"
        );
    }

    #[test]
    fn fork_is_copy_on_write_not_a_deep_copy() {
        // Build a base table with a few thousand symbols so a deep copy
        // would be unmistakable, then assert the fork copies *nothing*: it
        // aliases the same frozen arena (pointer equality), and stays
        // aliased until it actually mutates a pre-fork symbol.
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        for i in 0..4000 {
            tab.new_term(pkg, Name::intern(&format!("t{i}")), Flags::EMPTY, Type::Int);
        }
        let start = tab.id_ceiling() + 10;
        let fork = tab.fork_for_worker(start, 100, roomy_growth(start + 100, 100));
        assert!(
            fork.base_shared_with(&tab),
            "fork must alias the origin's base arena, not copy it"
        );

        // Reads don't break sharing; writes to pre-fork symbols go to the
        // overlay, also without touching the shared base.
        let mut fork = fork;
        let probe = SymbolId::from_index(5);
        let before = fork.sym(probe).flags;
        fork.sym_mut(probe).flags |= Flags::SYNTHETIC;
        assert!(
            fork.base_shared_with(&tab),
            "COW overlay keeps the base shared"
        );
        assert_eq!(
            tab.sym(probe).flags,
            before,
            "origin never sees fork writes"
        );
        assert!(fork.sym(probe).flags.is(Flags::SYNTHETIC));

        // The origin resumes cheap in-place mutation after the fork dies.
        tab.adopt(fork.into_delta());
        assert!(tab.sym(probe).flags.is(Flags::SYNTHETIC), "merge lands");
    }

    #[test]
    fn shard_exhaustion_chains_overflow_instead_of_panicking() {
        // Regression: a chunk allocating more than its primary shard's
        // capacity used to abort the whole compile with a hard
        // `worker symbol shard overflow` assert. It must now chain
        // overflow shards with globally unique ids.
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let start = tab.id_ceiling();
        // Deliberately tiny stride: primary holds 3, each overflow holds 3,
        // and the interleaved step leaves room for a sibling fork.
        let mut fork = tab.fork_for_worker(
            start,
            3,
            ShardGrowth {
                next_start: start + 6,
                step: 6,
                capacity: 3,
            },
        );
        let made: Vec<SymbolId> = (0..11)
            .map(|i| {
                fork.new_term(
                    pkg,
                    Name::intern(&format!("ov{i}")),
                    Flags::EMPTY,
                    Type::Int,
                )
            })
            .collect();
        // All ids unique and all resolvable in the fork.
        let mut sorted = made.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), made.len(), "chained ids stay unique");
        for (i, id) in made.iter().enumerate() {
            assert_eq!(fork.sym(*id).name, Name::intern(&format!("ov{i}")));
        }

        // The merge adopts every chained shard; the origin resolves all of
        // them and `ids()` stays strictly ascending.
        tab.adopt(fork.into_delta());
        for (i, id) in made.iter().enumerate() {
            assert_eq!(tab.sym(*id).name, Name::intern(&format!("ov{i}")));
        }
        let ids: Vec<u32> = tab.ids().map(SymbolId::index).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids() ascending after adopting chained shards"
        );
        assert!(
            tab.id_ceiling() > made.iter().map(|s| s.index()).max().unwrap(),
            "ceiling covers overflow shards"
        );
    }
}
