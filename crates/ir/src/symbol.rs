//! Symbols and the symbol table.
//!
//! Symbols are unique identifiers for definitions — classes, methods, fields,
//! parameters, locals — exactly as in the paper (§2). The [`SymbolTable`] is
//! an arena indexed by [`SymbolId`]; it also owns the class hierarchy and
//! therefore hosts the hierarchy-dependent type operations: subtyping, least
//! upper bounds, linearization, member lookup and erasure.

use crate::flags::Flags;
use crate::names::{std_names, Name};
use crate::span::Span;
use crate::types::Type;
use std::fmt;

/// A compact handle identifying one definition.
///
/// `SymbolId::NONE` is the null symbol, used for not-yet-resolved references.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The null symbol.
    pub const NONE: SymbolId = SymbolId(0);

    /// True if this is the null symbol.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True if this refers to an actual definition.
    pub fn exists(self) -> bool {
        self.0 != 0
    }

    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index (for dense side tables and tests).
    pub fn from_index(i: u32) -> SymbolId {
        SymbolId(i)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// What sort of definition a symbol names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymKind {
    /// A term definition: `val`, `var`, `def`, parameter, local.
    Term,
    /// A class or trait.
    Class,
    /// A package.
    Package,
    /// A type parameter.
    TypeParam,
    /// A jump label (introduced by `TailRec` / `PatternMatcher`).
    Label,
}

/// The data stored for one symbol.
#[derive(Clone, Debug)]
pub struct SymbolData {
    /// The definition's name.
    pub name: Name,
    /// Property flags.
    pub flags: Flags,
    /// The enclosing definition.
    pub owner: SymbolId,
    /// The sort of definition.
    pub kind: SymKind,
    /// The symbol's type: a method type for `def`s, the value type for
    /// `val`s. `NoType` for packages.
    pub info: Type,
    /// Source location of the definition.
    pub span: Span,
    /// Class only: parent types, superclass first.
    pub parents: Vec<Type>,
    /// Class/package only: member symbols in declaration order.
    pub decls: Vec<SymbolId>,
    /// Class only: type parameters.
    pub tparams: Vec<SymbolId>,
}

/// Well-known symbols created at table construction.
#[derive(Clone, Copy, Debug)]
pub struct Builtins {
    /// The root package.
    pub root_pkg: SymbolId,
    /// A pseudo-class holding the universal members of `Any`
    /// (`equals`, `toString`, `getClass`).
    pub any_class: SymbolId,
    /// `equals(that: Any): Boolean` on `Any`.
    pub equals_meth: SymbolId,
    /// `toString(): String` on `Any`.
    pub to_string_meth: SymbolId,
    /// `getClass(): String` on `Any` (returns the runtime class name).
    pub get_class_meth: SymbolId,
    /// `println(x: Any): Unit`, the single built-in I/O primitive.
    pub println_fn: SymbolId,
    /// `Function0` .. `Function3` classes.
    pub function_classes: [SymbolId; 4],
}

/// The arena of all symbols plus hierarchy-dependent type operations.
///
/// # Examples
///
/// ```
/// use mini_ir::{Flags, Name, SymKind, SymbolTable, Type};
/// let mut tab = SymbolTable::new();
/// let owner = tab.builtins().root_pkg;
/// let c = tab.new_class(owner, Name::from("C"), Flags::EMPTY, vec![Type::AnyRef], vec![]);
/// assert!(tab.is_subtype(&tab.class_type(c), &Type::AnyRef));
/// ```
pub struct SymbolTable {
    syms: Vec<SymbolData>,
    builtins: Builtins,
}

impl SymbolTable {
    /// Creates a table pre-populated with the built-in definitions.
    pub fn new() -> SymbolTable {
        let mut tab = SymbolTable {
            syms: vec![SymbolData {
                // Index 0 is the NONE sentinel.
                name: std_names::root_pkg(),
                flags: Flags::EMPTY,
                owner: SymbolId::NONE,
                kind: SymKind::Package,
                info: Type::NoType,
                span: Span::SYNTHETIC,
                parents: Vec::new(),
                decls: Vec::new(),
                tparams: Vec::new(),
            }],
            builtins: Builtins {
                root_pkg: SymbolId::NONE,
                any_class: SymbolId::NONE,
                equals_meth: SymbolId::NONE,
                to_string_meth: SymbolId::NONE,
                get_class_meth: SymbolId::NONE,
                println_fn: SymbolId::NONE,
                function_classes: [SymbolId::NONE; 4],
            },
        };
        let root = tab.alloc(SymbolData {
            name: std_names::root_pkg(),
            flags: Flags::PACKAGE,
            owner: SymbolId::NONE,
            kind: SymKind::Package,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        });
        tab.builtins.root_pkg = root;

        // `Any`'s universal members live on a pseudo-class.
        let any_class = tab.new_class(root, std_names::any(), Flags::SYNTHETIC, vec![], vec![]);
        let equals_meth = tab.new_term(
            any_class,
            std_names::equals(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![Type::Any]],
                ret: Box::new(Type::Boolean),
            },
        );
        let to_string_meth = tab.new_term(
            any_class,
            std_names::to_string(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Str),
            },
        );
        let get_class_meth = tab.new_term(
            any_class,
            std_names::get_class(),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![]],
                ret: Box::new(Type::Str),
            },
        );
        let println_fn = tab.new_term(
            root,
            std_names::println(),
            Flags::METHOD | Flags::SYNTHETIC,
            Type::Method {
                params: vec![vec![Type::Any]],
                ret: Box::new(Type::Unit),
            },
        );

        // Function0..Function3 with their `apply` methods.
        let mut function_classes = [SymbolId::NONE; 4];
        for (n, slot) in function_classes.iter_mut().enumerate() {
            let cls_name = Name::intern(&format!("Function{n}"));
            let cls = tab.new_class(
                root,
                cls_name,
                Flags::TRAIT | Flags::SYNTHETIC,
                vec![Type::AnyRef],
                vec![],
            );
            let mut tparams = Vec::new();
            for i in 0..n {
                let tp = tab.alloc(SymbolData {
                    name: Name::intern(&format!("T{}", i + 1)),
                    flags: Flags::TYPE_PARAM,
                    owner: cls,
                    kind: SymKind::TypeParam,
                    info: Type::Any,
                    span: Span::SYNTHETIC,
                    parents: Vec::new(),
                    decls: Vec::new(),
                    tparams: Vec::new(),
                });
                tparams.push(tp);
            }
            let r = tab.alloc(SymbolData {
                name: Name::intern("R"),
                flags: Flags::TYPE_PARAM,
                owner: cls,
                kind: SymKind::TypeParam,
                info: Type::Any,
                span: Span::SYNTHETIC,
                parents: Vec::new(),
                decls: Vec::new(),
                tparams: Vec::new(),
            });
            let apply_info = Type::Method {
                params: vec![tparams.iter().map(|&tp| Type::TypeParam(tp)).collect()],
                ret: Box::new(Type::TypeParam(r)),
            };
            tab.new_term(
                cls,
                std_names::apply(),
                Flags::METHOD | Flags::DEFERRED,
                apply_info,
            );
            let mut all_tparams = tparams;
            all_tparams.push(r);
            tab.sym_mut(cls).tparams = all_tparams;
            *slot = cls;
        }

        tab.builtins = Builtins {
            root_pkg: root,
            any_class,
            equals_meth,
            to_string_meth,
            get_class_meth,
            println_fn,
            function_classes,
        };
        tab
    }

    /// The well-known symbols.
    pub fn builtins(&self) -> &Builtins {
        &self.builtins
    }

    /// Total number of symbols allocated (including builtins).
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if only the sentinel exists (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.syms.len() <= 1
    }

    fn alloc(&mut self, data: SymbolData) -> SymbolId {
        let id = SymbolId(self.syms.len() as u32);
        let owner = data.owner;
        self.syms.push(data);
        if owner.exists() {
            self.syms[owner.0 as usize].decls.push(id);
        }
        id
    }

    /// Creates a new term symbol (val/var/def/param/local) owned by `owner`
    /// and enters it into the owner's declarations.
    pub fn new_term(&mut self, owner: SymbolId, name: Name, flags: Flags, info: Type) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags,
            owner,
            kind: SymKind::Term,
            info,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a new class (or trait, if `flags` contains `TRAIT`).
    pub fn new_class(
        &mut self,
        owner: SymbolId,
        name: Name,
        flags: Flags,
        parents: Vec<Type>,
        tparams: Vec<SymbolId>,
    ) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags,
            owner,
            kind: SymKind::Class,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents,
            decls: Vec::new(),
            tparams,
        })
    }

    /// Creates a type-parameter symbol owned by `owner`.
    pub fn new_type_param(&mut self, owner: SymbolId, name: Name) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::TYPE_PARAM,
            owner,
            kind: SymKind::TypeParam,
            info: Type::Any,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a label symbol for jumps.
    pub fn new_label(&mut self, owner: SymbolId, name: Name, info: Type) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::LABEL | Flags::SYNTHETIC,
            owner,
            kind: SymKind::Label,
            info,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Creates a package symbol.
    pub fn new_package(&mut self, owner: SymbolId, name: Name) -> SymbolId {
        self.alloc(SymbolData {
            name,
            flags: Flags::PACKAGE,
            owner,
            kind: SymKind::Package,
            info: Type::NoType,
            span: Span::SYNTHETIC,
            parents: Vec::new(),
            decls: Vec::new(),
            tparams: Vec::new(),
        })
    }

    /// Read access to a symbol's data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `NONE` or out of range.
    pub fn sym(&self, id: SymbolId) -> &SymbolData {
        assert!(id.exists(), "dereferencing SymbolId::NONE");
        &self.syms[id.0 as usize]
    }

    /// Mutable access to a symbol's data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `NONE` or out of range.
    pub fn sym_mut(&mut self, id: SymbolId) -> &mut SymbolData {
        assert!(id.exists(), "dereferencing SymbolId::NONE");
        &mut self.syms[id.0 as usize]
    }

    /// The monomorphic class type of `cls` (empty type arguments).
    pub fn class_type(&self, cls: SymbolId) -> Type {
        Type::Class {
            sym: cls,
            targs: Vec::new(),
        }
    }

    /// The fully-applied class type of `cls` with its own type parameters as
    /// arguments (the "this type" for checking purposes).
    pub fn self_type(&self, cls: SymbolId) -> Type {
        let tps = &self.sym(cls).tparams;
        Type::Class {
            sym: cls,
            targs: tps.iter().map(|&t| Type::TypeParam(t)).collect(),
        }
    }

    /// The chain of owners from `sym` (exclusive) to the root.
    pub fn owner_chain(&self, sym: SymbolId) -> Vec<SymbolId> {
        let mut out = Vec::new();
        let mut cur = self.sym(sym).owner;
        while cur.exists() {
            out.push(cur);
            cur = self.sym(cur).owner;
        }
        out
    }

    /// The innermost enclosing class of `sym` (or `NONE`).
    pub fn enclosing_class(&self, sym: SymbolId) -> SymbolId {
        let mut cur = sym;
        while cur.exists() {
            if self.sym(cur).kind == SymKind::Class {
                return cur;
            }
            cur = self.sym(cur).owner;
        }
        SymbolId::NONE
    }

    /// Class linearization: the class itself followed by all base classes,
    /// traits linearized right-to-left, duplicates keeping the first
    /// occurrence.
    pub fn linearization(&self, cls: SymbolId) -> Vec<SymbolId> {
        let mut out = vec![cls];
        let parents: Vec<SymbolId> = self
            .sym(cls)
            .parents
            .iter()
            .filter_map(|p| p.class_sym())
            .collect();
        for p in parents.iter().rev() {
            for s in self.linearization(*p) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// True if `sub` is `sup` or inherits from it (symbol level).
    pub fn is_subclass(&self, sub: SymbolId, sup: SymbolId) -> bool {
        self.linearization(sub).contains(&sup)
    }

    /// The instantiation of base class `target` as seen from class type `t`,
    /// or `None` if `t` does not derive from `target`.
    pub fn base_type(&self, t: &Type, target: SymbolId) -> Option<Type> {
        match t {
            Type::Class { sym, targs } => {
                if *sym == target {
                    return Some(t.clone());
                }
                let data = self.sym(*sym);
                let tparams = data.tparams.clone();
                for parent in data.parents.clone() {
                    let seen = parent.subst(&tparams, targs);
                    if let Some(bt) = self.base_type(&seen, target) {
                        return Some(bt);
                    }
                }
                None
            }
            Type::Function { params, ret } => {
                let n = params.len();
                if n < self.builtins.function_classes.len() {
                    let cls = self.builtins.function_classes[n];
                    let mut targs = params.clone();
                    targs.push((**ret).clone());
                    self.base_type(&Type::Class { sym: cls, targs }, target)
                } else {
                    None
                }
            }
            Type::TermRef(s) => self.base_type(&self.widen(t.clone()), target).or_else(|| {
                let _ = s;
                None
            }),
            _ => None,
        }
    }

    /// Widens singleton types to their underlying type.
    pub fn widen(&self, t: Type) -> Type {
        match t {
            Type::TermRef(s) => {
                let info = self.sym(s).info.clone();
                self.widen(info)
            }
            other => other,
        }
    }

    /// Structural subtyping with nominal class subtyping (invariant type
    /// arguments, contravariant function parameters).
    pub fn is_subtype(&self, a: &Type, b: &Type) -> bool {
        if a == b {
            return true;
        }
        match (a, b) {
            (Type::Error, _) | (_, Type::Error) => true,
            (_, Type::Any) => true,
            (Type::Nothing, _) => true,
            (Type::Null, t) if t.is_ref_like() => true,
            (Type::TermRef(_), _) => self.is_subtype(&self.widen(a.clone()), b),
            (_, Type::AnyRef) if a.is_ref_like() => true,
            (Type::Or(x, y), _) => self.is_subtype(x, b) && self.is_subtype(y, b),
            (_, Type::Or(x, y)) => self.is_subtype(a, x) || self.is_subtype(a, y),
            (Type::Class { .. }, Type::Class { sym: bs, targs: bt }) => {
                match self.base_type(a, *bs) {
                    Some(Type::Class { targs: at, .. }) => at == *bt,
                    _ => false,
                }
            }
            (Type::Function { .. }, Type::Class { sym: bs, .. }) => match self.base_type(a, *bs) {
                Some(Type::Class { targs: at, .. }) => {
                    // Compare against the base instance; invariant args.
                    match self.base_type(a, *bs) {
                        Some(Type::Class { targs, .. }) => targs == at,
                        _ => false,
                    }
                }
                _ => false,
            },
            (
                Type::Function {
                    params: pa,
                    ret: ra,
                },
                Type::Function {
                    params: pb,
                    ret: rb,
                },
            ) => {
                pa.len() == pb.len()
                    && pb
                        .iter()
                        .zip(pa.iter())
                        .all(|(b_p, a_p)| self.is_subtype(b_p, a_p))
                    && self.is_subtype(ra, rb)
            }
            (Type::Array(ea), Type::Array(eb)) => ea == eb,
            (Type::ByName(x), Type::ByName(y)) => self.is_subtype(x, y),
            (Type::ByName(x), _) => self.is_subtype(x, b),
            (Type::Repeated(x), Type::Repeated(y)) => self.is_subtype(x, y),
            _ => false,
        }
    }

    /// Least upper bound, approximated: exact when one side subsumes the
    /// other; otherwise the most specific common base class, falling back to
    /// `AnyRef`/`Any`.
    pub fn lub(&self, a: &Type, b: &Type) -> Type {
        if self.is_subtype(a, b) {
            return b.clone();
        }
        if self.is_subtype(b, a) {
            return a.clone();
        }
        let wa = self.widen(a.clone());
        let wb = self.widen(b.clone());
        if let (Type::Class { sym: sa, .. }, Type::Class { .. }) = (&wa, &wb) {
            for base in self.linearization(*sa) {
                if let Some(bt) = self.base_type(&wa, base) {
                    if self.is_subtype(&wb, &bt) {
                        return bt;
                    }
                }
            }
        }
        if wa.is_ref_like() && wb.is_ref_like() {
            Type::AnyRef
        } else {
            Type::Any
        }
    }

    /// Type erasure (the `Erasure` phase's type map):
    /// * type parameters erase to `Any`;
    /// * class types lose their type arguments;
    /// * function types erase to the corresponding `FunctionN` class;
    /// * by-name types erase to `Function0`;
    /// * repeated types erase to arrays;
    /// * polymorphic methods lose their binders;
    /// * union members erase to their join.
    pub fn erase(&self, t: &Type) -> Type {
        match t {
            Type::TypeParam(_) => Type::Any,
            Type::TermRef(_) => self.erase(&self.widen(t.clone())),
            Type::Class { sym, .. } => Type::Class {
                sym: *sym,
                targs: Vec::new(),
            },
            Type::Function { params, .. } => {
                let n = params.len().min(self.builtins.function_classes.len() - 1);
                Type::Class {
                    sym: self.builtins.function_classes[n],
                    targs: Vec::new(),
                }
            }
            Type::ByName(_) => Type::Class {
                sym: self.builtins.function_classes[0],
                targs: Vec::new(),
            },
            Type::Repeated(e) => Type::Array(Box::new(self.erase(e))),
            Type::Array(e) => Type::Array(Box::new(self.erase(e))),
            Type::Method { params, ret } => {
                let flat: Vec<Type> = params.iter().flatten().map(|p| self.erase(p)).collect();
                Type::Method {
                    params: vec![flat],
                    ret: Box::new(self.erase(ret)),
                }
            }
            Type::Poly { underlying, .. } => self.erase(underlying),
            Type::Or(x, y) => {
                let ex = self.erase(x);
                let ey = self.erase(y);
                if ex == ey {
                    ex
                } else if ex.is_ref_like() && ey.is_ref_like() {
                    self.lub(&ex, &ey)
                } else {
                    Type::Any
                }
            }
            other => other.clone(),
        }
    }

    /// Looks up a declaration of `name` directly in `owner`.
    pub fn decl(&self, owner: SymbolId, name: Name) -> Option<SymbolId> {
        self.sym(owner)
            .decls
            .iter()
            .copied()
            .find(|&d| self.sym(d).name == name)
    }

    /// Member lookup on a type: walks the linearization of the underlying
    /// class and returns the first member named `name` together with its info
    /// *as seen from* `t` (type arguments substituted).
    pub fn member(&self, t: &Type, name: Name) -> Option<(SymbolId, Type)> {
        match t {
            Type::TermRef(_) => self.member(&self.widen(t.clone()), name),
            Type::Class { sym, .. } => {
                for base in self.linearization(*sym) {
                    if let Some(d) = self.decl(base, name) {
                        let info = self.sym(d).info.clone();
                        let seen = match self.base_type(t, base) {
                            Some(Type::Class { targs, .. }) => {
                                let tps = self.sym(base).tparams.clone();
                                if tps.len() == targs.len() {
                                    info.subst(&tps, &targs)
                                } else {
                                    info
                                }
                            }
                            _ => info,
                        };
                        return Some((d, seen));
                    }
                }
                self.universal_member(name)
            }
            Type::Function { params, ret } => {
                let n = params.len();
                if n < self.builtins.function_classes.len() {
                    let mut targs = params.clone();
                    targs.push((**ret).clone());
                    self.member(
                        &Type::Class {
                            sym: self.builtins.function_classes[n],
                            targs,
                        },
                        name,
                    )
                } else {
                    None
                }
            }
            Type::Any
            | Type::AnyRef
            | Type::Int
            | Type::Boolean
            | Type::Unit
            | Type::Str
            | Type::Array(_) => self.universal_member(name),
            Type::Or(x, _) => {
                // Selections on union types are the Splitter phase's business;
                // for lookup we use the left member (checked symmetric by the
                // typer).
                self.member(x, name)
            }
            _ => None,
        }
    }

    fn universal_member(&self, name: Name) -> Option<(SymbolId, Type)> {
        self.decl(self.builtins.any_class, name)
            .map(|d| (d, self.sym(d).info.clone()))
    }

    /// The member of a parent class that `m` (a member of `cls`) overrides,
    /// if any: same name, same number of value parameters.
    pub fn overridden(&self, cls: SymbolId, m: SymbolId) -> Option<SymbolId> {
        let md = self.sym(m);
        let nparams = md.info.param_count();
        for base in self.linearization(cls).into_iter().skip(1) {
            if let Some(d) = self.decl(base, md.name) {
                if self.sym(d).info.param_count() == nparams {
                    return Some(d);
                }
            }
        }
        None
    }

    /// All symbols whose owner is `owner` (snapshot).
    pub fn decls_of(&self, owner: SymbolId) -> Vec<SymbolId> {
        self.sym(owner).decls.clone()
    }

    /// Human-readable qualified name for diagnostics.
    pub fn full_name(&self, sym: SymbolId) -> String {
        if !sym.exists() {
            return "<none>".to_owned();
        }
        let mut parts = vec![self.sym(sym).name.as_str().to_owned()];
        for o in self.owner_chain(sym) {
            if o == self.builtins.root_pkg || !o.exists() {
                break;
            }
            parts.push(self.sym(o).name.as_str().to_owned());
        }
        parts.reverse();
        parts.join(".")
    }
}

impl Default for SymbolTable {
    fn default() -> SymbolTable {
        SymbolTable::new()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.syms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (SymbolTable, SymbolId, SymbolId, SymbolId) {
        // trait A; class B extends A; class C extends B
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let a = tab.new_class(
            pkg,
            Name::from("A"),
            Flags::TRAIT,
            vec![Type::AnyRef],
            vec![],
        );
        let b = {
            let at = tab.class_type(a);
            tab.new_class(pkg, Name::from("B"), Flags::EMPTY, vec![at], vec![])
        };
        let c = {
            let bt = tab.class_type(b);
            tab.new_class(pkg, Name::from("C"), Flags::EMPTY, vec![bt], vec![])
        };
        (tab, a, b, c)
    }

    #[test]
    fn linearization_orders_self_first() {
        let (tab, a, b, c) = fixture();
        let lin = tab.linearization(c);
        assert_eq!(lin[0], c);
        assert!(lin.contains(&b));
        assert!(lin.contains(&a));
        let pos = |s| lin.iter().position(|&x| x == s).unwrap();
        assert!(pos(c) < pos(b) && pos(b) < pos(a));
    }

    #[test]
    fn subclass_and_subtype_follow_parents() {
        let (tab, a, _b, c) = fixture();
        assert!(tab.is_subclass(c, a));
        assert!(!tab.is_subclass(a, c));
        assert!(tab.is_subtype(&tab.class_type(c), &tab.class_type(a)));
        assert!(tab.is_subtype(&tab.class_type(c), &Type::AnyRef));
        assert!(tab.is_subtype(&tab.class_type(c), &Type::Any));
        assert!(!tab.is_subtype(&Type::Int, &Type::AnyRef));
    }

    #[test]
    fn generic_base_type_substitutes_args() {
        // class Box[T]; class IntBox extends Box[Int]
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let box_cls = tab.new_class(
            pkg,
            Name::from("Box"),
            Flags::EMPTY,
            vec![Type::AnyRef],
            vec![],
        );
        let t = tab.new_type_param(box_cls, Name::from("T"));
        tab.sym_mut(box_cls).tparams = vec![t];
        let int_box = tab.new_class(
            pkg,
            Name::from("IntBox"),
            Flags::EMPTY,
            vec![Type::Class {
                sym: box_cls,
                targs: vec![Type::Int],
            }],
            vec![],
        );
        let bt = tab
            .base_type(&tab.class_type(int_box), box_cls)
            .expect("IntBox derives Box");
        assert_eq!(
            bt,
            Type::Class {
                sym: box_cls,
                targs: vec![Type::Int]
            }
        );
        // Member as seen from IntBox substitutes T := Int.
        let v = tab.new_term(
            box_cls,
            Name::from("value"),
            Flags::EMPTY,
            Type::TypeParam(t),
        );
        let (found, seen) = tab
            .member(&tab.class_type(int_box), Name::from("value"))
            .unwrap();
        assert_eq!(found, v);
        assert_eq!(seen, Type::Int);
    }

    #[test]
    fn lub_finds_common_base() {
        let (tab, a, b, c) = fixture();
        let l = tab.lub(&tab.class_type(c), &tab.class_type(b));
        assert_eq!(l, tab.class_type(b));
        let l2 = tab.lub(&tab.class_type(c), &tab.class_type(a));
        assert_eq!(l2, tab.class_type(a));
        assert_eq!(tab.lub(&Type::Int, &Type::Str), Type::Any);
        assert_eq!(tab.lub(&Type::Nothing, &Type::Int), Type::Int);
    }

    #[test]
    fn erasure_produces_erased_types() {
        let mut tab = SymbolTable::new();
        let pkg = tab.builtins().root_pkg;
        let cls = tab.new_class(
            pkg,
            Name::from("Box"),
            Flags::EMPTY,
            vec![Type::AnyRef],
            vec![],
        );
        let t = tab.new_type_param(cls, Name::from("T"));
        tab.sym_mut(cls).tparams = vec![t];
        let generic = Type::Class {
            sym: cls,
            targs: vec![Type::Int],
        };
        assert!(tab.erase(&generic).is_erased());
        let f = Type::Function {
            params: vec![Type::Int],
            ret: Box::new(Type::Boolean),
        };
        let ef = tab.erase(&f);
        assert_eq!(ef.class_sym(), Some(tab.builtins().function_classes[1]));
        let m = Type::Method {
            params: vec![vec![Type::TypeParam(t)], vec![Type::Int]],
            ret: Box::new(Type::Repeated(Box::new(Type::TypeParam(t)))),
        };
        let em = tab.erase(&m);
        assert!(em.is_erased(), "{em}");
        assert_eq!(em.param_lists().len(), 1);
    }

    #[test]
    fn function_types_subtype_function_classes() {
        let tab = SymbolTable::new();
        let f1 = Type::Function {
            params: vec![Type::Int],
            ret: Box::new(Type::Boolean),
        };
        let cls = Type::Class {
            sym: tab.builtins().function_classes[1],
            targs: vec![Type::Int, Type::Boolean],
        };
        assert!(tab.is_subtype(&f1, &cls));
        let apply = tab.member(&f1, std_names::apply()).expect("apply member");
        assert_eq!(
            apply.1,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Boolean)
            }
        );
    }

    #[test]
    fn overridden_member_is_found() {
        let (mut tab, a, _b, c) = fixture();
        let base_m = tab.new_term(
            a,
            Name::from("m"),
            Flags::METHOD,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Int),
            },
        );
        let sub_m = tab.new_term(
            c,
            Name::from("m"),
            Flags::METHOD | Flags::OVERRIDE,
            Type::Method {
                params: vec![vec![Type::Int]],
                ret: Box::new(Type::Int),
            },
        );
        assert_eq!(tab.overridden(c, sub_m), Some(base_m));
    }

    #[test]
    fn full_name_walks_owners() {
        let (tab, _a, _b, c) = fixture();
        assert_eq!(tab.full_name(c), "C");
        assert_eq!(tab.full_name(SymbolId::NONE), "<none>");
    }

    #[test]
    fn union_subtyping() {
        let tab = SymbolTable::new();
        let u = Type::Or(Box::new(Type::Int), Box::new(Type::Str));
        assert!(tab.is_subtype(&Type::Int, &u));
        assert!(tab.is_subtype(&Type::Str, &u));
        assert!(tab.is_subtype(&u, &Type::Any));
        assert!(!tab.is_subtype(&u, &Type::Int));
    }
}
