//! The MiniScala type representation.
//!
//! Types both describe values and, via [`Type::TermRef`], act as references
//! to program definitions (the paper's "singleton types" generalization).
//! Subtyping, least upper bounds and member lookup need the class hierarchy,
//! so those operations live on [`crate::SymbolTable`]; this module holds the
//! representation and the context-free operations (erasure structure,
//! substitution, widening).

use crate::symbol::SymbolId;
use std::fmt;

/// A MiniScala type.
///
/// # Examples
///
/// ```
/// use mini_ir::Type;
/// let t = Type::Function {
///     params: vec![Type::Int],
///     ret: Box::new(Type::Boolean),
/// };
/// assert!(t.is_function());
/// assert!(!Type::Int.is_ref_like());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Type {
    /// Absence of a type; trees before the typer, and `checkNoOrphanTypes`'
    /// target after it.
    #[default]
    NoType,
    /// A type produced from an erroneous program; absorbs further errors.
    Error,
    /// Top type.
    Any,
    /// Top of the reference types.
    AnyRef,
    /// Bottom type.
    Nothing,
    /// Type of `null`.
    Null,
    /// The unit type.
    Unit,
    /// 64-bit integers.
    Int,
    /// Booleans.
    Boolean,
    /// Built-in strings.
    Str,
    /// A (possibly generic) class or trait type `C[T1, ..., Tn]`.
    Class {
        /// The class symbol.
        sym: SymbolId,
        /// Type arguments; empty for monomorphic classes.
        targs: Vec<Type>,
    },
    /// A reference to a type parameter.
    TypeParam(SymbolId),
    /// Singleton type of a stable term — a reference to a definition.
    TermRef(SymbolId),
    /// The type of a method, with one entry in `params` per parameter list
    /// (MiniScala methods may be curried until `FirstTransform` flattens
    /// them).
    Method {
        /// Parameter types per parameter list.
        params: Vec<Vec<Type>>,
        /// Result type.
        ret: Box<Type>,
    },
    /// The type of a polymorphic method `[T1, ..., Tn](...)R`.
    Poly {
        /// The bound type parameters.
        tparams: Vec<SymbolId>,
        /// The underlying (usually method) type mentioning them.
        underlying: Box<Type>,
    },
    /// A by-name parameter type `=> T`; eliminated by `ElimByName`.
    ByName(Box<Type>),
    /// A repeated parameter type `T*`; eliminated by `ElimRepeated`.
    Repeated(Box<Type>),
    /// An array type.
    Array(Box<Type>),
    /// A function type `(T1, ..., Tn) => R`; a shorthand for `FunctionN`.
    Function {
        /// Parameter types.
        params: Vec<Type>,
        /// Result type.
        ret: Box<Type>,
    },
    /// A union type `A | B` (used by the optional `Splitter` extension).
    Or(Box<Type>, Box<Type>),
}

impl Type {
    /// True for types that are represented as heap references at runtime.
    pub fn is_ref_like(&self) -> bool {
        matches!(
            self,
            Type::AnyRef
                | Type::Null
                | Type::Str
                | Type::Class { .. }
                | Type::Array(_)
                | Type::Function { .. }
                | Type::Or(..)
        )
    }

    /// True for primitive value types.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Type::Int | Type::Boolean | Type::Unit)
    }

    /// True if this is a method or polymorphic method type.
    pub fn is_method_like(&self) -> bool {
        matches!(self, Type::Method { .. } | Type::Poly { .. })
    }

    /// True if this is a function (closure) type.
    pub fn is_function(&self) -> bool {
        matches!(self, Type::Function { .. })
    }

    /// True if `NoType` or `Error`.
    pub fn is_missing(&self) -> bool {
        matches!(self, Type::NoType | Type::Error)
    }

    /// The class symbol, if this is a class type.
    pub fn class_sym(&self) -> Option<SymbolId> {
        match self {
            Type::Class { sym, .. } => Some(*sym),
            _ => None,
        }
    }

    /// For method types: the final (uncurried) result after all parameter
    /// lists. For other types, the type itself.
    pub fn final_result(&self) -> &Type {
        match self {
            Type::Method { ret, .. } => ret.final_result(),
            Type::Poly { underlying, .. } => underlying.final_result(),
            _ => self,
        }
    }

    /// The parameter lists of a method type (empty for non-methods).
    pub fn param_lists(&self) -> &[Vec<Type>] {
        match self {
            Type::Method { params, .. } => params,
            Type::Poly { underlying, .. } => underlying.param_lists(),
            _ => &[],
        }
    }

    /// Strips `ByName` and `Repeated` wrappers one level.
    pub fn strip_param_wrappers(&self) -> &Type {
        match self {
            Type::ByName(t) | Type::Repeated(t) => t,
            _ => self,
        }
    }

    /// Substitutes type parameters `from[i] -> to[i]` throughout.
    ///
    /// # Panics
    ///
    /// Panics if `from` and `to` have different lengths.
    pub fn subst(&self, from: &[SymbolId], to: &[Type]) -> Type {
        assert_eq!(from.len(), to.len(), "subst arity mismatch");
        if from.is_empty() {
            return self.clone();
        }
        match self {
            Type::TypeParam(s) => {
                for (i, f) in from.iter().enumerate() {
                    if f == s {
                        return to[i].clone();
                    }
                }
                self.clone()
            }
            Type::Class { sym, targs } => Type::Class {
                sym: *sym,
                targs: targs.iter().map(|t| t.subst(from, to)).collect(),
            },
            Type::Method { params, ret } => Type::Method {
                params: params
                    .iter()
                    .map(|ps| ps.iter().map(|p| p.subst(from, to)).collect())
                    .collect(),
                ret: Box::new(ret.subst(from, to)),
            },
            Type::Poly {
                tparams,
                underlying,
            } => {
                // Inner binders shadow outer substitutions.
                let keep: Vec<usize> = (0..from.len())
                    .filter(|&i| !tparams.contains(&from[i]))
                    .collect();
                let f2: Vec<SymbolId> = keep.iter().map(|&i| from[i]).collect();
                let t2: Vec<Type> = keep.iter().map(|&i| to[i].clone()).collect();
                Type::Poly {
                    tparams: tparams.clone(),
                    underlying: Box::new(underlying.subst(&f2, &t2)),
                }
            }
            Type::ByName(t) => Type::ByName(Box::new(t.subst(from, to))),
            Type::Repeated(t) => Type::Repeated(Box::new(t.subst(from, to))),
            Type::Array(t) => Type::Array(Box::new(t.subst(from, to))),
            Type::Function { params, ret } => Type::Function {
                params: params.iter().map(|p| p.subst(from, to)).collect(),
                ret: Box::new(ret.subst(from, to)),
            },
            Type::Or(a, b) => Type::Or(Box::new(a.subst(from, to)), Box::new(b.subst(from, to))),
            _ => self.clone(),
        }
    }

    /// True if the type mentions any of the given type parameters.
    pub fn mentions(&self, tparams: &[SymbolId]) -> bool {
        match self {
            Type::TypeParam(s) => tparams.contains(s),
            Type::Class { targs, .. } => targs.iter().any(|t| t.mentions(tparams)),
            Type::Method { params, ret } => {
                params.iter().flatten().any(|t| t.mentions(tparams)) || ret.mentions(tparams)
            }
            Type::Poly { underlying, .. } => underlying.mentions(tparams),
            Type::ByName(t) | Type::Repeated(t) | Type::Array(t) => t.mentions(tparams),
            Type::Function { params, ret } => {
                params.iter().any(|t| t.mentions(tparams)) || ret.mentions(tparams)
            }
            Type::Or(a, b) => a.mentions(tparams) || b.mentions(tparams),
            _ => false,
        }
    }

    /// Structural "is fully erased" check: no type arguments, no type
    /// parameters, no by-name/repeated/function/poly/union types anywhere.
    /// This is `Erasure`'s postcondition.
    pub fn is_erased(&self) -> bool {
        match self {
            Type::TypeParam(_)
            | Type::ByName(_)
            | Type::Repeated(_)
            | Type::Poly { .. }
            | Type::Function { .. }
            | Type::Or(..) => false,
            Type::Class { targs, .. } => targs.is_empty(),
            Type::Method { params, ret } => {
                params.len() <= 1
                    && params.iter().flatten().all(|t| t.is_erased())
                    && ret.is_erased()
            }
            Type::Array(t) => t.is_erased(),
            _ => true,
        }
    }

    /// The number of value parameters across all parameter lists.
    pub fn param_count(&self) -> usize {
        self.param_lists().iter().map(|l| l.len()).sum()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::NoType => write!(f, "<notype>"),
            Type::Error => write!(f, "<error>"),
            Type::Any => write!(f, "Any"),
            Type::AnyRef => write!(f, "AnyRef"),
            Type::Nothing => write!(f, "Nothing"),
            Type::Null => write!(f, "Null"),
            Type::Unit => write!(f, "Unit"),
            Type::Int => write!(f, "Int"),
            Type::Boolean => write!(f, "Boolean"),
            Type::Str => write!(f, "String"),
            Type::Class { sym, targs } => {
                write!(f, "#{}", sym.index())?;
                if !targs.is_empty() {
                    write!(f, "[")?;
                    for (i, t) in targs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Type::TypeParam(s) => write!(f, "tp#{}", s.index()),
            Type::TermRef(s) => write!(f, "ref#{}", s.index()),
            Type::Method { params, ret } => {
                for ps in params {
                    write!(f, "(")?;
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, "{ret}")
            }
            Type::Poly {
                tparams,
                underlying,
            } => {
                write!(f, "[")?;
                for (i, tp) in tparams.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "tp#{}", tp.index())?;
                }
                write!(f, "]{underlying}")
            }
            Type::ByName(t) => write!(f, "=> {t}"),
            Type::Repeated(t) => write!(f, "{t}*"),
            Type::Array(t) => write!(f, "Array[{t}]"),
            Type::Function { params, ret } => {
                write!(f, "(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") => {ret}")
            }
            Type::Or(a, b) => write!(f, "{a} | {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(i: u32) -> SymbolId {
        SymbolId::from_index(i)
    }

    #[test]
    fn subst_replaces_type_params() {
        let t = Type::Function {
            params: vec![Type::TypeParam(tp(1))],
            ret: Box::new(Type::Array(Box::new(Type::TypeParam(tp(2))))),
        };
        let s = t.subst(&[tp(1), tp(2)], &[Type::Int, Type::Boolean]);
        assert_eq!(
            s,
            Type::Function {
                params: vec![Type::Int],
                ret: Box::new(Type::Array(Box::new(Type::Boolean))),
            }
        );
    }

    #[test]
    fn subst_respects_inner_binders() {
        let inner = Type::Poly {
            tparams: vec![tp(1)],
            underlying: Box::new(Type::TypeParam(tp(1))),
        };
        let s = inner.subst(&[tp(1)], &[Type::Int]);
        // The inner [tp1] shadows the outer substitution.
        assert_eq!(s, inner);
    }

    #[test]
    fn final_result_uncurries() {
        let t = Type::Method {
            params: vec![vec![Type::Int], vec![Type::Boolean]],
            ret: Box::new(Type::Str),
        };
        assert_eq!(*t.final_result(), Type::Str);
        assert_eq!(t.param_count(), 2);
    }

    #[test]
    fn erased_check_rejects_generics() {
        assert!(Type::Int.is_erased());
        assert!(!Type::TypeParam(tp(3)).is_erased());
        assert!(!Type::Function {
            params: vec![],
            ret: Box::new(Type::Unit)
        }
        .is_erased());
        let generic = Type::Class {
            sym: tp(4),
            targs: vec![Type::Int],
        };
        assert!(!generic.is_erased());
    }

    #[test]
    fn mentions_finds_nested_params() {
        let t = Type::Array(Box::new(Type::Class {
            sym: tp(9),
            targs: vec![Type::TypeParam(tp(5))],
        }));
        assert!(t.mentions(&[tp(5)]));
        assert!(!t.mentions(&[tp(6)]));
    }

    #[test]
    fn display_is_readable() {
        let t = Type::Function {
            params: vec![Type::Int, Type::Boolean],
            ret: Box::new(Type::Unit),
        };
        assert_eq!(t.to_string(), "(Int, Boolean) => Unit");
    }
}
