use cache_sim::*;
fn main() {
    let mut h = Hierarchy::new(CacheConfig::scaled_to_corpus());
    // 3 passes over a 200k-line (12.8MB) region; L3 = 1MB = 16k lines.
    for pass in 0..3 {
        let before = h.counters();
        for i in 0..200_000u64 {
            h.access(i * 64, 48, Kind::Read);
        }
        let c = h.counters();
        println!(
            "pass {pass}: l1m={} l2acc={} l2m={} llcacc={} llcm={}",
            c.l1d_load_misses - before.l1d_load_misses,
            c.l2_accesses - before.l2_accesses,
            c.l2_misses - before.l2_misses,
            c.llc_accesses - before.llc_accesses,
            c.llc_misses - before.llc_misses,
        );
    }
}
