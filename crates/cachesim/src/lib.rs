//! # cache-sim — an inclusive three-level cache-hierarchy simulator
//!
//! Consumes the memory-access trace of the real tree-transformation
//! pipelines (node reads/writes plus synthetic instruction fetches of phase
//! code) and models the cache geometry of the paper's evaluation machine
//! (§5: Intel Xeon E5-2680 v2): 32 KB 8-way L1d and L1i, 256 KB 8-way
//! private L2, and a 25 MB 20-way *inclusive* L3. Inclusivity is modelled
//! faithfully — an L3 eviction back-invalidates the line from L1d, L1i and
//! L2 — because that coupling is the paper's explanation for the
//! L1-icache-miss reduction in Fig 8d.
//!
//! On top of the miss counters sits a simple cycle model (Fig 7): each
//! instruction costs one base cycle, and misses add latency-weighted stall
//! cycles.
//!
//! # Examples
//!
//! ```
//! use cache_sim::{CacheConfig, Hierarchy, Kind};
//! let mut h = Hierarchy::new(CacheConfig::xeon_e5_2680_v2());
//! h.access(0x1000, 64, Kind::Read);
//! h.access(0x1000, 64, Kind::Read);
//! assert_eq!(h.counters().l1d_load_misses, 1); // cold miss, then hit
//! ```

#![warn(missing_docs)]

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct LevelConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

/// Full hierarchy geometry.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Cache-line size in bytes.
    pub line: u64,
    /// L1 data cache.
    pub l1d: LevelConfig,
    /// L1 instruction cache.
    pub l1i: LevelConfig,
    /// Unified private L2.
    pub l2: LevelConfig,
    /// Shared inclusive L3.
    pub l3: LevelConfig,
}

impl CacheConfig {
    /// The paper's geometry with the LLC scaled down to preserve the
    /// *churn-to-LLC ratio* of the original experiment. The paper's
    /// pipelines allocate 7–9 GB against a 25 MB L3 (ratio ≈ 300:1); our
    /// corpora allocate tens of MB, so a full-size L3 would hold the whole
    /// working set and hide every capacity effect. L1/L2 stay at the
    /// hardware sizes because per-unit tree working sets (hundreds of KB)
    /// are already in scale with them.
    pub fn scaled_to_corpus() -> CacheConfig {
        CacheConfig {
            l3: LevelConfig {
                size: 4 << 20,
                assoc: 20,
            },
            ..CacheConfig::xeon_e5_2680_v2()
        }
    }

    /// The evaluation machine of the paper (§5).
    pub fn xeon_e5_2680_v2() -> CacheConfig {
        CacheConfig {
            line: 64,
            l1d: LevelConfig {
                size: 32 << 10,
                assoc: 8,
            },
            l1i: LevelConfig {
                size: 32 << 10,
                assoc: 8,
            },
            l2: LevelConfig {
                size: 256 << 10,
                assoc: 8,
            },
            l3: LevelConfig {
                size: 25 << 20,
                assoc: 20,
            },
        }
    }
}

/// Kind of memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Exec,
}

/// An LRU set-associative cache of line tags.
#[derive(Debug)]
struct Cache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    set_mask: u64,
}

impl Cache {
    fn new(cfg: LevelConfig, line: u64) -> Cache {
        let lines = (cfg.size / line).max(1) as usize;
        let set_count = (lines / cfg.assoc).max(1).next_power_of_two();
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc); set_count],
            assoc: cfg.assoc,
            set_mask: set_count as u64 - 1,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    /// Touches a line: returns true on hit. On miss, inserts the line and
    /// returns the evicted victim, if any.
    fn touch(&mut self, line_addr: u64) -> (bool, Option<u64>) {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            // LRU bump: move to back.
            let t = ways.remove(pos);
            ways.push(t);
            return (true, None);
        }
        let victim = if ways.len() >= self.assoc {
            Some(ways.remove(0))
        } else {
            None
        };
        ways.push(line_addr);
        (false, victim)
    }

    /// Removes a line if present (back-invalidation).
    fn invalidate(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            ways.remove(pos);
        }
    }
}

/// Raw event counters (the paper's Fig 8 panels).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// L1d load accesses.
    pub l1d_loads: u64,
    /// L1d load misses.
    pub l1d_load_misses: u64,
    /// L1d store accesses.
    pub l1d_stores: u64,
    /// L1d store misses.
    pub l1d_store_misses: u64,
    /// L1i fetch accesses.
    pub l1i_accesses: u64,
    /// L1i fetch misses (Fig 8d).
    pub l1i_misses: u64,
    /// L2 lookups.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC (L3) lookups.
    pub llc_accesses: u64,
    /// LLC load misses — DRAM accesses (Fig 8c).
    pub llc_misses: u64,
    /// L3 back-invalidations delivered to inner caches (inclusivity).
    pub back_invalidations: u64,
}

impl Counters {
    /// L1d load miss rate.
    pub fn l1d_load_miss_rate(&self) -> f64 {
        ratio(self.l1d_load_misses, self.l1d_loads)
    }

    /// L1d store miss rate.
    pub fn l1d_store_miss_rate(&self) -> f64 {
        ratio(self.l1d_store_misses, self.l1d_stores)
    }

    /// LLC load miss rate.
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(self.llc_misses, self.llc_accesses)
    }

    /// L1i miss rate.
    pub fn l1i_miss_rate(&self) -> f64 {
        ratio(self.l1i_misses, self.l1i_accesses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Latency-weighted cycle model (Fig 7). Latencies approximate the paper's
/// microarchitecture: L1 hit is covered by the base CPI, L2 ≈ 12 cycles,
/// L3 ≈ 36, DRAM ≈ 180.
#[derive(Clone, Copy, Debug)]
pub struct CycleModel {
    /// Cycles per instruction when every access hits L1.
    pub base_cpi: f64,
    /// Extra cycles per L1 miss that hits L2.
    pub l2_latency: f64,
    /// Extra cycles per L2 miss that hits L3.
    pub l3_latency: f64,
    /// Extra cycles per DRAM access.
    pub mem_latency: f64,
}

impl Default for CycleModel {
    fn default() -> CycleModel {
        CycleModel {
            base_cpi: 1.0,
            l2_latency: 12.0,
            l3_latency: 36.0,
            mem_latency: 180.0,
        }
    }
}

impl CycleModel {
    /// Estimated cycle count for `instructions` retired against the given
    /// miss counters.
    pub fn cycles(&self, instructions: u64, c: &Counters) -> u64 {
        let l1_misses = c.l1d_load_misses + c.l1d_store_misses + c.l1i_misses;
        let l2_hits = l1_misses.saturating_sub(c.l2_misses);
        let l3_hits = c.l2_misses.saturating_sub(c.llc_misses);
        (instructions as f64 * self.base_cpi
            + l2_hits as f64 * self.l2_latency
            + l3_hits as f64 * self.l3_latency
            + c.llc_misses as f64 * self.mem_latency) as u64
    }

    /// Estimated stalled cycles (cycles minus base work).
    pub fn stalled_cycles(&self, instructions: u64, c: &Counters) -> u64 {
        self.cycles(instructions, c)
            .saturating_sub((instructions as f64 * self.base_cpi) as u64)
    }
}

/// The three-level inclusive hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    line: u64,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    l3: Cache,
    counters: Counters,
}

impl Hierarchy {
    /// Builds a hierarchy with the given geometry.
    pub fn new(cfg: CacheConfig) -> Hierarchy {
        Hierarchy {
            line: cfg.line,
            l1d: Cache::new(cfg.l1d, cfg.line),
            l1i: Cache::new(cfg.l1i, cfg.line),
            l2: Cache::new(cfg.l2, cfg.line),
            l3: Cache::new(cfg.l3, cfg.line),
            counters: Counters::default(),
        }
    }

    /// Performs an access of `bytes` bytes at `addr` (split per cache line).
    pub fn access(&mut self, addr: u64, bytes: u32, kind: Kind) {
        let first = addr / self.line;
        let last = (addr + u64::from(bytes).max(1) - 1) / self.line;
        for line in first..=last {
            self.access_line(line, kind);
        }
    }

    fn access_line(&mut self, line: u64, kind: Kind) {
        let (l1_hit, _) = match kind {
            Kind::Read => {
                self.counters.l1d_loads += 1;
                self.l1d.touch(line)
            }
            Kind::Write => {
                self.counters.l1d_stores += 1;
                self.l1d.touch(line)
            }
            Kind::Exec => {
                self.counters.l1i_accesses += 1;
                self.l1i.touch(line)
            }
        };
        if l1_hit {
            return;
        }
        match kind {
            Kind::Read => self.counters.l1d_load_misses += 1,
            Kind::Write => self.counters.l1d_store_misses += 1,
            Kind::Exec => self.counters.l1i_misses += 1,
        }
        self.counters.l2_accesses += 1;
        let (l2_hit, _) = self.l2.touch(line);
        if l2_hit {
            return;
        }
        self.counters.l2_misses += 1;
        self.counters.llc_accesses += 1;
        let (l3_hit, l3_victim) = self.l3.touch(line);
        if let Some(victim) = l3_victim {
            // Inclusive L3: evicted lines leave the inner caches too.
            self.counters.back_invalidations += 1;
            self.l1d.invalidate(victim);
            self.l1i.invalidate(victim);
            self.l2.invalidate(victim);
        }
        if !l3_hit {
            self.counters.llc_misses += 1;
        }
    }

    /// The counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            line: 64,
            l1d: LevelConfig {
                size: 512,
                assoc: 2,
            },
            l1i: LevelConfig {
                size: 512,
                assoc: 2,
            },
            l2: LevelConfig {
                size: 2048,
                assoc: 2,
            },
            l3: LevelConfig {
                size: 4096,
                assoc: 2,
            },
        }
    }

    #[test]
    fn hits_after_cold_miss() {
        let mut h = Hierarchy::new(small());
        h.access(0, 8, Kind::Read);
        h.access(8, 8, Kind::Read); // same line
        let c = h.counters();
        assert_eq!(c.l1d_loads, 2);
        assert_eq!(c.l1d_load_misses, 1);
        assert_eq!(c.llc_misses, 1);
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let mut h = Hierarchy::new(small());
        h.access(0, 200, Kind::Read); // lines 0..=3
        assert_eq!(h.counters().l1d_loads, 4);
    }

    #[test]
    fn lru_eviction_in_l1_is_caught_by_l2() {
        let mut h = Hierarchy::new(small());
        // L1d: 512B/64B = 8 lines, 2-way, 4 sets. Addresses mapping to the
        // same set: stride = 4 lines = 256 bytes.
        h.access(0, 1, Kind::Read);
        h.access(256, 1, Kind::Read);
        h.access(512, 1, Kind::Read); // evicts line 0 from L1
        h.access(0, 1, Kind::Read); // L1 miss, L2 hit
        let c = h.counters();
        assert_eq!(c.l1d_load_misses, 4);
        assert_eq!(c.llc_misses, 3, "the re-access hits L2, not DRAM");
    }

    #[test]
    fn inclusive_l3_back_invalidates_inner_levels() {
        let mut h = Hierarchy::new(small());
        // Walk far more lines than L3 holds (4096/64 = 64 lines).
        for i in 0..256u64 {
            h.access(i * 64, 1, Kind::Read);
        }
        let c = h.counters();
        assert!(c.back_invalidations > 0);
        // Re-walk: everything was evicted; L1 cannot silently hold stale
        // lines under inclusivity.
        let before = h.counters().l1d_load_misses;
        h.access(0, 1, Kind::Read);
        assert_eq!(h.counters().l1d_load_misses, before + 1);
    }

    #[test]
    fn icache_pressure_from_data_traffic() {
        // The Fig 8d mechanism: data streaming through the inclusive L3
        // evicts instruction lines from L1i via back-invalidation.
        let mut h = Hierarchy::new(small());
        h.access(1 << 20, 1, Kind::Exec);
        h.access(1 << 20, 1, Kind::Exec);
        assert_eq!(h.counters().l1i_misses, 1);
        for i in 0..512u64 {
            h.access(i * 64, 1, Kind::Read);
        }
        h.access(1 << 20, 1, Kind::Exec);
        assert_eq!(
            h.counters().l1i_misses,
            2,
            "data traffic must have evicted the code line through L3 inclusivity"
        );
    }

    #[test]
    fn cycle_model_orders_configurations() {
        let m = CycleModel::default();
        let cheap = Counters {
            l1d_loads: 1000,
            l1d_load_misses: 10,
            llc_accesses: 10,
            llc_misses: 1,
            l2_accesses: 10,
            l2_misses: 5,
            ..Counters::default()
        };
        let costly = Counters {
            l1d_loads: 1000,
            l1d_load_misses: 500,
            l2_accesses: 500,
            l2_misses: 400,
            llc_accesses: 400,
            llc_misses: 300,
            ..Counters::default()
        };
        assert!(m.cycles(1000, &costly) > m.cycles(1000, &cheap));
        assert!(m.stalled_cycles(1000, &cheap) < m.stalled_cycles(1000, &costly));
        assert_eq!(m.cycles(1000, &Counters::default()), 1000);
    }

    #[test]
    fn miss_rates_are_well_defined() {
        let c = Counters::default();
        assert_eq!(c.l1d_load_miss_rate(), 0.0);
        let c2 = Counters {
            l1d_loads: 100,
            l1d_load_misses: 25,
            ..Counters::default()
        };
        assert!((c2.l1d_load_miss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn paper_geometry_constructs() {
        let h = Hierarchy::new(CacheConfig::xeon_e5_2680_v2());
        assert_eq!(h.line, 64);
        // 25MB / 64B / 20-way = 20480 sets, rounded to a power of two.
        assert!(h.l3.sets.len() >= 16384);
    }
}
