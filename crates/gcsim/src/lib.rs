//! # gc-sim — a generational heap simulator
//!
//! Replays the allocation/death stream of tree nodes produced by the real
//! compilation pipelines and models a JVM-style young generation: a nursery
//! of configurable size triggers a *minor collection* whenever its
//! allocation budget is exhausted; objects that survive
//! [`GcConfig::tenure_age`] collections are *promoted (tenured)* to the old
//! generation.
//!
//! This regenerates the measurements of the paper's Figs 5 and 6: total
//! bytes allocated, and total bytes promoted. The paper's explanation of the
//! tenuring gap is mechanical in this model: under the fused pipeline a node
//! replaced by a later Miniphase in the *same traversal* dies after only a
//! handful of further allocations (almost always within the same nursery
//! window), while under the Megaphase pipeline it survives until the next
//! whole-tree traversal — many nursery windows later — and is promoted.
//!
//! # Examples
//!
//! ```
//! use gc_sim::{GcConfig, GcSim};
//! let mut gc = GcSim::new(GcConfig { nursery_bytes: 1024, tenure_age: 1 });
//! gc.alloc(1, 512);
//! gc.alloc(2, 512); // nursery full -> minor GC; object 1 and 2 survive
//! gc.alloc(3, 512);
//! assert_eq!(gc.stats().minor_collections, 1);
//! assert!(gc.stats().tenured_bytes >= 1024);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;

/// Generational-heap parameters.
#[derive(Clone, Copy, Debug)]
pub struct GcConfig {
    /// Nursery allocation budget between minor collections.
    pub nursery_bytes: u64,
    /// Number of minor collections an object must survive to be promoted.
    pub tenure_age: u32,
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            // Small relative to a full corpus's transform-pipeline
            // allocation volume (tens of MB), mirroring the paper's setup
            // where total allocation (7-9 GB) dwarfs the young generation.
            nursery_bytes: 128 << 10,
            tenure_age: 1,
        }
    }
}

impl GcConfig {
    /// Nursery calibration point: a 1.2 kLOC corpus needs a 256 KiB nursery
    /// (with tenure age 2) for the Fig 6 generational shape to appear — the
    /// sweep recorded in PR 1 showed a 64 KiB nursery tenures essentially
    /// everything in *both* pipeline modes at that size, drowning the shape.
    const CALIBRATED_LOC: u64 = 1_200;
    /// Nursery bytes at the calibration point.
    const CALIBRATED_NURSERY: u64 = 256 << 10;

    /// A generational configuration scaled to the corpus being replayed —
    /// the analogue of `CacheConfig::scaled_to_corpus` for the GC simulator.
    ///
    /// The paper's generational effects need allocation volume ≫ young
    /// generation, but a nursery too small for the corpus tenures everything
    /// in every mode and hides the fused-vs-mega gap. Transform-pipeline
    /// allocation grows roughly linearly with corpus LOC, so the nursery
    /// scales linearly from the calibrated 1.2 kLOC / 256 KiB point, then
    /// rounds to the nearest power of two (real young generations are sized
    /// that way, and quantizing keeps the configuration stable when a
    /// generator overshoots its LOC target by a few percent), clamped to
    /// [64 KiB, 16 MiB]. The tenure age stays at the calibrated 2
    /// collections.
    pub fn scaled_to_corpus(corpus_loc: usize) -> GcConfig {
        let linear = (corpus_loc as u64)
            .saturating_mul(Self::CALIBRATED_NURSERY)
            .checked_div(Self::CALIBRATED_LOC)
            .unwrap_or(Self::CALIBRATED_NURSERY)
            .clamp(64 << 10, 16 << 20);
        // Round to the nearest power of two (ties go up).
        let hi = linear.next_power_of_two();
        let lo = hi >> 1;
        let nursery = if linear - lo < hi - linear { lo } else { hi };
        GcConfig {
            nursery_bytes: nursery,
            tenure_age: 2,
        }
    }
}

/// Aggregate results of a replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects allocated.
    pub allocated_objects: u64,
    /// Bytes allocated (the paper's Fig 5).
    pub allocated_bytes: u64,
    /// Objects promoted to the old generation.
    pub tenured_objects: u64,
    /// Bytes promoted (the paper's Fig 6).
    pub tenured_bytes: u64,
    /// Minor collections performed.
    pub minor_collections: u64,
    /// Objects that died in the nursery (never promoted).
    pub died_young: u64,
}

impl GcStats {
    /// Fraction of allocated bytes that were promoted.
    pub fn tenure_ratio(&self) -> f64 {
        if self.allocated_bytes == 0 {
            0.0
        } else {
            self.tenured_bytes as f64 / self.allocated_bytes as f64
        }
    }
}

/// The simulator. Feed it `alloc`/`free` events in program order (it also
/// implements [`mini_ir::trace::HeapSink`] via the blanket impl in
/// `mini-driver`, keeping this crate dependency-free).
#[derive(Debug)]
pub struct GcSim {
    config: GcConfig,
    /// Live nursery objects: id → (bytes, survived collections).
    nursery: HashMap<u64, (u32, u32)>,
    since_gc: u64,
    stats: GcStats,
}

impl GcSim {
    /// Creates a simulator.
    pub fn new(config: GcConfig) -> GcSim {
        GcSim {
            config,
            nursery: HashMap::new(),
            since_gc: 0,
            stats: GcStats::default(),
        }
    }

    /// Records an allocation of `bytes` for object `id`.
    pub fn alloc(&mut self, id: u64, bytes: u32) {
        self.stats.allocated_objects += 1;
        self.stats.allocated_bytes += u64::from(bytes);
        self.since_gc += u64::from(bytes);
        self.nursery.insert(id, (bytes, 0));
        if self.since_gc >= self.config.nursery_bytes {
            self.minor_collection();
        }
    }

    /// Records the death (unreachability) of object `id`.
    pub fn free(&mut self, id: u64) {
        if self.nursery.remove(&id).is_some() {
            self.stats.died_young += 1;
        }
        // Deaths of already-promoted objects don't affect promotion totals.
    }

    /// Forces a minor collection (normally triggered by allocation volume).
    pub fn minor_collection(&mut self) {
        self.stats.minor_collections += 1;
        self.since_gc = 0;
        let tenure_age = self.config.tenure_age;
        let mut promoted = Vec::new();
        for (id, (bytes, age)) in self.nursery.iter_mut() {
            *age += 1;
            if *age >= tenure_age {
                promoted.push(*id);
                self.stats.tenured_objects += 1;
                self.stats.tenured_bytes += u64::from(*bytes);
            }
        }
        for id in promoted {
            self.nursery.remove(&id);
        }
    }

    /// The results so far.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Live (unpromoted, undead) nursery object count — diagnostics.
    pub fn nursery_population(&self) -> usize {
        self.nursery.len()
    }
}

impl Default for GcSim {
    fn default() -> GcSim {
        GcSim::new(GcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(nursery: u64, age: u32) -> GcSim {
        GcSim::new(GcConfig {
            nursery_bytes: nursery,
            tenure_age: age,
        })
    }

    #[test]
    fn short_lived_objects_die_young() {
        let mut gc = sim(1000, 1);
        for i in 0..100 {
            gc.alloc(i, 8);
            gc.free(i); // dies immediately
        }
        let s = gc.stats();
        assert_eq!(s.allocated_objects, 100);
        assert_eq!(s.tenured_objects, 0);
        assert_eq!(s.died_young, 100);
        assert_eq!(s.tenure_ratio(), 0.0);
    }

    #[test]
    fn scaled_to_corpus_tracks_the_calibration_point() {
        // The calibrated 1.2 kLOC point reproduces the hand-tuned Fig 6
        // parameters exactly.
        let c = GcConfig::scaled_to_corpus(1_200);
        assert_eq!(c.nursery_bytes, 256 << 10);
        assert_eq!(c.tenure_age, 2);
        // A generator overshooting its LOC target by a few percent lands on
        // the same quantized nursery.
        assert_eq!(GcConfig::scaled_to_corpus(1_226).nursery_bytes, 256 << 10);
        // Linear-then-quantized in corpus size between the clamps…
        assert_eq!(GcConfig::scaled_to_corpus(2_400).nursery_bytes, 512 << 10);
        let small = GcConfig::scaled_to_corpus(10);
        let large = GcConfig::scaled_to_corpus(100_000_000);
        // …and clamped at both ends.
        assert_eq!(small.nursery_bytes, 64 << 10);
        assert_eq!(large.nursery_bytes, 16 << 20);
        // Monotone non-decreasing across three orders of magnitude.
        let mut prev = 0;
        for loc in [100, 1_000, 10_000, 100_000, 1_000_000] {
            let n = GcConfig::scaled_to_corpus(loc).nursery_bytes;
            assert!(n >= prev, "nursery shrank at {loc} LOC");
            prev = n;
        }
    }

    #[test]
    fn long_lived_objects_are_promoted() {
        let mut gc = sim(100, 1);
        gc.alloc(1, 50); // survives everything
        for i in 2..20 {
            gc.alloc(i, 60); // each allocation triggers GCs
            gc.free(i);
        }
        let s = gc.stats();
        assert!(s.minor_collections > 0);
        assert!(s.tenured_objects >= 1, "{s:?}");
        assert!(s.tenured_bytes >= 50);
    }

    #[test]
    fn tenure_age_delays_promotion() {
        // With age 2, an object must survive two collections.
        let mut gc = sim(100, 2);
        gc.alloc(1, 10);
        gc.minor_collection();
        assert_eq!(gc.stats().tenured_objects, 0);
        gc.minor_collection();
        assert_eq!(gc.stats().tenured_objects, 1);
    }

    #[test]
    fn death_between_collections_prevents_promotion() {
        let mut gc = sim(1_000_000, 1);
        gc.alloc(1, 10);
        gc.free(1);
        gc.minor_collection();
        assert_eq!(gc.stats().tenured_objects, 0);
        assert_eq!(gc.stats().died_young, 1);
    }

    #[test]
    fn allocation_volume_triggers_collections() {
        let mut gc = sim(64, 1);
        for i in 0..16 {
            gc.alloc(i, 16);
        }
        // 256 bytes over a 64-byte nursery: 4 collections.
        assert_eq!(gc.stats().minor_collections, 4);
    }

    #[test]
    fn fused_vs_mega_shape_on_synthetic_streams() {
        // Fused schedule: intermediate nodes die within a few allocations.
        let mut fused = sim(256, 1);
        for i in 0..1000u64 {
            fused.alloc(i, 32);
            if i >= 1 {
                fused.free(i - 1); // replaced almost immediately
            }
        }
        // Megaphase schedule: nodes live for a whole "traversal" (many
        // allocations) before being replaced.
        let mut mega = sim(256, 1);
        for i in 0..1000u64 {
            mega.alloc(i, 32);
            if i >= 100 {
                mega.free(i - 100);
            }
        }
        let f = fused.stats();
        let m = mega.stats();
        assert!(
            m.tenured_bytes > 2 * f.tenured_bytes,
            "mega should tenure much more: fused={f:?} mega={m:?}"
        );
    }
}
