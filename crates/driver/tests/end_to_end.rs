//! End-to-end tests: MiniScala source → full pipeline → VM execution, in all
//! three pipeline modes. Every feature here exercises at least one concrete
//! Miniphase.

use mini_driver::{compile_and_run, CompilerOptions};

fn run_all_modes(src: &str) -> Vec<String> {
    let mut reference: Option<Vec<String>> = None;
    for opts in [
        CompilerOptions::fused(),
        CompilerOptions::mega(),
        CompilerOptions::legacy(),
    ] {
        let (_, out) = match compile_and_run(src, &opts) {
            Ok(r) => r,
            Err(e) => panic!("mode {:?} failed:\n{e}\nsource:\n{src}", opts.mode),
        };
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "mode {:?} disagrees with fused output", opts.mode),
        }
    }
    reference.expect("at least one mode ran")
}

fn run(src: &str) -> Vec<String> {
    let (_, out) = compile_and_run(src, &CompilerOptions::fused())
        .unwrap_or_else(|e| panic!("compile failed:\n{e}\nsource:\n{src}"));
    out
}

#[test]
fn hello_world() {
    assert_eq!(
        run_all_modes(r#"def main(): Unit = println("hello")"#),
        ["hello"]
    );
}

#[test]
fn arithmetic_and_control_flow() {
    let out = run_all_modes(
        r#"
def main(): Unit = {
  var i: Int = 0
  var acc: Int = 0
  while (i < 10) {
    if (i % 2 == 0) acc = acc + i
    i = i + 1
  }
  println(acc)
  println(if (acc > 10) "big" else "small")
}
"#,
    );
    assert_eq!(out, ["20", "big"]);
}

#[test]
fn classes_fields_and_methods() {
    let out = run_all_modes(
        r#"
class Counter(start: Int) {
  var count: Int = start
  def inc(): Unit = count = count + 1
  def get(): Int = count
}
def main(): Unit = {
  val c: Counter = new Counter(40)
  c.inc()
  c.inc()
  println(c.get())
}
"#,
    );
    assert_eq!(out, ["42"]);
}

#[test]
fn getters_and_public_vals() {
    let out = run_all_modes(
        r#"
class Point(px: Int, py: Int) {
  val x: Int = px
  val y: Int = py
  def sum(): Int = x + y
}
def main(): Unit = {
  val p: Point = new Point(3, 4)
  println(p.x)
  println(p.sum())
}
"#,
    );
    assert_eq!(out, ["3", "7"]);
}

#[test]
fn inheritance_and_virtual_dispatch() {
    let out = run_all_modes(
        r#"
class Animal {
  def sound(): String = "..."
  def speak(): String = "I say " + sound()
}
class Dog extends Animal {
  override def sound(): String = "woof"
}
def main(): Unit = {
  val a: Animal = new Dog()
  println(a.speak())
}
"#,
    );
    assert_eq!(out, ["I say woof"]);
}

#[test]
fn traits_and_mixin_initialization() {
    let out = run_all_modes(
        r#"
trait Greeter {
  val greeting: String = "hi"
  def greet(): String = greeting
}
trait Counter2 {
  var n: Int = 100
  def bump(): Unit = n = n + 1
}
class Both extends Greeter with Counter2
def main(): Unit = {
  val b: Both = new Both()
  b.bump()
  println(b.greet())
  println(b.n)
}
"#,
    );
    assert_eq!(out, ["hi", "101"]);
}

#[test]
fn the_papers_listing_1_runs() {
    let out = run_all_modes(
        r#"
trait Interface {
  def interfaceMethod: Int = 1
  lazy val interfaceField: Int = 2
}

class Increment(by: Int) extends Interface {
  def incOrZero(b: Any): Int = b match {
    case b: Int => b + by
    case _ => 0
  }
}

def main(): Unit = {
  val inc: Increment = new Increment(5)
  println(inc.incOrZero(10))
  println(inc.incOrZero("not an int"))
  println(inc.interfaceMethod)
  println(inc.interfaceField)
}
"#,
    );
    assert_eq!(out, ["15", "0", "1", "2"]);
}

#[test]
fn pattern_matching_guards_binders_alternatives() {
    let out = run_all_modes(
        r#"
def classify(x: Any): String = x match {
  case 0 | 1 | 2 => "small"
  case n: Int if n < 0 => "negative"
  case n: Int => "big:" + n
  case s: String => "str:" + s
  case b: Boolean => "bool"
  case _ => "other"
}
def main(): Unit = {
  println(classify(1))
  println(classify(0 - 7))
  println(classify(100))
  println(classify("abc"))
  println(classify(true))
  println(classify(()))
}
"#,
    );
    assert_eq!(
        out,
        ["small", "negative", "big:100", "str:abc", "bool", "other"]
    );
}

#[test]
fn lazy_vals_evaluate_once() {
    let out = run_all_modes(
        r#"
class Holder {
  lazy val expensive: Int = {
    println("computing")
    42
  }
}
def main(): Unit = {
  val h: Holder = new Holder()
  println("before")
  println(h.expensive)
  println(h.expensive)
}
"#,
    );
    assert_eq!(out, ["before", "computing", "42", "42"]);
}

#[test]
fn local_lazy_vals() {
    let out = run_all_modes(
        r#"
def main(): Unit = {
  lazy val x: Int = {
    println("init")
    7
  }
  println("start")
  println(x + x)
}
"#,
    );
    assert_eq!(out, ["start", "init", "14"]);
}

#[test]
fn tail_recursion_runs_deep() {
    let out = run_all_modes(
        r#"
def sum(n: Int, acc: Int): Int = if (n == 0) acc else sum(n - 1, acc + n)
def main(): Unit = println(sum(100000, 0))
"#,
    );
    assert_eq!(out, ["5000050000"]);
}

#[test]
fn varargs_and_arrays() {
    let out = run_all_modes(
        r#"
def total(xs: Int*): Int = {
  var i: Int = 0
  var acc: Int = 0
  while (i < xs.length) {
    acc = acc + xs(i)
    i = i + 1
  }
  acc
}
def main(): Unit = {
  println(total(1, 2, 3, 4))
  println(total())
  val a: Array[Int] = new Array[Int](2)
  a(0) = 10
  a(1) = 32
  println(a(0) + a(1))
}
"#,
    );
    assert_eq!(out, ["10", "0", "42"]);
}

#[test]
fn by_name_parameters_defer_evaluation() {
    let out = run_all_modes(
        r#"
def unless(cond: Boolean, body: => Int): Int = if (cond) 0 else body
def main(): Unit = {
  println(unless(true, { println("evaluated"); 1 }))
  println(unless(false, { println("evaluated"); 2 }))
}
"#,
    );
    assert_eq!(out, ["0", "evaluated", "2"]);
}

#[test]
fn closures_capture_values_and_vars() {
    let out = run_all_modes(
        r#"
def main(): Unit = {
  val base: Int = 10
  var acc: Int = 0
  val add: (Int) => Int = (k: Int) => base + k
  val bump: (Int) => Int = (k: Int) => {
    acc = acc + k
    acc
  }
  println(add(5))
  println(bump(1))
  println(bump(2))
  println(acc)
}
"#,
    );
    assert_eq!(out, ["15", "1", "3", "3"]);
}

#[test]
fn nested_defs_are_lifted() {
    let out = run_all_modes(
        r#"
def outer(n: Int): Int = {
  var acc: Int = 0
  def add(k: Int): Unit = acc = acc + k
  def twice(k: Int): Unit = {
    add(k)
    add(k)
  }
  twice(n)
  acc
}
def main(): Unit = println(outer(21))
"#,
    );
    assert_eq!(out, ["42"]);
}

#[test]
fn try_catch_finally_and_lift_try() {
    let out = run_all_modes(
        r#"
def risky(n: Int): Int = {
  // try used as a sub-expression: LiftTry must hoist it.
  val r: Int = 1 + (try {
    if (n < 0) throw "neg"
    n
  } catch {
    case s: String => 0 - 1
  })
  r
}
def main(): Unit = {
  println(risky(10))
  println(risky(0 - 5))
  val f: Int = try 1 finally println("fin")
  println(f)
}
"#,
    );
    assert_eq!(out, ["11", "0", "fin", "1"]);
}

#[test]
fn generics_erase_and_run() {
    let out = run_all_modes(
        r#"
class Box[T](v: T) {
  def get(): T = v
}
def pick[T](c: Boolean, a: T, b: T): T = if (c) a else b
def main(): Unit = {
  val bi: Box[Int] = new Box[Int](41)
  val bs: Box[String] = new Box[String]("s")
  println(bi.get() + 1)
  println(bs.get())
  println(pick(true, 1, 2))
  println(pick[String](false, "x", "y"))
}
"#,
    );
    assert_eq!(out, ["42", "s", "1", "y"]);
}

#[test]
fn equality_and_intercepted_methods() {
    let out = run_all_modes(
        r#"
def main(): Unit = {
  println("a" == "a")
  println("a" != "b")
  println(1 == 1)
  println(1 == 2)
  println(1.getClass())
  println("x".getClass())
}
"#,
    );
    assert_eq!(out, ["true", "true", "true", "false", "Int", "String"]);
}

#[test]
fn string_concatenation() {
    let out = run_all_modes(
        r#"
def main(): Unit = {
  println("n=" + 42)
  println(1 + 2 + "!")
  println("" + true + ())
}
"#,
    );
    assert_eq!(out, ["n=42", "3!", "true()"]);
}

#[test]
fn higher_order_functions() {
    let out = run_all_modes(
        r#"
def applyTwice(f: (Int) => Int, x: Int): Int = f(f(x))
def main(): Unit = {
  println(applyTwice((n: Int) => n * 3, 2))
  val compose: (Int) => Int = (n: Int) => n + 1
  println(applyTwice(compose, 0))
}
"#,
    );
    assert_eq!(out, ["18", "2"]);
}

#[test]
fn super_calls() {
    let out = run_all_modes(
        r#"
class Base {
  def describe(): String = "base"
}
class Derived extends Base {
  override def describe(): String = super.describe() + "+derived"
}
def main(): Unit = println(new Derived().describe())
"#,
    );
    assert_eq!(out, ["base+derived"]);
}

#[test]
fn match_on_result_of_match() {
    let out = run(r#"
def f(x: Int): Int = x match {
  case 0 => 10
  case n => n * 2
}
def main(): Unit = {
  val r: Int = f(0) match {
    case 10 => 1
    case _ => 0
  }
  println(r)
}
"#);
    assert_eq!(out, ["1"]);
}

#[test]
fn fused_and_mega_produce_identical_programs() {
    let src = r#"
trait T { val base: Int = 2 }
class C extends T {
  def m(x: Int): Int = x match {
    case 0 => base
    case n => n + base
  }
}
def main(): Unit = {
  val c: C = new C()
  println(c.m(0))
  println(c.m(40))
}
"#;
    let fused = mini_driver::compile(src, &CompilerOptions::fused()).expect("fused");
    let mega = mini_driver::compile(src, &CompilerOptions::mega()).expect("mega");
    assert_eq!(fused.groups, 6);
    assert_eq!(mega.groups, 22);
    assert!(
        mega.exec.node_visits > fused.exec.node_visits * 3,
        "mega visits {} vs fused {}",
        mega.exec.node_visits,
        fused.exec.node_visits
    );
    // And they execute identically.
    let run = |c: &mini_driver::Compiled| {
        let mut vm = mini_backend::Vm::new(&c.program);
        vm.run_main().expect("runs");
        vm.out
    };
    assert_eq!(run(&fused), run(&mega));
    assert_eq!(run(&fused), vec!["2", "42"]);
}

#[test]
fn checker_passes_on_clean_program() {
    let src = r#"
class C(x: Int) {
  val doubled: Int = x * 2
  def m(v: Any): Int = v match {
    case i: Int => i + doubled
    case _ => doubled
  }
}
def main(): Unit = println(new C(5).m(1))
"#;
    let mut opts = CompilerOptions::fused();
    opts.check = true;
    let compiled = mini_driver::compile(src, &opts)
        .unwrap_or_else(|e| panic!("checker flagged a clean program:\n{e}"));
    assert!(compiled.check_failures.is_empty());
    let mut opts = CompilerOptions::mega();
    opts.check = true;
    mini_driver::compile(src, &opts).expect("mega checker clean");
}

#[test]
fn legacy_mode_allocates_more() {
    let src = r#"
class A { def m(x: Int): Int = x + 1 }
def main(): Unit = println(new A().m(1))
"#;
    let fused = mini_driver::compile(src, &CompilerOptions::fused()).expect("fused");
    let legacy = mini_driver::compile(src, &CompilerOptions::legacy()).expect("legacy");
    assert!(
        legacy.ctx.stats.nodes > fused.ctx.stats.nodes,
        "legacy {} vs fused {}",
        legacy.ctx.stats.nodes,
        fused.ctx.stats.nodes
    );
}

#[test]
fn runtime_exceptions_propagate() {
    let src = r#"def main(): Unit = println(1 / 0)"#;
    let err = compile_and_run(src, &CompilerOptions::fused()).unwrap_err();
    assert!(err.to_string().contains("Arithmetic"), "{err}");
}

/// Parallel compilation end to end: a multi-unit batch compiled with
/// `jobs = 4` must produce a runnable program with the same VM output as
/// the sequential pipeline — this exercises the whole hand-off chain
/// (per-worker tree arenas, worker symbol shards, the deterministic table
/// merge) all the way through codegen, which resolves classes, vtables and
/// field slots out of the *merged* symbol table.
#[test]
fn parallel_batch_runs_identically() {
    use mini_backend::Vm;
    use mini_driver::compile_sources;

    // Units that force transform-created symbols (closures → lifted anon
    // classes, captured vars → Ref cells) in *every* unit, so worker shards
    // are non-empty and codegen must resolve shard ids.
    let unit = |i: usize| {
        format!(
            "def work{i}(n: Int): Int = {{\n\
               var acc: Int = 0\n\
               val add = (d: Int) => {{ acc = acc + d; acc }}\n\
               var j: Int = 0\n\
               while (j < n) {{ add(j); j = j + 1 }}\n\
               acc + {i}\n\
             }}\n"
        )
    };
    let mut sources: Vec<(String, String)> =
        (0..6).map(|i| (format!("u{i}.ms"), unit(i))).collect();
    sources.push((
        "main.ms".to_owned(),
        "def main(): Unit = {\n  println(work0(4) + work1(4) + work2(4) + work3(4) + work4(4) + work5(4))\n}\n"
            .to_owned(),
    ));
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();

    let run_with = |jobs: usize, check: bool| -> Vec<String> {
        let opts = CompilerOptions::fused().with_jobs(jobs).with_check(check);
        let compiled = compile_sources(&borrowed, &opts)
            .unwrap_or_else(|e| panic!("jobs={jobs} check={check} failed:\n{e}"));
        assert_eq!(
            compiled.effective_jobs,
            jobs.min(borrowed.len()),
            "driver must report the jobs actually used"
        );
        let mut vm = Vm::new(&compiled.program);
        vm.run_main().expect("runs");
        vm.out
    };
    let seq = run_with(1, false);
    let par = run_with(4, false);
    assert_eq!(seq, par, "VM output must not depend on jobs");
    // The dynamic checker no longer forces jobs=1; a checked parallel run
    // compiles, checks cleanly, and executes identically.
    let par_checked = run_with(4, true);
    assert_eq!(seq, par_checked, "VM output must not depend on check+jobs");
    assert!(!seq.is_empty());
}

/// `CompilerOptions { jobs: 0, .. }` built by struct literal bypasses the
/// `with_jobs` clamp; the driver must clamp at the use site
/// (`effective_jobs()`) instead of feeding 0 into the chunk math.
#[test]
fn struct_literal_zero_jobs_runs_sequentially() {
    let opts = CompilerOptions {
        jobs: 0,
        ..CompilerOptions::fused()
    };
    assert_eq!(opts.effective_jobs(), 1);
    let compiled = mini_driver::compile("def main(): Unit = println(6 * 7)", &opts)
        .expect("jobs=0 compiles via the sequential path");
    assert_eq!(
        compiled.effective_jobs, 1,
        "downgrade is reported, not hidden"
    );
    let (_, out) = compile_and_run("def main(): Unit = println(6 * 7)", &opts).expect("runs");
    assert_eq!(out, vec!["42"]);
}
