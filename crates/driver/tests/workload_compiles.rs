//! The generated corpus must compile cleanly through every pipeline mode.
use mini_driver::{compile_sources, CompilerOptions};
use workload::{generate, WorkloadConfig};

#[test]
fn small_corpus_compiles_in_all_modes() {
    let w = generate(&WorkloadConfig::small());
    for opts in [
        CompilerOptions::fused(),
        CompilerOptions::mega(),
        CompilerOptions::legacy(),
    ] {
        let c = compile_sources(&w.sources(), &opts)
            .unwrap_or_else(|e| panic!("mode {:?} failed:\n{e}", opts.mode));
        assert!(c.program.entry.is_some());
    }
}

#[test]
fn small_corpus_passes_the_tree_checker() {
    let w = generate(&WorkloadConfig::small());
    let mut opts = CompilerOptions::fused();
    opts.check = true;
    compile_sources(&w.sources(), &opts).unwrap_or_else(|e| panic!("checker failures:\n{e}"));
}

#[test]
fn small_corpus_passes_the_tree_checker_in_parallel() {
    // `check = true` no longer downgrades to sequential execution: the
    // checker replays per worker chunk and the run keeps its parallelism.
    let w = generate(&WorkloadConfig::small());
    let opts = CompilerOptions::fused().with_jobs(4).with_check(true);
    let c = compile_sources(&w.sources(), &opts)
        .unwrap_or_else(|e| panic!("parallel checker failures:\n{e}"));
    assert!(
        c.effective_jobs > 1,
        "checked run was silently downgraded to sequential"
    );
}
